"""Legacy setup shim so `pip install -e .` works in offline environments
(no `wheel` package available for PEP 660 editable builds)."""

from setuptools import setup

setup()
