"""Experiment E3 — help-reply and local scheduling policies (§3.3, §4).

"Therefore a LIFO-strategy is used for the replying to help requests to
hide the communication latencies.  To avoid starving of microframes, a
FIFO-strategy is used momentarily for the local scheduling."

We cross help-reply policy {lifo, fifo} with local policy {fifo, lifo} on
the Table-1 primes workload and check the directional claim: the paper's
combination (reply=lifo, local=fifo) is not beaten by more than noise, and
frame sojourn (starvation) is worst with local=lifo.

``--smoke`` runs the work-distribution policy matrix instead — gossip
on/off x steal batching on/off x proactive push on/off — each cell a
short deterministic traced run that must produce the right primes and
pass the chaos invariant audit.  ``make verify`` runs it as the
``bench-help-policies`` step.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.bench import calibrated_test_params, render_table, run_primes
from repro.bench.harness import bench_config

from bench_util import write_result

P, WIDTH, SITES = 100, 10, 8
COMBOS = [("lifo", "fifo"), ("fifo", "fifo"), ("lifo", "lifo"),
          ("fifo", "lifo")]


def run_combo(reply: str, local: str) -> float:
    config = bench_config()
    config = config.with_(scheduling=replace(
        config.scheduling, help_reply_policy=reply, local_policy=local))
    scale, base = calibrated_test_params(P, WIDTH)
    duration, _cluster = run_primes(P, WIDTH, SITES, scale, base,
                                    config=config)
    return duration


def test_help_policies(benchmark):
    durations = {}

    def sweep():
        for reply, local in COMBOS:
            durations[(reply, local)] = run_combo(reply, local)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    paper_combo = ("lifo", "fifo")
    rows = [[reply, local, f"{durations[(reply, local)]:.2f}s",
             "<- paper" if (reply, local) == paper_combo else ""]
            for reply, local in COMBOS]
    write_result("help_policies", render_table(
        "E3: help-reply x local scheduling policy (primes p=100 w=10, "
        "8 sites)",
        ["help reply", "local", "duration", ""],
        rows))
    for combo, duration in durations.items():
        benchmark.extra_info["_".join(combo)] = round(duration, 3)

    best = min(durations.values())
    # the paper's combination is competitive: within 15% of the best combo
    assert durations[paper_combo] <= best * 1.15, durations


# ---------------------------------------------------------------------------
# deterministic smoke over the work-distribution policy matrix (make verify)

SMOKE_P, SMOKE_WIDTH, SMOKE_SITES = 20, 6, 4


def run_smoke() -> int:
    """Cross gossip x steal batching x push; audit every cell.

    Each cell is a small deterministic traced primes run.  A cell fails if
    the program returns wrong primes, wedges, or trips any chaos invariant
    (frame conservation, journal schema, trace consistency).
    """
    from repro.apps import first_n_primes
    from repro.chaos.invariants import InvariantChecker

    expected = first_n_primes(SMOKE_P)
    # fixed work parameters (the gate-suite ones): calibration only covers
    # the paper's Table 1 (p, width) combinations
    scale, base = 400.0, 4000.0
    rows = []
    failures = 0
    for gossip in (0.0, 1e-3):
        for batch in (1, 4):
            for push in (False, True):
                config = bench_config(trace=True)
                config = config.with_(scheduling=replace(
                    config.scheduling, gossip_interval=gossip,
                    steal_batch_max=batch, push_enabled=push))
                duration, cluster = run_primes(
                    SMOKE_P, SMOKE_WIDTH, SMOKE_SITES, scale, base,
                    config=config, verify=False)
                # drain: executions in flight at program exit settle
                # before the audit (same as the chaos runner)
                cluster.sim.run(until=cluster.sim.now + 1.0)
                result = cluster.handles[0].result
                violations = InvariantChecker(
                    cluster, expect_complete=True,
                    expected_results=[expected]).check()
                ok = result == expected and not violations
                failures += 0 if ok else 1
                rows.append([f"{gossip:g}", batch,
                             "on" if push else "off", f"{duration:.3f}s",
                             "ok" if ok else "FAIL: "
                             + "; ".join(str(v) for v in violations)])
    write_result("help_policy_matrix_smoke", render_table(
        f"work-distribution policy matrix smoke (primes p={SMOKE_P} "
        f"w={SMOKE_WIDTH}, {SMOKE_SITES} sites)",
        ["gossip", "batch", "push", "duration", "audit"],
        rows))
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        sys.exit(run_smoke())
    print("usage: bench_help_policies.py --smoke  "
          "(pytest-benchmark runs the E3 experiment)")
    sys.exit(2)
