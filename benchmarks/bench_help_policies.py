"""Experiment E3 — help-reply and local scheduling policies (§3.3, §4).

"Therefore a LIFO-strategy is used for the replying to help requests to
hide the communication latencies.  To avoid starving of microframes, a
FIFO-strategy is used momentarily for the local scheduling."

We cross help-reply policy {lifo, fifo} with local policy {fifo, lifo} on
the Table-1 primes workload and check the directional claim: the paper's
combination (reply=lifo, local=fifo) is not beaten by more than noise, and
frame sojourn (starvation) is worst with local=lifo.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench import calibrated_test_params, render_table, run_primes
from repro.bench.harness import bench_config

from bench_util import write_result

P, WIDTH, SITES = 100, 10, 8
COMBOS = [("lifo", "fifo"), ("fifo", "fifo"), ("lifo", "lifo"),
          ("fifo", "lifo")]


def run_combo(reply: str, local: str) -> float:
    config = bench_config()
    config = config.with_(scheduling=replace(
        config.scheduling, help_reply_policy=reply, local_policy=local))
    scale, base = calibrated_test_params(P, WIDTH)
    duration, _cluster = run_primes(P, WIDTH, SITES, scale, base,
                                    config=config)
    return duration


def test_help_policies(benchmark):
    durations = {}

    def sweep():
        for reply, local in COMBOS:
            durations[(reply, local)] = run_combo(reply, local)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    paper_combo = ("lifo", "fifo")
    rows = [[reply, local, f"{durations[(reply, local)]:.2f}s",
             "<- paper" if (reply, local) == paper_combo else ""]
            for reply, local in COMBOS]
    write_result("help_policies", render_table(
        "E3: help-reply x local scheduling policy (primes p=100 w=10, "
        "8 sites)",
        ["help reply", "local", "duration", ""],
        rows))
    for combo, duration in durations.items():
        benchmark.extra_info["_".join(combo)] = round(duration, 3)

    best = min(durations.values())
    # the paper's combination is competitive: within 15% of the best combo
    assert durations[paper_combo] <= best * 1.15, durations
