"""Experiment E8 — dynamic entry and exit at run time (§3.4, §2.2).

Claims reproduced:

* a site joining mid-run "will quickly get work and then assist executing
  the running programs" — adding sites mid-run shortens completion;
* an orderly sign-off relocates all microframes and memory "without
  disturbing the program flow" — the result stays correct and the cost of
  a departure is bounded;
* "resources can be added to cope with short term peeks" — grow-then-
  shrink completes correctly.
"""

from __future__ import annotations

from repro.apps import build_primes_program, first_n_primes
from repro.bench import calibrated_test_params, render_table
from repro.bench.harness import bench_config
from repro.site.simcluster import SimCluster

from bench_util import write_result

P, WIDTH = 100, 10


def run_scenario(name: str, nsites: int, joins=(), leaves=()):
    scale, base = calibrated_test_params(P, WIDTH)
    cluster = SimCluster(nsites=nsites, config=bench_config())
    handle = cluster.submit(build_primes_program(),
                            args=(P, WIDTH, scale, base))
    for at in joins:
        cluster.add_site(at=at)
    for index, at in leaves:
        cluster.sign_off_site(index, at=at)
    cluster.run(progress_timeout=600.0)
    assert handle.result == first_n_primes(P), name
    return handle.duration


def test_join_leave(benchmark):
    results = {}

    def sweep():
        results["2 static"] = run_scenario("static2", 2)
        results["4 static"] = run_scenario("static4", 4)
        results["2 + 2 join at t=1s"] = run_scenario(
            "grow", 2, joins=(1.0, 1.0))
        results["4, 2 leave at t=1s"] = run_scenario(
            "shrink", 4, leaves=((3, 1.0), (2, 1.2)))
        results["2 + 2 join, then both leave"] = run_scenario(
            "burst", 2, joins=(1.0, 1.0), leaves=((2, 4.0), (3, 4.2)))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[name, f"{duration:.2f}s"] for name, duration in results.items()]
    write_result("join_leave", render_table(
        "E8: elastic cluster scenarios (primes p=100 w=10; paper T1 ~ 34 s, "
        "T4 ~ 10 s)",
        ["scenario", "completion"],
        rows))
    for name, duration in results.items():
        benchmark.extra_info[name] = round(duration, 2)

    static2 = results["2 static"]
    static4 = results["4 static"]
    grow = results["2 + 2 join at t=1s"]
    shrink = results["4, 2 leave at t=1s"]
    # joiners demonstrably accelerate the run
    assert grow < static2 * 0.75
    assert grow > static4 * 0.95  # but late joiners can't beat 4-from-start
    # departures cost something but stay well under the 2-site time
    assert static4 < shrink < static2 * 1.1
