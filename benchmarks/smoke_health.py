"""CI smoke check for the telemetry plane (``make health-smoke``).

Runs one healthy sim workload with the metrics sampler and flight
recorder armed, then walks the whole pipeline:

1. the in-run sampler produced rows for every site and every tick;
2. the JSONL dump round-trips through the ``sdvm-metrics/1`` validator;
3. the online health detectors stayed quiet (a healthy run must not
   trip a stall detector — firing here means a detector threshold or a
   sampler field regressed);
4. the ``repro health`` CLI agrees (exit 0 on the same file) and
   ``repro top`` renders;
5. a hand-corrupted document is rejected by the validator.

Exits non-zero on any failure so it can gate CI.
"""

from __future__ import annotations

import io
import json
import os
import sys
import tempfile


def main() -> int:
    from repro.apps import build_primes_program, first_n_primes
    from repro.cli import main as cli_main
    from repro.common.config import SDVMConfig, TelemetryConfig
    from repro.common.errors import SDVMError
    from repro.site.simcluster import SimCluster
    from repro.trace import MetricsLog, validate_metrics

    nsites = 4
    config = SDVMConfig(
        telemetry=TelemetryConfig(metrics_enabled=True,
                                  metrics_interval=0.05,
                                  flight_recorder=True))
    cluster = SimCluster(nsites=nsites, config=config)
    handle = cluster.submit(build_primes_program(),
                            args=(40, 6, 400.0, 4000.0))
    cluster.run()
    if handle.result != first_n_primes(40):
        print("FAIL: workload returned a wrong result")
        return 1

    log = cluster.metrics
    if not log.rows or log.sites() != list(range(nsites)):
        print(f"FAIL: sampler rows cover sites {log.sites()}, "
              f"want {list(range(nsites))}")
        return 1
    if any(len(rows) != nsites for _t, rows in log.ticks()):
        print("FAIL: some sampling tick is missing site rows")
        return 1

    path = os.path.join(tempfile.mkdtemp(prefix="sdvm-health-smoke-"),
                        "run.metrics.jsonl")
    log.write_jsonl(path)
    reloaded = MetricsLog.load(path)  # validates sdvm-metrics/1
    print(f"metrics: {len(reloaded.rows)} rows, "
          f"{len(list(reloaded.ticks()))} ticks -> {path}")

    if cluster.health is None or not cluster.health.ok:
        detections = (cluster.health.detections
                      if cluster.health is not None else "no monitor")
        print(f"FAIL: healthy run tripped detectors: {detections}")
        return 1
    print(cluster.health.render())

    out = io.StringIO()
    code = cli_main(["health", path], out=out)
    if code != 0:
        print(f"FAIL: `repro health` exited {code} on a clean run:")
        print(out.getvalue())
        return 1
    out = io.StringIO()
    code = cli_main(["top", path, "--key", "busy_frac", "--last", "4"],
                    out=out)
    if code != 0 or "busy_frac per site" not in out.getvalue():
        print(f"FAIL: `repro top` exited {code} or rendered nothing")
        return 1
    print("cli: health exit 0, top rendered")

    # schema validator must reject a corrupted document
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    broken = json.loads(lines[1])
    del broken["queue"]
    try:
        validate_metrics(json.loads(lines[0]), [broken])
    except SDVMError:
        pass
    else:
        print("FAIL: validator accepted a row with a missing field")
        return 1
    print("validator: rejects corrupted rows")

    print("health smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
