"""Experiment E13 — silent-data-corruption defense: overhead vs coverage.

Selective duplicate execution (``replicate_frac``) buys corruption
*detection* with redundant compute.  Two sweeps quantify the trade:

* **Overhead** — the chaos-free primes workload through the multicore
  sweep harness at ``replicate_frac`` 0 / 0.5 / 1.0: the virtual-time
  slowdown is the price of running the chosen fraction of microthreads
  twice (plus verdict latency on the critical path).
* **Detection rate** — the same corruption window (result-mode bit
  flips on one site) against each ``replicate_frac``: the fraction of
  injected corruptions that produce an ``sdc_mismatch`` detection.
  Unreplicated threads commit their flipped values silently — which the
  journal invariant then flags — so partial replication trades coverage
  for overhead instead of buying certainty.

Informational ``sdvm-bench/1`` artifact (NOT wired into the bench gate:
the overhead depends on the buddy-site verdict round trips, which shift
with scheduling noise across unrelated changes; it is tracked, not
enforced).
"""

from __future__ import annotations

import dataclasses

from repro.bench import render_table
from repro.bench.sweep import make_point, run_sweep
from repro.chaos import CorruptFault, FaultPlan, run_plan

from bench_util import write_bench_json, write_result

FRACS = (0.0, 0.5, 1.0)
SITES = 4


def overhead_sweep() -> dict:
    """Chaos-free virtual duration per replicate_frac (primes workload)."""
    points = [make_point("primes", nsites=SITES, seed=0,
                         replicate_frac=frac, p=40, width=6)
              for frac in FRACS]
    report = run_sweep(points, workers=1)
    assert report["ok"], report["failures"]
    return {frac: row["virtual_duration"]
            for frac, row in zip(FRACS, report["rows"])}


def detection_sweep() -> dict:
    """Injected corruptions vs detections per replicate_frac."""
    results = {}
    for frac in FRACS:
        plan = FaultPlan(seed=7, nsites=SITES, name=f"sdc_r{frac:g}",
                         replicate_frac=frac,
                         faults=[CorruptFault(start=0.3, end=1.0, site=2,
                                              mode="result")])
        result = run_plan(plan)
        kinds = result.cluster.tracer.kinds()
        corruptions = sum(
            1 for e in result.cluster.tracer.events
            if e.kind == "chaos_fault" and e.fields[0] == "corrupt_result")
        detected = kinds.get("sdc_mismatch", 0)
        tainted = kinds.get("sdc_tainted_commit", 0)
        results[frac] = {
            "corruptions": corruptions,
            "detected": detected,
            "tainted_commits": tainted,
            "audit_ok": result.ok,
        }
    return results


def test_sdc(benchmark):
    data = {}

    def sweep():
        data["overhead"] = overhead_sweep()
        data["detection"] = detection_sweep()

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    overhead, detection = data["overhead"], data["detection"]
    base = overhead[0.0]

    rows = []
    for frac in FRACS:
        det = detection[frac]
        rate = (det["detected"] / det["corruptions"]
                if det["corruptions"] else 0.0)
        rows.append([f"{frac:g}",
                     f"{overhead[frac]:.3f}s",
                     f"{overhead[frac] / base:.2f}x",
                     f"{det['detected']}/{det['corruptions']}",
                     f"{rate:.0%}",
                     str(det["tainted_commits"]),
                     "PASS" if det["audit_ok"] else "flagged"])
    write_result("sdc", render_table(
        f"E13: SDC defense — replication overhead vs detection rate "
        f"(primes, {SITES} sites, result-mode corruption on site 2)",
        ["replicate_frac", "clean runtime", "overhead", "detected",
         "rate", "tainted commits", "audit"],
        rows))

    metrics = {}
    for frac in FRACS:
        key = f"{frac:g}".replace(".", "_")
        det = detection[frac]
        rate = (det["detected"] / det["corruptions"]
                if det["corruptions"] else 0.0)
        metrics[f"runtime_s_r{key}"] = round(overhead[frac], 6)
        metrics[f"overhead_x_r{key}"] = round(overhead[frac] / base, 4)
        metrics[f"detect_rate_r{key}"] = round(rate, 4)
        metrics[f"tainted_commits_r{key}"] = det["tainted_commits"]
    write_bench_json("sdc", metrics,
                     meta={"informational": True, "sites": SITES,
                           "fracs": list(FRACS),
                           "workload": "primes p=40 w=6"})

    # full replication detects everything and lets nothing through
    assert detection[1.0]["detected"] == detection[1.0]["corruptions"] > 0
    assert detection[1.0]["tainted_commits"] == 0
    assert detection[1.0]["audit_ok"]
    # replication off detects nothing — and the invariant flags the run
    assert detection[0.0]["detected"] == 0
    assert not detection[0.0]["audit_ok"]
    # duplicate execution costs time, bounded by ~2x plus verdict latency
    assert overhead[1.0] >= base
    assert overhead[1.0] < base * 3.0
    benchmark.extra_info["overhead_full"] = round(overhead[1.0] / base, 2)


if __name__ == "__main__":
    class _Bench:
        extra_info = {}

        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_sdc(_Bench())
    print("bench_sdc ok")
