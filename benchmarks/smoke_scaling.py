"""CI smoke for big-cluster work distribution (`make bench-scaling-smoke`).

A treesum run at 64 sites — four times the 16-peer gossip sample window,
so work discovery has to go through the hot-peer cache and rumor relay —
compared against the same program on one site.  If the cluster falls
back into the blind-beg regime (the O(sites) bug this guards against),
the speedup collapses far below the floor asserted here.

Deliberately smaller than the ``scaling`` bench-gate suite: this is the
seconds-fast tripwire, the gate suite is the precise regression fence.
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace

sys.path.insert(0, "src")

from repro.bench.harness import bench_config, run_treesum  # noqa: E402
from repro.site.simcluster import SimCluster  # noqa: E402

LEAVES = 1024
SCALE = 8000.0
NSITES = 64
#: well under the ~40x the run actually reaches — a tripwire for "work
#: discovery broke", not a perf fence (the gate suite is that)
MIN_SPEEDUP = 10.0

#: virtual-seconds budget for every site to learn the full membership.
#: Joins stagger at 1e-4 s and converge well under 0.1 s; a join wave
#: that has gone quadratic (per-sign-on duplicate scans, per-join
#: announce floods) blows far past this before it blows up wall clock
FORMATION_HORIZON = 0.5
#: loose wall-clock tripwire for the same regression (the measured wave
#: is well under a second — only an O(n^2) blowup gets near this)
FORMATION_WALL_MAX = 30.0


def check_formation(config) -> int:
    """Form an NSITES cluster; fail if full membership converges late."""
    cluster = SimCluster(nsites=NSITES, config=config)
    wall_start = time.perf_counter()
    formed_at = None
    step = FORMATION_HORIZON / 50.0
    while cluster.sim.now < FORMATION_HORIZON:
        cluster.sim.run(until=cluster.sim.now + step)
        if all(len(site.cluster_manager.sites) == NSITES
               for site in cluster._sites):
            formed_at = cluster.sim.now
            break
    wall = time.perf_counter() - wall_start
    if formed_at is None:
        print(f"smoke_scaling FAILED: {NSITES}-site membership did not "
              f"converge within {FORMATION_HORIZON}s virtual",
              file=sys.stderr)
        return 1
    print(f"smoke_scaling: {NSITES}-site formation converged at "
          f"t={formed_at:.3f}s virtual ({wall:.2f}s wall)")
    if wall > FORMATION_WALL_MAX:
        print(f"smoke_scaling FAILED: formation took {wall:.1f}s wall "
              f"> {FORMATION_WALL_MAX}s (join wave gone quadratic?)",
              file=sys.stderr)
        return 1
    return 0


def main() -> int:
    base = bench_config()
    config = base.with_(scheduling=replace(base.scheduling,
                                           gossip_interval=1e-2,
                                           gossip_staleness=5e-2))
    if check_formation(config):
        return 1
    t1, _ = run_treesum(LEAVES, SCALE, 1, config=config)
    tn, cluster = run_treesum(LEAVES, SCALE, NSITES, config=config)
    speedup = t1 / tn
    print(f"smoke_scaling: treesum(leaves={LEAVES}) "
          f"t_1={t1:.3f}s t_{NSITES}={tn:.3f}s speedup={speedup:.1f} "
          f"(events={cluster.sim.events_executed})")
    if speedup < MIN_SPEEDUP:
        print(f"smoke_scaling FAILED: speedup {speedup:.1f} "
              f"< floor {MIN_SPEEDUP}", file=sys.stderr)
        return 1
    print("smoke_scaling OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
