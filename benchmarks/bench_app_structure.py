"""Ablation A1 — pipelined lanes vs barrier rounds (DESIGN.md, T1 note).

The paper's reported width-10/8-site speedup of 6.4–6.6 exceeds the hard
``width / ceil(width / sites)`` bound of a strictly synchronized
round-barrier structure (10/2 = 5), which is how we concluded the authors'
application pipelines its candidates.  This ablation measures both program
structures on identical clusters: the pipelined version must beat the
barrier bound at 8 sites, the rounds version must not.
"""

from __future__ import annotations

import math

from repro.apps import (
    build_primes_program,
    build_primes_rounds_program,
    first_n_primes,
)
from repro.bench import calibrated_test_params, render_table
from repro.bench.harness import bench_config
from repro.site.simcluster import SimCluster

from bench_util import write_result

P, WIDTH = 100, 10


def run_app(app, nsites: int) -> float:
    scale, base = calibrated_test_params(P, WIDTH)
    cluster = SimCluster(nsites=nsites, config=bench_config())
    handle = cluster.submit(app, args=(P, WIDTH, scale, base))
    cluster.run(progress_timeout=600.0)
    assert handle.result == first_n_primes(P)
    return handle.duration


def test_app_structure(benchmark):
    durations = {}

    def sweep():
        for name, build in (("pipelined", build_primes_program),
                            ("rounds", build_primes_rounds_program)):
            for nsites in (1, 8):
                durations[(name, nsites)] = run_app(build(), nsites)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    barrier_bound = WIDTH / math.ceil(WIDTH / 8)
    rows = []
    for name in ("pipelined", "rounds"):
        s8 = durations[(name, 1)] / durations[(name, 8)]
        rows.append([name, f"{durations[(name, 1)]:.1f}s",
                     f"{durations[(name, 8)]:.1f}s", f"{s8:.2f}"])
        benchmark.extra_info[f"S8_{name}"] = round(s8, 2)
    write_result("app_structure", render_table(
        f"A1: pipelined lanes vs barrier rounds (primes p={P} w={WIDTH}; "
        f"barrier bound at 8 sites = {barrier_bound:.1f})",
        ["structure", "1 site", "8 sites", "S8"],
        rows))

    s8_pipe = durations[("pipelined", 1)] / durations[("pipelined", 8)]
    s8_rounds = durations[("rounds", 1)] / durations[("rounds", 8)]
    # the barrier version cannot beat its synchronization bound
    assert s8_rounds <= barrier_bound * 1.05
    # the pipelined version does — like the paper's own 6.4-6.6
    assert s8_pipe > barrier_bound
    assert s8_pipe > s8_rounds
