"""Extension experiment X1 — power-managed sleep states (§2.2).

"If sufficient performance is available and a fast execution is needed,
all sites on a chip get activated.  If the system's power supply is low or
sites are out of work, some sites are switched to a sleep state.  This
would meet a requirement of organic computing, making the system
autonomously adapt to changing environmental conditions."

Scenario: a 6-site cluster receives a burst of work, then idles, then a
second burst.  With power management on, out-of-work sites sleep between
bursts and wake on demand; we measure the energy saved and the performance
cost of waking.
"""

from __future__ import annotations

from repro.apps import build_primes_program, first_n_primes
from repro.bench import render_table
from repro.bench.harness import bench_config
from repro.common.config import PowerConfig
from repro.site.simcluster import SimCluster

from bench_util import write_result

SITES = 6
IDLE_GAP = 4.0  # seconds of lull between the two bursts
ARGS = (60, 12, 400.0, 4000.0)


def run_bursts(power_enabled: bool) -> dict:
    config = bench_config(power=PowerConfig(
        enabled=power_enabled, sleep_after=0.3,
        busy_watts=100.0, idle_watts=60.0, sleep_watts=5.0))
    cluster = SimCluster(nsites=SITES, config=config)
    first = cluster.submit(build_primes_program(), args=ARGS)
    second = cluster.submit(build_primes_program(), args=ARGS,
                            at=IDLE_GAP + 3.0)
    cluster.run(progress_timeout=120.0)
    assert first.result == second.result == first_n_primes(ARGS[0])
    energy = cluster.energy_report()
    return {
        "joules": sum(r["joules"] for r in energy.values()),
        "sleep_s": sum(r["sleep_s"] for r in energy.values()),
        "burst2": second.duration,
        "makespan": second.finish_time,
    }


def test_power_sleep(benchmark):
    results = {}

    def sweep():
        results["power off"] = run_bursts(False)
        results["power on"] = run_bursts(True)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[name, f"{r['joules']:.0f} J", f"{r['sleep_s']:.1f} s",
             f"{r['burst2']:.2f} s", f"{r['makespan']:.2f} s"]
            for name, r in results.items()]
    write_result("power_sleep", render_table(
        f"X1 (extension): sleep states across a bursty workload "
        f"({SITES} sites, {IDLE_GAP}s lull)",
        ["mode", "energy", "site-seconds asleep", "2nd burst time",
         "makespan"],
        rows))

    off, on = results["power off"], results["power on"]
    saved = 1.0 - on["joules"] / off["joules"]
    benchmark.extra_info["energy_saved_pct"] = round(100 * saved, 1)
    # meaningful savings from the lull...
    assert on["sleep_s"] > SITES * IDLE_GAP * 0.5
    assert saved > 0.15
    # ...at a bounded wake-up cost for the second burst
    assert on["burst2"] < off["burst2"] * 1.5
