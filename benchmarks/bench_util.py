"""Shared plumbing for the benchmark suite: result-file writing."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a benchmark's table so it survives pytest's capture."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text)
