"""Shared plumbing for the benchmark suite: result-file writing."""

from __future__ import annotations

import pathlib
from typing import Dict, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a benchmark's table so it survives pytest's capture."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text)


def write_bench_json(suite: str, metrics: Dict[str, float],
                     tolerances: Optional[Dict[str, float]] = None,
                     meta: Optional[Dict[str, object]] = None) -> str:
    """Emit a schema'd ``BENCH_<suite>.json`` next to the text results."""
    from repro.bench import harness
    return harness.write_bench_json(str(RESULTS_DIR), suite, metrics,
                                    tolerances=tolerances, meta=meta)
