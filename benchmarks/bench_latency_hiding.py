"""Experiment E2 — latency hiding via virtually parallel microthreads (§4).

"Tests showed that a number of about 5 microthreads run in (virtual)
parallel produce good results" — too few leaves the CPU idle during memory
waits; too many adds switching overhead and hoards stealable work.

Workload: a *service-only* site (max_parallel=0) holds a pool of memory
objects; a runner site executes self-sustaining lanes of microthreads, each
performing one remote read (wait ≈ 4x its compute) then computing.  We
sweep the runner's ``max_parallel`` and check the best value lands in the
paper's "about 5" range.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import CostModel, NetworkConfig, SiteConfig
from repro.core.program import ProgramBuilder
from repro.bench import render_table
from repro.bench.harness import bench_config
from repro.site.simcluster import SimCluster

from bench_util import write_result

K_SWEEP = (1, 2, 3, 5, 8, 12, 20)
LANES = 24
READS_PER_LANE = 8


def waiting_program():
    prog = ProgramBuilder("waiters")

    @prog.microthread(creates=("waiter", "collect"))
    def main(ctx, addr_lanes):
        ctx.charge(10)
        collector = ctx.create_frame("collect", nparams=len(addr_lanes),
                                     critical=True, priority=10.0)
        for lane, addrs in enumerate(addr_lanes):
            w = ctx.create_frame("waiter", targets=[(collector, lane)])
            ctx.send_result(w, 0, addrs)
            ctx.send_result(w, 1, 0)

    @prog.microthread(creates=("waiter",))
    def waiter(ctx, addrs, acc):
        value = ctx.read(addrs[0])  # remote: objects live on the holder
        ctx.charge(400)             # 0.4 ms compute vs ~1.7 ms wait
        acc = acc + len(value)
        if len(addrs) == 1:
            ctx.send_to_targets(acc)
            return
        nxt = ctx.create_frame("waiter", targets=ctx.targets())
        ctx.send_result(nxt, 0, addrs[1:])
        ctx.send_result(nxt, 1, acc)

    @prog.microthread
    def collect(ctx, *totals):
        ctx.charge(10)
        ctx.exit_program(sum(totals))

    return prog.build()


def run_with_k(k: int) -> float:
    config = bench_config(network=NetworkConfig(latency=800e-6))
    config = config.with_(
        cost=replace(config.cost, context_switch_cost=40e-6,
                     compile_fixed_cost=1e-4))
    cluster = SimCluster(
        site_configs=[SiteConfig(name="holder", max_parallel=0),
                      SiteConfig(name="runner", max_parallel=k)],
        config=config)
    # preload the data pool on the service-only holder (a storage node);
    # the program receives the addresses and reads remotely
    holder = cluster.sites[0].attraction_memory
    addr_lanes = [[holder.alloc_object([lane] * 64)
                   for _ in range(READS_PER_LANE)]
                  for lane in range(LANES)]
    handle = cluster.submit(waiting_program(), args=(addr_lanes,),
                            site_index=1)
    cluster.run(progress_timeout=120.0)
    assert handle.result == LANES * READS_PER_LANE * 64
    return handle.duration


def test_latency_hiding_sweet_spot(benchmark):
    durations = {}

    def sweep():
        for k in K_SWEEP:
            durations[k] = run_with_k(k)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    best_k = min(durations, key=durations.get)
    rows = [[k, f"{durations[k] * 1e3:.1f} ms",
             f"{durations[K_SWEEP[0]] / durations[k]:.2f}x"]
            for k in K_SWEEP]
    write_result("latency_hiding", render_table(
        f"E2: latency-hiding degree sweep (paper: ~5 is good; "
        f"best here: {best_k})",
        ["max_parallel", "duration", "vs K=1"],
        rows))
    benchmark.extra_info["best_k"] = best_k

    # the paper's claim: a handful of virtually parallel microthreads
    assert 3 <= best_k <= 8, durations
    # K=1 clearly worse (no hiding at all)
    assert durations[1] > 1.5 * durations[best_k]
    # far past the optimum there is no further gain
    assert durations[20] >= 0.98 * durations[best_k]
