"""Experiment E5 — transport protocols: TCP vs T/TCP vs UDP (§4).

"Currently, the SDVM is based on TCP.  UDP was tested, too.  However, it
proved not usable at the current expansion stage [loss + reordering] ...
As the SDVM's network topology will probably result in many connections
between various sites, and each sending small packets only, TCP shows too
much overhead ... so T/TCP was proposed for applications like the SDVM."

Reproduced shape: T/TCP completes fastest (no handshake), TCP completes but
slower, UDP either loses protocol messages and stalls the program or — at
0 % loss — still reorders without harming this protocol (our managers are
request/reply-correlated, so pure reordering is survivable; loss is not).
"""

from __future__ import annotations

import socket
import threading
import time

from repro.apps import build_primes_program, first_n_primes
from repro.bench import calibrated_test_params, render_table
from repro.bench.harness import bench_config
from repro.common.config import LiveTransportConfig, NetworkConfig
from repro.net.tcp import TcpTransport
from repro.serde.framing import frame
from repro.site.simcluster import SimCluster

from bench_util import write_result

P, WIDTH, SITES = 100, 10, 4
#: generous virtual deadline — a healthy run takes well under a second
DEADLINE = 120.0


def run_transport(transport: str, loss: float = 0.0) -> dict:
    # "each sending small packets only, TCP shows too much overhead": the
    # comparison uses a fine-grained (communication-dominated) workload and
    # the paper's many-short-connections regime (no connection reuse)
    config = bench_config(network=NetworkConfig(
        transport=transport,
        udp_loss_rate=loss,
        udp_reorder_rate=0.05 if transport == "udp" else 0.0,
        tcp_connection_reuse=0.0,
    ))
    scale, base = calibrated_test_params(P, WIDTH)
    scale, base = scale / 200.0, base / 200.0  # message-heavy regime
    cluster = SimCluster(nsites=SITES, config=config)
    handle = cluster.submit(build_primes_program(),
                            args=(P, WIDTH, scale, base))
    try:
        cluster.run(until=DEADLINE, raise_on_failure=False)
    except Exception:  # noqa: BLE001 — stalls show up as no-progress
        pass
    net = cluster.network_stats()
    return {
        "completed": handle.done and handle.result == first_n_primes(P),
        "duration": handle.duration if handle.done else float("inf"),
        "lost": net.get("udp_lost").count,
        "reordered": net.get("udp_reordered").count,
    }


def test_transports(benchmark):
    results = {}

    def sweep():
        results["tcp"] = run_transport("tcp")
        results["ttcp"] = run_transport("ttcp")
        results["udp (1% loss)"] = run_transport("udp", loss=0.01)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append([
            name,
            "yes" if r["completed"] else "NO (stalled)",
            f"{r['duration']:.2f}s" if r["completed"] else f">{DEADLINE}s",
            r["lost"], r["reordered"],
        ])
    write_result("transports", render_table(
        "E5: transport comparison (primes p=100 w=10, 4 sites)",
        ["transport", "completed", "duration", "msgs lost", "reordered"],
        rows))

    assert results["tcp"]["completed"]
    assert results["ttcp"]["completed"]
    # T/TCP's single-packet transactions beat TCP's handshakes
    assert results["ttcp"]["duration"] < results["tcp"]["duration"]
    # plain UDP loses messages and the program never finishes (§4:
    # "not viable at present")
    assert results["udp (1% loss)"]["lost"] > 0
    assert not results["udp (1% loss)"]["completed"]
    benchmark.extra_info["ttcp_speedup_vs_tcp"] = round(
        results["tcp"]["duration"] / results["ttcp"]["duration"], 3)


# ----------------------------------------------------------------------
# live runtime: queued-writer reliability layer vs the old direct path


FRAMES, PAYLOAD = 5000, 256
PINGS = 200


class _DirectSender:
    """The pre-reliability send path: one cached socket, ``sendall``
    called inline on the caller's thread (no queue, no retry — and no
    write serialization, so only safe single-threaded)."""

    def __init__(self, dst: str) -> None:
        host, _, port = dst.rpartition(":")
        self.sock = socket.create_connection((host, int(port)))

    def send(self, data: bytes) -> None:
        self.sock.sendall(frame(data))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _CountingSink:
    def __init__(self, target: int) -> None:
        self.target = target
        self.count = 0
        self.done = threading.Event()

    def __call__(self, data: bytes) -> None:
        self.count += 1
        if self.count >= self.target:
            self.done.set()

    def rearm(self, target: int) -> None:
        self.count, self.target = 0, target
        self.done.clear()


def _throughput(send, sink: _CountingSink, threads: int) -> float:
    """Wall time to deliver FRAMES frames of PAYLOAD bytes end to end."""
    sink.rearm(FRAMES)
    payload = b"x" * PAYLOAD
    per_thread = FRAMES // threads

    def pump() -> None:
        for _ in range(per_thread):
            send(payload)

    start = time.perf_counter()
    if threads == 1:
        pump()
    else:
        workers = [threading.Thread(target=pump) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
    assert sink.done.wait(60.0), "receiver starved"
    return time.perf_counter() - start


def _latency(send, sink: _CountingSink) -> float:
    """Mean one-way send-to-receiver-callback time, unloaded queue."""
    total = 0.0
    for i in range(PINGS):
        sink.rearm(1)
        start = time.perf_counter()
        send(b"ping")
        assert sink.done.wait(10.0)
        total += time.perf_counter() - start
    return total / PINGS


def test_live_tcp_queued_writer_vs_direct(benchmark):
    """The reliability layer's cost: per-peer queue + writer thread vs the
    old inline-``sendall`` path, same loopback socket, same framing."""
    cfg = LiveTransportConfig(send_queue_limit=FRAMES + 64)
    results = {}

    def sweep():
        sink = _CountingSink(1)
        server = TcpTransport(sink, config=cfg)
        dst = server.local_address()

        direct = _DirectSender(dst)
        try:
            results["direct 1thr"] = {
                "secs": _throughput(direct.send, sink, threads=1),
                "lat": _latency(direct.send, sink), "threads": 1}
        finally:
            direct.close()

        client = TcpTransport(lambda d: None, config=cfg)
        try:
            ok = lambda data: client.send(dst, data)  # noqa: E731
            results["queued 1thr"] = {
                "secs": _throughput(ok, sink, threads=1),
                "lat": _latency(ok, sink), "threads": 1}
            results["queued 8thr"] = {
                "secs": _throughput(ok, sink, threads=8),
                "lat": None, "threads": 8}
            results["dead_letters"] = client.stats.get("dead_letters").total
        finally:
            client.close()
            server.close()

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name in ("direct 1thr", "queued 1thr", "queued 8thr"):
        r = results[name]
        lat = f"{r['lat'] * 1e6:.0f}us" if r["lat"] is not None else "-"
        rows.append([name, r["threads"], f"{FRAMES / r['secs']:,.0f}/s",
                     lat])
    write_result("live_tcp_reliability", render_table(
        f"Live TCP: queued writer vs direct sendall "
        f"({FRAMES} x {PAYLOAD}B frames, loopback)",
        ["send path", "threads", "throughput", "one-way latency"],
        rows))

    assert results["dead_letters"] == 0
    # the queue must not cost an order of magnitude: the writer thread adds
    # a hop, but sendall still dominates
    assert (results["queued 1thr"]["secs"]
            < results["direct 1thr"]["secs"] * 10)
    benchmark.extra_info["queued_vs_direct_slowdown"] = round(
        results["queued 1thr"]["secs"] / results["direct 1thr"]["secs"], 3)
    benchmark.extra_info["queued_8thr_throughput"] = round(
        FRAMES / results["queued 8thr"]["secs"], 1)
