"""Experiment E5 — transport protocols: TCP vs T/TCP vs UDP (§4).

"Currently, the SDVM is based on TCP.  UDP was tested, too.  However, it
proved not usable at the current expansion stage [loss + reordering] ...
As the SDVM's network topology will probably result in many connections
between various sites, and each sending small packets only, TCP shows too
much overhead ... so T/TCP was proposed for applications like the SDVM."

Reproduced shape: T/TCP completes fastest (no handshake), TCP completes but
slower, UDP either loses protocol messages and stalls the program or — at
0 % loss — still reorders without harming this protocol (our managers are
request/reply-correlated, so pure reordering is survivable; loss is not).
"""

from __future__ import annotations

from repro.apps import build_primes_program, first_n_primes
from repro.bench import calibrated_test_params, render_table
from repro.bench.harness import bench_config
from repro.common.config import NetworkConfig
from repro.site.simcluster import SimCluster

from bench_util import write_result

P, WIDTH, SITES = 100, 10, 4
#: generous virtual deadline — a healthy run takes well under a second
DEADLINE = 120.0


def run_transport(transport: str, loss: float = 0.0) -> dict:
    # "each sending small packets only, TCP shows too much overhead": the
    # comparison uses a fine-grained (communication-dominated) workload and
    # the paper's many-short-connections regime (no connection reuse)
    config = bench_config(network=NetworkConfig(
        transport=transport,
        udp_loss_rate=loss,
        udp_reorder_rate=0.05 if transport == "udp" else 0.0,
        tcp_connection_reuse=0.0,
    ))
    scale, base = calibrated_test_params(P, WIDTH)
    scale, base = scale / 200.0, base / 200.0  # message-heavy regime
    cluster = SimCluster(nsites=SITES, config=config)
    handle = cluster.submit(build_primes_program(),
                            args=(P, WIDTH, scale, base))
    try:
        cluster.run(until=DEADLINE, raise_on_failure=False)
    except Exception:  # noqa: BLE001 — stalls show up as no-progress
        pass
    net = cluster.network_stats()
    return {
        "completed": handle.done and handle.result == first_n_primes(P),
        "duration": handle.duration if handle.done else float("inf"),
        "lost": net.get("udp_lost").count,
        "reordered": net.get("udp_reordered").count,
    }


def test_transports(benchmark):
    results = {}

    def sweep():
        results["tcp"] = run_transport("tcp")
        results["ttcp"] = run_transport("ttcp")
        results["udp (1% loss)"] = run_transport("udp", loss=0.01)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append([
            name,
            "yes" if r["completed"] else "NO (stalled)",
            f"{r['duration']:.2f}s" if r["completed"] else f">{DEADLINE}s",
            r["lost"], r["reordered"],
        ])
    write_result("transports", render_table(
        "E5: transport comparison (primes p=100 w=10, 4 sites)",
        ["transport", "completed", "duration", "msgs lost", "reordered"],
        rows))

    assert results["tcp"]["completed"]
    assert results["ttcp"]["completed"]
    # T/TCP's single-packet transactions beat TCP's handshakes
    assert results["ttcp"]["duration"] < results["tcp"]["duration"]
    # plain UDP loses messages and the program never finishes (§4:
    # "not viable at present")
    assert results["udp (1% loss)"]["lost"] > 0
    assert not results["udp (1% loss)"]["completed"]
    benchmark.extra_info["ttcp_speedup_vs_tcp"] = round(
        results["tcp"]["duration"] / results["ttcp"]["duration"], 3)
