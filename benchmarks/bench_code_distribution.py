"""Experiment E4 — on-the-fly compilation and code distribution sites (§3.4, §4).

Claims reproduced:

* "the compilation on-the-fly is indeed fast enough not to slow the system
  too much" — a heterogeneous cluster (every site a different platform)
  finishes within a modest factor of a homogeneous one;
* "after a compilation procedure, the local site will send a copy of the
  compiled code to the code distribution site so that other sites will
  receive the binary code at first go" — with several same-platform sites,
  each microthread is compiled exactly once per platform, not once per
  site.
"""

from __future__ import annotations

from repro.apps import build_primes_program, first_n_primes
from repro.bench import calibrated_test_params, render_table
from repro.bench.harness import bench_config
from repro.common.config import SiteConfig
from repro.site.simcluster import SimCluster

from bench_util import write_result

P, WIDTH = 100, 10


def run_cluster(platforms):
    scale, base = calibrated_test_params(P, WIDTH)
    cluster = SimCluster(
        site_configs=[SiteConfig(name=f"s{i}", platform=platform)
                      for i, platform in enumerate(platforms)],
        config=bench_config())
    handle = cluster.submit(build_primes_program(),
                            args=(P, WIDTH, scale, base))
    cluster.run(progress_timeout=600.0)
    assert handle.result == first_n_primes(P)
    stats = cluster.total_stats()
    return (handle.duration,
            stats.get("compiles").count,
            stats.get("binaries_received").count,
            stats.get("sources_received").count)


def test_code_distribution(benchmark):
    results = {}

    def sweep():
        results["homogeneous"] = run_cluster(["py-generic"] * 8)
        results["heterogeneous"] = run_cluster(
            [f"platform-{i}" for i in range(8)])
        results["two-platforms"] = run_cluster(
            ["plat-a"] * 4 + ["plat-b"] * 4)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, (duration, compiles, binaries, sources) in results.items():
        rows.append([name, f"{duration:.2f}s", compiles, binaries, sources])
    write_result("code_distribution", render_table(
        "E4: code distribution across platform mixes (primes p=100 w=10, "
        "8 sites; 3 microthreads)",
        ["cluster", "duration", "compiles", "binaries rx", "sources rx"],
        rows))

    homo = results["homogeneous"]
    hetero = results["heterogeneous"]
    two = results["two-platforms"]
    sites, threads = 8, 3
    # binaries propagate back to the distribution site, so compiles stay
    # well below the naive sites x microthreads bound ("other sites will
    # receive the binary code at first go")
    assert homo[1] < sites * threads
    assert homo[2] > 0           # binaries actually served
    assert two[1] < sites * threads
    # compiles grow with platform diversity: homo <= two <= hetero
    assert homo[1] <= two[1] <= hetero[1]
    # all-different platforms can only ship source — and on-the-fly
    # compilation is "fast enough": well under 2x the homogeneous run
    assert hetero[2] == 0 and hetero[3] > 0
    assert hetero[0] < 2.0 * homo[0]
    benchmark.extra_info["hetero_vs_homo"] = round(hetero[0] / homo[0], 3)
