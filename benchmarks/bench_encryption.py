"""Experiment E6 — the security manager's cost (§4).

"If a cluster can be judged secure ... the security manager can be
disabled in favor of a performance gain."

We run the Table-1 primes workload with the security layer on and off and
measure the gain of disabling it.  With coarse microthreads the difference
is small (the paper's implicit premise for leaving it on in hostile
networks); a fine-grained run makes the cost visible.
"""

from __future__ import annotations

from repro.bench import calibrated_test_params, render_table, run_primes
from repro.bench.harness import bench_config
from repro.common.config import SecurityConfig

from bench_util import write_result

P, WIDTH, SITES = 100, 10, 4


def run_security(enabled: bool, scale: float, base: float) -> float:
    config = bench_config(security=SecurityConfig(
        enabled=enabled, cluster_password="bench"))
    duration, cluster = run_primes(P, WIDTH, SITES, scale, base,
                                   config=config)
    if enabled:
        sealed = sum(s.security_manager.layer.messages_sealed
                     for s in cluster.sites)
        assert sealed > 0, "security on but nothing was sealed"
    return duration


def test_encryption_overhead(benchmark):
    results = {}

    def sweep():
        paper_scale, paper_base = calibrated_test_params(P, WIDTH)
        results["paper granularity"] = (
            run_security(False, paper_scale, paper_base),
            run_security(True, paper_scale, paper_base))
        results["fine grained (x100 smaller)"] = (
            run_security(False, paper_scale / 100, paper_base / 100),
            run_security(True, paper_scale / 100, paper_base / 100))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, (plain, sealed) in results.items():
        gain = 100.0 * (sealed - plain) / plain
        rows.append([name, f"{plain:.3f}s", f"{sealed:.3f}s",
                     f"{gain:.2f} %"])
    write_result("encryption", render_table(
        "E6: security manager on/off (primes p=100 w=10, 4 sites)",
        ["granularity", "plaintext", "encrypted", "encryption cost"],
        rows))

    for name, (plain, sealed) in results.items():
        # disabling the security manager is a gain (within scheduling noise
        # at coarse granularity, where crypto cost is ~0.1 %)
        assert sealed >= plain * 0.97, (name, plain, sealed)
    fine_plain, fine_sealed = results["fine grained (x100 smaller)"]
    coarse_plain, coarse_sealed = results["paper granularity"]
    fine_cost = (fine_sealed - fine_plain) / fine_plain
    coarse_cost = (coarse_sealed - coarse_plain) / coarse_plain
    # the relative cost grows as messages dominate
    assert fine_cost > coarse_cost
    benchmark.extra_info["coarse_cost_pct"] = round(100 * coarse_cost, 3)
    benchmark.extra_info["fine_cost_pct"] = round(100 * fine_cost, 3)
