"""CI smoke check for the observability pipeline.

Runs one sim benchmark with structured tracing enabled (via
``SDVM_TRACE_DIR``) and validates every dumped artifact: the Chrome trace
must parse, carry monotonic timestamps and known phases, and the stats
report must contain the derived metrics.  Exits non-zero on any failure,
so it can gate CI (``make smoke-trace``).
"""

from __future__ import annotations

import os
import sys
import tempfile


def main() -> int:
    os.environ.setdefault("SDVM_TRACE_DIR",
                          tempfile.mkdtemp(prefix="sdvm-trace-smoke-"))
    # import *after* the env var is set: the harness reads it at import
    from repro.bench.harness import TRACE_DIR, run_primes
    from repro.trace import validate_chrome_trace

    duration, cluster = run_primes(25, 6, 4, 400.0, 4000.0)
    print(f"primes(25, 6) on 4 sites: {duration:.4f}s virtual, "
          f"{len(cluster.tracer)} trace events")

    traces = sorted(name for name in os.listdir(TRACE_DIR)
                    if name.endswith(".trace.json"))
    reports = sorted(name for name in os.listdir(TRACE_DIR)
                     if name.endswith(".stats.txt"))
    if not traces or not reports:
        print(f"FAIL: no artifacts dumped under {TRACE_DIR}")
        return 1
    for name in traces:
        summary = validate_chrome_trace(os.path.join(TRACE_DIR, name))
        if summary["slices"] == 0:
            print(f"FAIL: {name} has no duration slices")
            return 1
        print(f"{name}: {summary}")
    for name in reports:
        with open(os.path.join(TRACE_DIR, name), encoding="utf-8") as fh:
            text = fh.read()
        if "derived metrics" not in text:
            print(f"FAIL: {name} is missing the derived metrics block")
            return 1
        print(f"{name}: ok ({len(text.splitlines())} lines)")
    print(f"smoke ok — artifacts in {TRACE_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
