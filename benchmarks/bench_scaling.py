"""Experiment E10 — decentralized scheduling has no structural bottleneck
(§2.2).

"No structure-related bottlenecks may occur, as all functionality is
available on all sites of the cluster and can be used decentralized.
Therefore the cluster is essentially scalable to any desired size."

We scale the primes workload (width grown with the cluster, as a user
would) from 1 to 32 sites and check throughput keeps rising — the curve
bends (steal traffic, collector serialization) but never inverts.
Primes stops at 32: its collector chain is an O(candidates) serial
spine, so past ~64 sites the app — not the cluster — is the bottleneck.

The treesum sweep carries the claim to big clusters: log-depth fan-out
and reduction with no serial spine, 1 to 64 sites by default and up to
1024 under ``SDVM_BENCH_FULL=1``.  Speedup must keep RISING across
every growth step — the regression this guards is the old O(sites)
work-discovery regime, where 256 sites ran *slower* than 64.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench import calibrated_test_params, render_table, run_primes
from repro.bench.harness import (FULL_SWEEP, bench_config, run_treesum,
                                 wall_clock_meta)

from bench_util import write_result

P = 100
SITES = (1, 2, 4, 8, 16, 32)

LEAVES = 4096 if not FULL_SWEEP else 16384
TREE_SCALE = 16000.0
# the full sweep tops out at 1024 sites: O(1) virtual-service CPU
# accounting plus the batched join wave keep the 1024-site run to
# minutes of wall clock (it used to be prohibitive — the old CpuModel
# decayed every active job on every advance).  16384 leaves (16 per
# site at the top) keep the big step saturated; 4096 would leave 1024
# sites starved at 4 leaves each
TREE_SITES = (1, 8, 64) if not FULL_SWEEP else (1, 8, 64, 256, 1024)


def test_scaling(benchmark):
    durations = {}
    clusters = []

    def sweep():
        scale, base = calibrated_test_params(P, 10)
        for nsites in SITES:
            width = max(10, 2 * nsites)  # give big clusters enough lanes
            duration, cluster = run_primes(P, width, nsites, scale, base,
                                           progress_timeout=600.0)
            durations[nsites] = duration
            clusters.append(cluster)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    t1 = durations[1]
    rows = [[n, f"{durations[n]:.2f}s", f"{t1 / durations[n]:.2f}",
             f"{t1 / durations[n] / n * 100:.0f} %"]
            for n in SITES]
    write_result("scaling", render_table(
        f"E10: scaling the cluster (primes p={P}, width = max(10, 2n))",
        ["sites", "duration", "speedup", "efficiency"],
        rows))
    for n in SITES:
        benchmark.extra_info[f"speedup_{n}"] = round(t1 / durations[n], 2)
    # informational wall-clock throughput across the whole sweep
    benchmark.extra_info["events_per_sec"] = round(
        wall_clock_meta(clusters)["events_per_sec"])

    # monotone improvement all the way up
    ordered = [durations[n] for n in SITES]
    for smaller, larger in zip(ordered, ordered[1:]):
        assert larger < smaller
    # no collapse at 32 sites: at least ~40% efficiency
    assert t1 / durations[32] > 0.4 * 32


def _treesum_config(nsites: int):
    # gossip an order slower than the small-cluster bench default (256+
    # sites at 1e-3 bury the run in heartbeats); staleness stretched to
    # stay ahead of the interval.  The 1024-site step stretches both
    # again — with 4x the sites each heartbeat round costs 4x as much.
    interval = 1e-2 if nsites <= 256 else 2e-2
    base = bench_config()
    return base.with_(scheduling=replace(base.scheduling,
                                         gossip_interval=interval,
                                         gossip_staleness=5 * interval))


def test_scaling_treesum(benchmark):
    durations = {}
    clusters = []

    def sweep():
        for nsites in TREE_SITES:
            duration, cluster = run_treesum(
                LEAVES, TREE_SCALE, nsites,
                config=_treesum_config(nsites), progress_timeout=600.0)
            durations[nsites] = duration
            clusters.append(cluster)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    t1 = durations[1]
    rows = [[n, f"{durations[n]:.2f}s", f"{t1 / durations[n]:.2f}",
             f"{t1 / durations[n] / n * 100:.0f} %"]
            for n in TREE_SITES]
    write_result("scaling_treesum", render_table(
        f"E10b: scaling past the sample window "
        f"(treesum leaves={LEAVES}, scale={TREE_SCALE:.0f})",
        ["sites", "duration", "speedup", "efficiency"],
        rows))
    for n in TREE_SITES:
        benchmark.extra_info[f"speedup_{n}"] = round(t1 / durations[n], 2)
    benchmark.extra_info["events_per_sec"] = round(
        wall_clock_meta(clusters)["events_per_sec"])

    # speedup must RISE across every growth step, all the way to the top
    ordered = [durations[n] for n in TREE_SITES]
    for smaller, larger in zip(ordered, ordered[1:]):
        assert larger < smaller
