"""Experiment E10 — decentralized scheduling has no structural bottleneck
(§2.2).

"No structure-related bottlenecks may occur, as all functionality is
available on all sites of the cluster and can be used decentralized.
Therefore the cluster is essentially scalable to any desired size."

We scale the primes workload (width grown with the cluster, as a user
would) from 1 to 32 sites and check throughput keeps rising — the curve
bends (steal traffic, collector serialization) but never inverts.
"""

from __future__ import annotations

from repro.bench import calibrated_test_params, render_table, run_primes
from repro.bench.harness import wall_clock_meta

from bench_util import write_result

P = 100
SITES = (1, 2, 4, 8, 16, 32)


def test_scaling(benchmark):
    durations = {}
    clusters = []

    def sweep():
        scale, base = calibrated_test_params(P, 10)
        for nsites in SITES:
            width = max(10, 2 * nsites)  # give big clusters enough lanes
            duration, cluster = run_primes(P, width, nsites, scale, base,
                                           progress_timeout=600.0)
            durations[nsites] = duration
            clusters.append(cluster)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    t1 = durations[1]
    rows = [[n, f"{durations[n]:.2f}s", f"{t1 / durations[n]:.2f}",
             f"{t1 / durations[n] / n * 100:.0f} %"]
            for n in SITES]
    write_result("scaling", render_table(
        f"E10: scaling the cluster (primes p={P}, width = max(10, 2n))",
        ["sites", "duration", "speedup", "efficiency"],
        rows))
    for n in SITES:
        benchmark.extra_info[f"speedup_{n}"] = round(t1 / durations[n], 2)
    # informational wall-clock throughput across the whole sweep
    benchmark.extra_info["events_per_sec"] = round(
        wall_clock_meta(clusters)["events_per_sec"])

    # monotone improvement all the way up
    ordered = [durations[n] for n in SITES]
    for smaller, larger in zip(ordered, ordered[1:]):
        assert larger < smaller
    # no collapse at 32 sites: at least ~40% efficiency
    assert t1 / durations[32] > 0.4 * 32
