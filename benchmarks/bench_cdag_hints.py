"""Experiment E11 — CDAG scheduling hints (§3.3).

"Moreover, microthreads in the critical path of the application can be
identified, which are then executed with higher priority. ... Current
research includes which information is particularly suited for scheduling
hints, and their effects on the run duration."

Workload built to the paper's description (an application with a long
critical path): a serial *chain* of cheap steps where each step unlocks a
batch of expensive parallel tasks.  The CDAG marks the chain critical.
With hints honoured, chain steps jump queues and take the express
processing slot, so the batches stream out and every site stays busy; with
hints ignored, each chain step queues behind multi-millisecond tasks and
the whole pipeline crawls.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cdag import CDAG, derive_hints
from repro.core.program import ProgramBuilder
from repro.bench import render_table
from repro.bench.harness import bench_config
from repro.site.simcluster import SimCluster

from bench_util import write_result

STEPS, BATCH, TASK_WORK = 60, 2, 5000.0


def chain_program():
    prog = ProgramBuilder("chainwork")

    @prog.microthread(work=10, creates=("step", "sink"))
    def main(ctx, steps, batch, task_work):
        ctx.charge(10)
        sink = ctx.create_frame("sink", nparams=steps * batch)
        first = ctx.create_frame("step", critical=True, priority=100.0)
        ctx.send_result(first, 0, {"i": 0, "steps": steps, "batch": batch,
                                   "work": task_work, "sink": sink})

    @prog.microthread(work=20, creates=("step", "task"))
    def step(ctx, state):
        ctx.charge(20)
        i = state["i"]
        for j in range(state["batch"]):
            task = ctx.create_frame(
                "task",
                targets=[(state["sink"], i * state["batch"] + j)])
            ctx.send_result(task, 0, state["work"])
        if i + 1 < state["steps"]:
            nxt = ctx.create_frame("step", critical=True, priority=100.0)
            state["i"] = i + 1
            ctx.send_result(nxt, 0, state)

    @prog.microthread(work=5000)
    def task(ctx, work):
        ctx.charge(work)
        ctx.send_to_targets(1)

    @prog.microthread
    def sink(ctx, *ones):
        ctx.charge(10)
        ctx.exit_program(sum(ones))

    return prog.build()


def run_hints(nsites: int, use_hints: bool) -> float:
    """Mean duration over three seeds (steal timing is the noise source;
    compilation cost is zeroed so the short runs measure scheduling only)."""
    durations = []
    for seed in (0, 1, 2):
        config = bench_config()
        config = config.with_(
            seed=seed,
            cost=replace(config.cost, compile_fixed_cost=1e-5),
            scheduling=replace(config.scheduling, use_hints=use_hints))
        cluster = SimCluster(nsites=nsites, config=config)
        handle = cluster.submit(chain_program(),
                                args=(STEPS, BATCH, TASK_WORK))
        cluster.run(progress_timeout=600.0)
        assert handle.result == STEPS * BATCH
        durations.append(handle.duration)
    return sum(durations) / len(durations)


def test_cdag_hints(benchmark):
    # sanity: the CDAG analysis itself marks the chain critical
    cdag = CDAG.from_program(chain_program())
    assert cdag.node("step").on_critical_path
    policy = derive_hints(chain_program())
    assert policy.is_critical("step")
    assert not policy.is_critical("task")

    durations = {}

    def sweep():
        for nsites in (1, 8):
            durations[(nsites, True)] = run_hints(nsites, True)
            durations[(nsites, False)] = run_hints(nsites, False)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for nsites in (1, 8):
        hinted = durations[(nsites, True)]
        unhinted = durations[(nsites, False)]
        rows.append([nsites, f"{hinted:.3f}s", f"{unhinted:.3f}s",
                     f"{unhinted / hinted:.2f}x"])
    write_result("cdag_hints", render_table(
        f"E11: critical-path hints on/off (chain of {STEPS} steps "
        f"unlocking {BATCH} tasks each)",
        ["sites", "hints on", "hints off", "hint gain"],
        rows))
    benchmark.extra_info["gain_8_sites"] = round(
        durations[(8, False)] / durations[(8, True)], 2)

    # hints shorten the run wherever the chain competes with batch tasks
    assert durations[(8, True)] < durations[(8, False)] * 0.85
    assert durations[(1, True)] <= durations[(1, False)] * 1.02
