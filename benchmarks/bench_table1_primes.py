"""Experiment T1 — reproduce Table 1 of the paper (§5).

"On a cluster of identical machines (Pentium IV, 1.7 GHz), a value for the
speedup is shown in Table 1" — p primes, width candidates in flight, on 1,
4, and 8 sites.  The 1-site column is calibrated (per (p, width) row) so an
ideal sequential execution matches the paper's seconds; the 4- and 8-site
columns — and therefore the speedups — are measured.

Paper speedups: 3.4–3.5 (4 sites, width 10), 3.5–3.6 (4 sites, width 20),
6.4–6.6 (8 sites, width 10), 6.9–7.0 (8 sites, width 20).

Default sweep: p in {100, 200}; set SDVM_BENCH_FULL=1 for the full
{100, 200, 500, 1000}.
"""

from __future__ import annotations

from repro.bench import (
    PAPER_TABLE1,
    calibrated_test_params,
    render_table,
    run_primes,
)
from repro.bench.harness import FULL_SWEEP

from bench_util import write_bench_json, write_result

P_VALUES = (100, 200, 500, 1000) if FULL_SWEEP else (100, 200)
WIDTHS = (10, 20)
SITES = (1, 4, 8)


def test_table1_primes(benchmark):
    measured = {}

    def sweep():
        for width in WIDTHS:
            for p in P_VALUES:
                scale, base = calibrated_test_params(p, width)
                times = {}
                for nsites in SITES:
                    duration, _cluster = run_primes(p, width, nsites,
                                                    scale, base)
                    times[nsites] = duration
                measured[(p, width)] = times

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for width in WIDTHS:
        for p in P_VALUES:
            t1, t4, t8 = (measured[(p, width)][n] for n in SITES)
            paper_t1, paper_t4, paper_t8 = PAPER_TABLE1[(p, width)]
            rows.append([
                p, width,
                f"{t1:.1f}s", f"{t4:.1f}s ({t1 / t4:.1f})",
                f"{t8:.1f}s ({t1 / t8:.1f})",
                f"{paper_t1:.1f}s",
                f"{paper_t4:.1f}s ({paper_t1 / paper_t4:.1f})",
                f"{paper_t8:.1f}s ({paper_t1 / paper_t8:.1f})",
            ])
            benchmark.extra_info[f"S4_p{p}_w{width}"] = round(t1 / t4, 2)
            benchmark.extra_info[f"S8_p{p}_w{width}"] = round(t1 / t8, 2)

    metrics = {}
    for (p, width), times in measured.items():
        key = f"p{p}_w{width}"
        metrics[f"{key}_t1"] = times[1]
        metrics[f"{key}_s4"] = times[1] / times[4]
        metrics[f"{key}_s8"] = times[1] / times[8]
    write_bench_json("table1_primes", metrics,
                     tolerances={name: 0.10 for name in metrics},
                     meta={"p_values": list(P_VALUES),
                           "widths": list(WIDTHS)})

    write_result("table1_primes", render_table(
        "Table 1 reproduction: primes on 1/4/8 sites (measured | paper)",
        ["p", "width", "1 site", "4 sites (S)", "8 sites (S)",
         "paper 1", "paper 4 (S)", "paper 8 (S)"],
        rows))

    for (p, width), times in measured.items():
        t1, t4, t8 = times[1], times[4], times[8]
        paper_t1, paper_t4, paper_t8 = PAPER_TABLE1[(p, width)]
        # T1 is calibrated: it must land within a few percent of the paper
        assert abs(t1 - paper_t1) / paper_t1 < 0.05, (p, width, t1)
        # speedup *shape*: who wins and by roughly what factor
        s4, s8 = t1 / t4, t1 / t8
        paper_s4, paper_s8 = paper_t1 / paper_t4, paper_t1 / paper_t8
        assert abs(s4 - paper_s4) / paper_s4 < 0.25, (p, width, s4, paper_s4)
        assert abs(s8 - paper_s8) / paper_s8 < 0.30, (p, width, s8, paper_s8)
        assert s8 > s4 > 1.0
    # width 20 beats width 10 on 8 sites (more slack over the barrier)
    for p in P_VALUES:
        assert (measured[(p, 20)][8] / measured[(p, 20)][1]
                <= 1.02 * measured[(p, 10)][8] / measured[(p, 10)][1] + 1)
