"""Experiment E7 — logical-id allocation strategies under churn (§4).

"To create a unique logical id for new sites, the cluster manager may
follow different concepts.  A central contact site can be created ...
Another concept is to provide several site id servers, which are given a
contingent of free ids ... Another approach may be to define a fixed number
of site id servers and let them emit any multiple of their own id."

We sign 24 sites onto a cluster through *random* contact points and
measure: time until the whole cluster is formed, sign-on messages consumed,
and how many sign-ons the contact site had to forward (the centralization
cost the paper worries about).
"""

from __future__ import annotations

from repro.bench import render_table
from repro.bench.harness import bench_config
from repro.common.config import ClusterConfig, SiteConfig
from repro.site.simcluster import SimCluster

from bench_util import write_result

N_SITES = 24
STRATEGIES = ("central", "contingent", "modulo")


def run_strategy(strategy: str) -> dict:
    config = bench_config(cluster=ClusterConfig(
        id_allocation=strategy, contingent_size=4))
    cluster = SimCluster(nsites=1, config=config)
    cluster.sim.run(until=0.01)
    rng = cluster.sim.rng
    # churn: each joiner contacts a random existing site
    for i in range(1, N_SITES):
        via = rng.randrange(len(cluster.sites))
        cluster.add_site(SiteConfig(name=f"s{i}"),
                         at=cluster.sim.now + i * 2e-4, via_index=via)
    formed_at = None
    deadline = 5.0
    while cluster.sim.now < deadline:
        cluster.sim.run(until=cluster.sim.now + 0.01)
        if all(site.running for site in cluster.sites):
            formed_at = cluster.sim.now
            break
    stats = cluster.total_stats()
    ids = [site.site_id for site in cluster.sites]
    return {
        "formed": formed_at is not None,
        "time": formed_at if formed_at is not None else float("inf"),
        "unique": len(set(ids)) == len(ids) and -1 not in ids,
        "forwarded": stats.get("sign_ons_forwarded").count,
        "messages": stats.get("sent").count,
    }


def test_id_allocation_strategies(benchmark):
    results = {}

    def sweep():
        for strategy in STRATEGIES:
            results[strategy] = run_strategy(strategy)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[name, "yes" if r["formed"] else "NO",
             f"{r['time'] * 1e3:.1f} ms", r["forwarded"], r["messages"],
             "yes" if r["unique"] else "COLLISION"]
            for name, r in results.items()]
    write_result("id_allocation", render_table(
        f"E7: id allocation strategies, {N_SITES} sites joining via random "
        f"contact points",
        ["strategy", "formed", "formation time", "sign-ons forwarded",
         "messages", "ids unique"],
        rows))

    for name, r in results.items():
        assert r["formed"], name
        assert r["unique"], name
        benchmark.extra_info[f"{name}_forwarded"] = r["forwarded"]
    # the central strategy concentrates allocation: it must forward
    # (or relay) strictly more sign-ons than the decentralized contingent
    # strategy once blocks are spread
    assert (results["central"]["forwarded"]
            >= results["contingent"]["forwarded"])
