"""Experiment E9 — checkpointed crash recovery (§2.2, §6, ref [4]).

"If a site gets shut down uncontrolled or even crashes, the resulting
damage is diminished due to the SDVM's crash management.  However, as a
recovery costs time and resources nonetheless..."

We crash one of four sites mid-run and sweep the checkpoint interval: the
shorter the interval, the less work is lost at the crash but the more
checkpoint overhead is paid continuously — the classic trade-off.
"""

from __future__ import annotations

from repro.apps import build_primes_program, first_n_primes
from repro.bench import calibrated_test_params, render_table
from repro.bench.harness import bench_config
from repro.common.config import CheckpointConfig, ClusterConfig
from repro.site.simcluster import SimCluster

from bench_util import write_bench_json, write_result

P, WIDTH, SITES = 100, 10, 4
CRASH_AT = 4.0
INTERVALS = (0.5, 1.0, 2.0)


def crash_config(interval: float) -> "SDVMConfig":  # noqa: F821
    return bench_config(
        cluster=ClusterConfig(heartbeats_enabled=True,
                              heartbeat_interval=0.1,
                              heartbeat_timeout=0.4),
        checkpoint=CheckpointConfig(enabled=True, interval=interval))


def run_case(interval: float, crash: bool) -> float:
    scale, base = calibrated_test_params(P, WIDTH)
    cluster = SimCluster(nsites=SITES, config=crash_config(interval))
    handle = cluster.submit(build_primes_program(),
                            args=(P, WIDTH, scale, base))
    if crash:
        cluster.crash_site(SITES - 1, at=CRASH_AT)
    cluster.run(progress_timeout=600.0)
    assert handle.result == first_n_primes(P)
    if crash:
        coordinator = cluster.sites[0]
        assert coordinator.crash_manager.stats.get("recoveries").count >= 1
    return handle.duration


def test_crash_recovery(benchmark):
    results = {}

    def sweep():
        for interval in INTERVALS:
            healthy = run_case(interval, crash=False)
            crashed = run_case(interval, crash=True)
            results[interval] = (healthy, crashed)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for interval, (healthy, crashed) in results.items():
        rows.append([f"{interval:.1f}s", f"{healthy:.2f}s",
                     f"{crashed:.2f}s",
                     f"{crashed - healthy:.2f}s"])
    write_result("crash_recovery", render_table(
        f"E9: crash of 1/{SITES} sites at t={CRASH_AT}s vs checkpoint "
        f"interval (primes p=100 w=10)",
        ["ckpt interval", "no crash", "with crash", "recovery cost"],
        rows))
    # informational sdvm-bench/1 artifact (NOT wired into the bench gate:
    # recovery cost depends on where the crash lands relative to the last
    # commit, so it is tracked, not enforced)
    metrics = {}
    for interval, (healthy, crashed) in results.items():
        key = f"{interval:.1f}".replace(".", "_")
        metrics[f"healthy_s_{key}"] = round(healthy, 6)
        metrics[f"crashed_s_{key}"] = round(crashed, 6)
        metrics[f"recovery_cost_s_{key}"] = round(crashed - healthy, 6)
    write_bench_json("crash_recovery", metrics,
                     meta={"informational": True, "p": P, "width": WIDTH,
                           "sites": SITES, "crash_at": CRASH_AT,
                           "intervals": list(INTERVALS)})

    for interval, (healthy, crashed) in results.items():
        # §2.2: the crash is overcome — but recovery costs time
        assert crashed > healthy
        benchmark.extra_info[f"recovery_cost_{interval}"] = round(
            crashed - healthy, 2)
    # losing a site costs at most a site's share plus rollback: the run
    # still beats the healthy 4-site time by less than ~2.5x
    for interval, (healthy, crashed) in results.items():
        assert crashed < healthy * 2.5
