"""CI smoke check for the silent-data-corruption defense
(``make sdc-smoke``).

Walks the whole detect/quarantine/tie-break pipeline on the two
committed SDC corpus plans:

1. **Defended** (``sdc_detected.json``: corruption window + full
   replication): the run must complete with the correct result, every
   injected corruption of a replicated thread must produce exactly one
   ``sdc_mismatch`` detection and one ``sdc_resolved`` tie-break, and no
   tainted effect may reach a commit.
2. **Health plane**: the same plan re-run with the metrics sampler on
   must trip the ``sdc_mismatch`` health detector (and only because of
   real mismatches).
3. **Undefended** (``expected_fail/sdc_undefended.json``: same
   corruption, replication off): the invariant audit must flag the run
   with an ``sdc_commit`` violation — corruption reached a committed
   result and the journal proves it.

Exits non-zero on any failure so it can gate CI.
"""

from __future__ import annotations

import os
import sys

CORPUS = os.path.join(os.path.dirname(__file__), os.pardir,
                      "tests", "chaos_corpus")


def main() -> int:
    from repro.chaos import FaultPlan, run_plan
    from repro.common.config import TelemetryConfig

    # 1. defended: detect + tie-break, exact accounting
    plan = FaultPlan.load(os.path.join(CORPUS, "sdc_detected.json"))
    result = run_plan(plan)
    if not result.ok:
        print("FAIL: defended plan violated invariants:")
        for violation in result.violations:
            print(f"  {violation}")
        return 1
    kinds = result.cluster.tracer.kinds()
    corruptions = sum(
        1 for e in result.cluster.tracer.events
        if e.kind == "chaos_fault" and e.fields[0] == "corrupt_result")
    mismatches = kinds.get("sdc_mismatch", 0)
    resolved = kinds.get("sdc_resolved", 0)
    tainted = kinds.get("sdc_tainted_commit", 0)
    if corruptions == 0:
        print("FAIL: the corruption window never fired")
        return 1
    if mismatches != corruptions or resolved != corruptions:
        print(f"FAIL: accounting is off — {corruptions} corruption(s), "
              f"{mismatches} mismatch(es), {resolved} resolution(s)")
        return 1
    if tainted != 0:
        print(f"FAIL: {tainted} tainted effect(s) committed under full "
              f"replication")
        return 1
    print(f"defended: ok — {corruptions} corruption(s), each detected "
          f"and resolved, 0 tainted commits")

    # 2. health plane: the sdc_mismatch detector must see the mismatches
    telemetry = TelemetryConfig(metrics_enabled=True, metrics_interval=0.05,
                                flight_recorder=True)
    watched = run_plan(plan, telemetry=telemetry)
    monitor = watched.cluster.health
    if monitor is None:
        print("FAIL: metrics-on run has no health monitor")
        return 1
    fired = [d for d in monitor.detections if d.detector == "sdc_mismatch"]
    if not fired:
        print("FAIL: health detector missed the replica mismatches")
        return 1
    print(f"health: sdc_mismatch detector fired "
          f"({len(fired)} episode(s))")

    # 3. undefended: the journal invariant must flag the corrupted commit
    plan = FaultPlan.load(os.path.join(CORPUS, "expected_fail",
                                       "sdc_undefended.json"))
    result = run_plan(plan)
    if result.ok:
        print("FAIL: undefended corruption passed the invariant audit")
        return 1
    invariants = {v.invariant for v in result.violations}
    if "sdc_commit" not in invariants:
        print(f"FAIL: undefended run flagged, but not by the sdc_commit "
              f"invariant (got: {sorted(invariants)})")
        return 1
    print(f"undefended: flagged as expected ({sorted(invariants)})")

    print("sdc smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
