#!/usr/bin/env python3
"""The live runtime: real daemons, real TCP sockets, real processes.

Three deployments of the same program:

1. in-process threads (queue loopback) — fastest to spin up;
2. in-process threads over real 127.0.0.1 TCP sockets;
3. worker sites as separate OS processes over TCP — one daemon per
   process, the paper's one-daemon-per-machine model, with true multi-core
   parallelism.

    python examples/live_sockets.py
"""

import time

from repro.common.config import CostModel, SchedulingConfig, SDVMConfig
from repro.core.program import ProgramBuilder
from repro.runtime.live_cluster import LiveCluster
from repro.runtime.multiproc import (
    spawn_workers,
    stop_workers,
    wait_for_cluster_size,
)

N_TASKS, LOOPS = 48, 200_000
CFG = SDVMConfig(
    cost=CostModel(compile_fixed_cost=1e-4),
    scheduling=SchedulingConfig(ready_target=1, keep_local_min=0))

#: one worker thread per site: CPU-bound microthreads gain nothing from
#: intra-process parallelism (GIL), and a lean site leaves more frames
#: stealable — the paper's "should leave enough work for other sites"
def one_worker_sites(count, prefix):
    from repro.common.config import SiteConfig
    return [SiteConfig(name=f"{prefix}{i}", max_parallel=1)
            for i in range(count)]


def heavy_program():
    """Fan-out of genuinely CPU-heavy tasks (~10 ms of real Python each),
    so work actually spreads over live sites and, with worker *processes*,
    runs on multiple cores in parallel."""
    prog = ProgramBuilder("heavy")

    @prog.microthread(creates=("crunch", "collect"))
    def main(ctx, n, loops):
        ctx.charge(10)
        collector = ctx.create_frame("collect", nparams=n)
        for i in range(n):
            worker = ctx.create_frame("crunch", targets=[(collector, i)])
            ctx.send_result(worker, 0, i)
            ctx.send_result(worker, 1, loops)

    @prog.microthread
    def crunch(ctx, seed, loops):
        acc = 0
        for k in range(loops):
            acc = (acc + (k ^ seed) * k) % 1000003
        ctx.charge(loops)
        ctx.send_to_targets(acc)

    @prog.microthread
    def collect(ctx, *values):
        ctx.charge(10)
        ctx.exit_program(sum(values) % 1000003)

    return prog.build()


def expected_result():
    total = 0
    for seed in range(N_TASKS):
        acc = 0
        for k in range(LOOPS):
            acc = (acc + (k ^ seed) * k) % 1000003
        total += acc
    return total % 1000003


def run_threads(transport: str, expected: int) -> float:
    started = time.perf_counter()
    with LiveCluster(site_configs=one_worker_sites(4, "t"),
                     config=CFG, transport=transport) as cluster:
        result = cluster.run(heavy_program(), args=(N_TASKS, LOOPS),
                             timeout=120)
        assert result == expected
        elapsed = time.perf_counter() - started
        execs = [site.processing_manager.stats.get("executions").count
                 for site in cluster.sites]
    print(f"  threads/{transport:7s}: {N_TASKS} tasks in {elapsed:5.2f}s "
          f"wall, executions per site {execs}")
    return elapsed


def run_multiprocess(expected: int) -> float:
    started = time.perf_counter()
    with LiveCluster(site_configs=one_worker_sites(1, "front"),
                     config=CFG, transport="tcp") as cluster:
        addr = cluster.sites[0].kernel.local_physical()
        print(f"  frontend daemon on {addr}; spawning 3 worker processes "
              f"(one GIL each)...")
        workers = spawn_workers(3, addr, CFG,
                                site_configs=one_worker_sites(3, "w"))
        try:
            assert wait_for_cluster_size(cluster.sites[0], 4, timeout=20)
            result = cluster.run(heavy_program(), args=(N_TASKS, LOOPS),
                                 timeout=180)
            assert result == expected
            elapsed = time.perf_counter() - started
            local_execs = cluster.sites[0].processing_manager.stats.get(
                "executions").count
            print(f"  4-process cluster: {N_TASKS} tasks in "
                  f"{elapsed:5.2f}s wall "
                  f"({local_execs} ran on the frontend, the rest on "
                  f"worker processes)")
        finally:
            stop_workers(workers)
    return elapsed


def main() -> None:
    import os
    cores = os.cpu_count() or 1
    print(f"live SDVM cluster, three deployments of the same program "
          f"({cores} core(s) available):")
    expected = expected_result()
    thread_time = run_threads("inproc", expected)
    run_threads("tcp", expected)
    process_time = run_multiprocess(expected)
    ratio = thread_time / process_time
    if cores > 1:
        print(f"all deployments returned the correct result; processes vs "
              f"threads: {ratio:.1f}x (separate GILs -> real parallelism)")
    else:
        print(f"all deployments returned the correct result; on a single "
              f"core, processes cannot beat threads (ratio {ratio:.1f}x) — "
              f"run on a multi-core host to see the process-level speedup")


if __name__ == "__main__":
    main()
