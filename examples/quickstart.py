#!/usr/bin/env python3
"""Quickstart: write an SDVM application and run it on a simulated cluster.

An SDVM program is split into *microthreads* — code fragments whose
execution is triggered by *microframes* carrying their arguments (dataflow
synchronization, paper §3).  This example builds a tiny fan-out/fan-in
pipeline and runs it on a 4-site cluster.

    python examples/quickstart.py
"""

from repro import ProgramBuilder, SimCluster

prog = ProgramBuilder("quickstart")


@prog.microthread(creates=("square", "report"))
def main(ctx, n):
    """Entry microthread: fans out n 'square' tasks feeding one collector."""
    ctx.charge(10)  # declare compute work (drives the simulated clock)
    ctx.output(f"fanning out {n} squares")
    # the collector fires only when all n parameter slots are filled
    collector = ctx.create_frame("report", nparams=n)
    for i in range(n):
        worker = ctx.create_frame("square", targets=[(collector, i)])
        ctx.send_result(worker, 0, i)


@prog.microthread
def square(ctx, value):
    ctx.charge(100)
    ctx.send_to_targets(value * value)  # to the (frame, slot) in my targets


@prog.microthread
def report(ctx, *squares):
    ctx.charge(10)
    total = sum(squares)
    ctx.output(f"sum of squares = {total}")
    ctx.exit_program(total)


def main_cli() -> None:
    cluster = SimCluster(nsites=4)
    handle = cluster.submit(prog.build(), args=(32,))
    cluster.run()

    print("console output (routed to the frontend site):")
    for line in handle.output():
        print("   ", line)
    print(f"result: {handle.result}")
    print(f"virtual duration: {handle.duration * 1e3:.2f} ms "
          f"on {cluster.alive_count()} sites")
    stats = cluster.total_stats()
    print(f"messages sent: {stats.get('sent').count}, "
          f"frames executed: {stats.get('executions').count}, "
          f"steals: {stats.get('steals_in').count}")
    assert handle.result == sum(i * i for i in range(32))


if __name__ == "__main__":
    main_cli()
