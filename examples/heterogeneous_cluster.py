#!/usr/bin/env python3
"""Heterogeneous clusters: mixed platforms, mixed speeds, WAN topology.

Paper §3.4: "If the microthread is not available in the new site's platform
specific binary format, it will receive the source code of the microthread
and compile it on the fly. ... This way new platform types may be added to
the cluster as well, offering the usage of heterogeneous clusters."

This example builds a cluster of two LAN islands joined by a slow WAN link
(the paper's internet scenario, §2.1), with three platform kinds and
per-site speeds from 0.5x to 2x, runs blocked matrix multiplication on it,
and reports how code travelled (binary vs source) and how work followed
speed.

    python examples/heterogeneous_cluster.py
"""

from repro.apps import build_matmul_program
from repro.apps.matmul import reference_multiply
from repro.common.config import CostModel, SchedulingConfig, SDVMConfig, SiteConfig
from repro.net.topology import Topology
from repro.site.simcluster import SimCluster

N, BLOCK = 24, 6


def main() -> None:
    site_configs = [
        SiteConfig(name="lnx-fast", platform="linux-x64", speed=2.0,
                   code_distribution=True),
        SiteConfig(name="lnx-slow", platform="linux-x64", speed=0.5),
        SiteConfig(name="hpux-1", platform="hp-ux", speed=1.0),
        SiteConfig(name="hpux-2", platform="hp-ux", speed=1.0),
        SiteConfig(name="sparc", platform="sparc", speed=1.5),
        SiteConfig(name="sparc-2", platform="sparc", speed=1.0),
    ]
    config = SDVMConfig(
        cost=CostModel(compile_fixed_cost=5e-3),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0))
    topology = Topology.wan_coupled(3, 3, lan_latency=60e-6,
                                    wan_latency=5e-3)
    cluster = SimCluster(site_configs=site_configs, config=config,
                         topology=topology)
    handle = cluster.submit(build_matmul_program(), args=(N, BLOCK))
    cluster.run(progress_timeout=120.0)

    assert handle.result == reference_multiply(N)
    print(f"matmul {N}x{N} (block {BLOCK}) correct on a 3-platform, "
          f"WAN-coupled cluster in {handle.duration * 1e3:.1f} ms\n")

    stats = cluster.total_stats()
    print(f"code movement: {stats.get('compiles').count} on-the-fly "
          f"compiles, {stats.get('binaries_received').count} binaries "
          f"shipped, {stats.get('sources_received').count} sources shipped")
    print(f"binaries pushed back to distribution sites: "
          f"{stats.get('binaries_pushed').count}\n")

    print(f"{'site':10s} {'platform':10s} {'speed':>5s} {'executions':>11s} "
          f"{'work done':>10s}")
    for site_config, site in zip(site_configs, cluster.sites):
        execs = site.processing_manager.stats.get("executions").count
        work = site.processing_manager.work_done
        print(f"{site_config.name:10s} {site_config.platform:10s} "
              f"{site_config.speed:5.1f} {execs:11d} {work:10.0f}")
    fast = cluster.sites[0].processing_manager.work_done
    slow = cluster.sites[1].processing_manager.work_done
    print(f"\nload balancing followed speed: the 2x site did "
          f"{fast / max(slow, 1):.1f}x the work of the 0.5x site")


if __name__ == "__main__":
    main()
