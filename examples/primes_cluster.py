#!/usr/bin/env python3
"""The paper's §5 benchmark: first p primes, width candidates in flight.

Reproduces one row of Table 1 — the same program on 1, 4, and 8 sites —
with the cost model calibrated so the 1-site run matches the paper's
Pentium IV seconds.

    python examples/primes_cluster.py [p] [width]
"""

import sys

from repro.apps import build_primes_program, first_n_primes
from repro.bench import PAPER_TABLE1, calibrated_test_params
from repro.bench.harness import bench_config
from repro.site.simcluster import SimCluster


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    if (p, width) in PAPER_TABLE1:
        scale, base = calibrated_test_params(p, width)
    else:
        scale, base = 4000.0, 40000.0  # uncalibrated but realistic

    app = build_primes_program()
    expected = first_n_primes(p)
    durations = {}
    for nsites in (1, 4, 8):
        cluster = SimCluster(nsites=nsites, config=bench_config())
        handle = cluster.submit(app, args=(p, width, scale, base))
        cluster.run(progress_timeout=600.0)
        assert handle.result == expected
        durations[nsites] = handle.duration
        print(f"{nsites} site(s): {handle.duration:7.1f} s  "
              f"speedup {durations[1] / handle.duration:4.2f}")

    if (p, width) in PAPER_TABLE1:
        t1, t4, t8 = PAPER_TABLE1[(p, width)]
        print(f"paper:      {t1:7.1f} s / {t4:.1f} s ({t1 / t4:.1f}) / "
              f"{t8:.1f} s ({t1 / t8:.1f})")
    print(f"primes found: {expected[:5]} ... {expected[-1]}")


if __name__ == "__main__":
    main()
