#!/usr/bin/env python3
"""Dynamic entry/exit and crash recovery under a long-running program.

The paper's headline capability (§3.4, §2.2): "big and permanently running
applications like climate model calculations may be migrated e.g. to new
hardware without shutting down."  We run the Jacobi stencil (the climate
stand-in) while the cluster underneath it:

  t=0.0   starts with 3 sites
  t=0.5   a 4th site signs on ("quickly gets work")
  t=1.5   site 2 signs off in an orderly fashion (frames+memory relocate)
  t=3.0   site 3 CRASHES — heartbeats time out, the coordinator rolls
          everyone back to the last committed checkpoint and re-spreads

The program's result is verified against a sequential reference.

    python examples/elastic_cluster.py
"""

from repro.apps import build_stencil_program
from repro.apps.stencil import reference_stencil
from repro.common.config import (
    CheckpointConfig,
    ClusterConfig,
    CostModel,
    SchedulingConfig,
    SDVMConfig,
)
from repro.site.simcluster import SimCluster

N, STRIPS, STEPS = 24, 4, 800


def main() -> None:
    config = SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-3),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0),
        cluster=ClusterConfig(heartbeats_enabled=True,
                              heartbeat_interval=0.05,
                              heartbeat_timeout=0.25),
        checkpoint=CheckpointConfig(enabled=True, interval=0.4),
    )
    cluster = SimCluster(nsites=3, config=config)
    handle = cluster.submit(build_stencil_program(),
                            args=(N, STRIPS, STEPS))

    newcomer = cluster.add_site(at=0.5)
    cluster.sign_off_site(2, at=1.5)
    cluster.crash_site(3, at=3.0)

    cluster.run(progress_timeout=120.0)

    checksum, delta = handle.result
    ref_checksum, ref_delta = reference_stencil(N, STEPS)
    print(f"grid checksum   : {checksum:.6f} "
          f"(reference {ref_checksum:.6f})")
    print(f"last-step delta : {delta:.6f} (reference {ref_delta:.6f})")
    assert abs(checksum - ref_checksum) < 1e-6

    print(f"\ncompleted in {handle.duration:.2f} virtual seconds despite "
          f"join + sign-off + crash")
    coordinator = cluster.sites[0]
    cm = coordinator.crash_manager
    print(f"checkpoint waves committed: "
          f"{cm.stats.get('checkpoints_committed').count}, "
          f"recoveries: {cm.stats.get('recoveries').count}")
    print(f"newcomer executed "
          f"{newcomer.processing_manager.stats.get('executions').count} "
          f"microthreads before the run ended")
    for index, site in enumerate(cluster.sites):
        state = ("running" if site.running else
                 "left" if site.leaving or site.stopped and index == 2
                 else "stopped")
        print(f"  site {index}: {state:8s} "
              f"executions="
              f"{site.processing_manager.stats.get('executions').count}")


if __name__ == "__main__":
    main()
