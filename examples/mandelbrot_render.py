#!/usr/bin/env python3
"""Mandelbrot on the SDVM: remote output routed to the frontend (§4 I/O).

Every scanline renders as its own microthread somewhere in the cluster;
the ASCII art arrives line by line at the frontend site, exactly as the
paper's I/O manager routes user interaction "to a frontend on any desired
machine".

    python examples/mandelbrot_render.py [width] [height]
"""

import sys

from repro.apps import build_mandelbrot_program
from repro.common.config import CostModel, SchedulingConfig, SDVMConfig
from repro.site.simcluster import SimCluster


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 78
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 24

    config = SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-3),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0))
    cluster = SimCluster(nsites=6, config=config)
    handle = cluster.submit(build_mandelbrot_program(),
                            args=(width, height, 80))
    cluster.run(progress_timeout=120.0)

    total, _art = handle.result
    for line in handle.output():
        print(line)
    busy = [site.processing_manager.stats.get("executions").count
            for site in cluster.sites]
    print(f"\n{height} rows rendered across {len(cluster.sites)} sites "
          f"(rows per site: {busy}); {total} iterations total; "
          f"{handle.duration * 1e3:.1f} virtual ms")


if __name__ == "__main__":
    main()
