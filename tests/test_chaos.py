"""Tests for the deterministic chaos engine: plan schema, injection
mechanics, invariant auditing, the regression corpus, and the CLI.

The corpus plans under ``tests/chaos_corpus/`` are shrunk repros of real
bugs the fuzzer flushed out; each must keep passing on the fixed code
(and four of them fail on the pre-hardening crash manager — see the
plan files' ``name`` fields for which bug each one pins down).
"""

from __future__ import annotations

import glob
import io
import json
import os

import pytest

from repro.chaos import (
    ChaosController,
    CorruptFault,
    CrashFault,
    FaultPlan,
    InvariantChecker,
    LinkFault,
    PartitionFault,
    SlowFault,
    journal_fingerprint,
    random_plan,
    run_plan,
    shrink_plan,
    verify_determinism,
)
from repro.cli import main
from repro.common.errors import SDVMError

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "chaos_corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

#: journal fingerprints of every replication-off corpus plan, pinned at
#: the commit that introduced selective replication: the defense layer
#: must be invisible (bit-for-bit) whenever ``replicate_frac == 0``
PINNED_FINGERPRINTS = {
    "coordinator_crash.json":
        "9b8c8183631d876425ce8838a4877f5b26cc2d4eb942c5fd24462402d1b1ee94",
    "crash_during_recovery.json":
        "47a79715baede9d7e0bd1159c50295acf089446c33f056d1938fcf66310a01f9",
    "crash_during_wave.json":
        "49665ab7fcb8bc0378c0c934ddea442807eb032105ab5e28e8ef5f1ae13998a5",
    "dir_shard_crash.json":
        "b34d4e7116260beccc281fd8a55a13a19f51ce9bc8dc3aeeaa1694bf6b386d97",
    "duplicate_delivery.json":
        "8bc69d1b395bf59b8dec96ddfcc0748df9a67bca8c7a61932a31864d7480de07",
    "lossy_recovery.json":
        "280e428f3d959b7d1c3ec1667eb6b8a48c0bfb027d95353cd5b8ebe36a14098b",
    "partition_then_heal.json":
        "a943357d7a8d2357ed0665b7f242c008a0077730ae8e48d41754805af80ed7da",
    "steal_batch_reorder.json":
        "b5dbae0d9f9bab51de4d59f7ccef87cfe5610dbe1bb180bac40da30d4f1526b8",
    "wave_stall.json":
        "4213dbb74225dfefcda1dca700734976ecd4bc8382e1270e927a1d950d67589e",
}

_corpus_results = {}


def corpus_result(path):
    """Run one corpus plan at most once per session (results are shared
    between the pass/fingerprint tests, which keeps the suite's corpus
    cost where it was before fingerprint pinning)."""
    if path not in _corpus_results:
        _corpus_results[path] = run_plan(FaultPlan.load(path))
    return _corpus_results[path]


def corpus_plan(name):
    return FaultPlan.load(os.path.join(CORPUS_DIR, f"{name}.json"))


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = random_plan(3)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan

    def test_save_load_roundtrip(self, tmp_path):
        plan = random_plan(4)
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_schema_is_versioned(self):
        blob = json.loads(random_plan(1).to_json())
        assert blob["schema"] == "sdvm-chaos/1"

    def test_generator_is_deterministic(self):
        assert random_plan(9) == random_plan(9)
        assert random_plan(9) != random_plan(10)

    def test_generator_never_kills_submit_site_or_last_survivor(self):
        for seed in range(30):
            plan = random_plan(seed)
            doomed = {f.site for f in plan.faults
                      if f.kind in ("crash", "sign_off")}
            assert plan.submit_site not in doomed
            assert len(doomed) < plan.nsites

    def test_validate_rejects_bad_site(self):
        plan = FaultPlan(nsites=2, faults=[CrashFault(at=1.0, site=5)])
        with pytest.raises(SDVMError):
            plan.validate()

    def test_shrink_finds_minimal_subset(self):
        faults = [CrashFault(at=1.0, site=1),
                  LinkFault(start=0.5, end=0.9, drop=0.5),
                  PartitionFault(start=0.2, end=0.3, group=(2,))]
        plan = FaultPlan(nsites=4, faults=faults)

        def still_fails(candidate):
            # pretend the crash alone reproduces the bug
            return any(f.kind == "crash" for f in candidate.faults)

        shrunk = shrink_plan(plan, still_fails)
        assert shrunk.faults == [CrashFault(at=1.0, site=1)]

    def test_unknown_fault_field_is_rejected_by_name(self):
        """A typo'd field name used to be silently dropped — the plan
        loaded fine and the fault fired with default values."""
        blob = json.loads(random_plan(1).to_json())
        blob["faults"] = [{"kind": "crash", "at": 1.0, "sites": 1}]
        with pytest.raises(SDVMError, match="sites"):
            FaultPlan.from_json(json.dumps(blob))

    def test_window_fault_requires_start_before_end(self):
        blob = json.loads(random_plan(1).to_json())
        blob["faults"] = [{"kind": "link", "start": 0.9, "end": 0.5,
                           "drop": 0.5}]
        with pytest.raises(SDVMError, match="start"):
            FaultPlan.from_json(json.dumps(blob))

    def test_corrupt_fault_mode_is_validated(self):
        blob = json.loads(random_plan(1).to_json())
        blob["faults"] = [{"kind": "corrupt", "start": 0.1, "end": 0.5,
                           "mode": "bogus"}]
        with pytest.raises(SDVMError, match="mode"):
            FaultPlan.from_json(json.dumps(blob))

    def test_replicate_frac_range_is_validated(self):
        with pytest.raises(SDVMError):
            FaultPlan(nsites=2, replicate_frac=1.5).validate()

    def test_corrupt_end_extends_the_drain_horizon(self):
        """A late corruption window must not outlive the audit: the
        drain bound has to cover every fault kind's ``end``."""
        from repro.chaos.fuzz import _last_fault_time
        plan = FaultPlan(nsites=2, faults=[
            CrashFault(at=1.0, site=1),
            CorruptFault(start=2.0, end=5.0, site=0)])
        assert _last_fault_time(plan) == 5.0

    def test_shrinker_preserves_corrupt_fault(self):
        """Shrinking a corruption-induced failure must keep the
        corruption fault (dropping it makes the failure vanish)."""
        plan = FaultPlan(nsites=4, faults=[
            CrashFault(at=1.0, site=1),
            LinkFault(start=0.5, end=0.9, drop=0.5),
            CorruptFault(start=0.3, end=0.8, site=2)])

        def still_fails(candidate):
            return any(f.kind == "corrupt" for f in candidate.faults)

        shrunk = shrink_plan(plan, still_fails)
        assert shrunk.faults == [CorruptFault(start=0.3, end=0.8, site=2)]

    def test_corrupt_generator_extends_the_base_plan(self):
        """``corrupt=False`` plans stay bit-identical per seed; the
        corrupt variant appends one corruption window and arms full
        replication."""
        base = random_plan(5)
        assert base == random_plan(5, corrupt=False)
        corrupt = random_plan(5, corrupt=True)
        extras = [f for f in corrupt.faults if f.kind == "corrupt"]
        assert len(extras) == 1
        assert [f for f in corrupt.faults if f.kind != "corrupt"] \
            == base.faults
        assert 0 <= extras[0].site < corrupt.nsites
        assert corrupt.replicate_frac == 1.0


class TestCorpus:
    def test_corpus_is_committed(self):
        names = {os.path.basename(p) for p in CORPUS}
        assert {"crash_during_wave.json", "crash_during_recovery.json",
                "coordinator_crash.json", "partition_then_heal.json",
                "duplicate_delivery.json", "lossy_recovery.json",
                "steal_batch_reorder.json", "dir_shard_crash.json",
                "sdc_detected.json"} <= names
        # the undefended twin fails by design, so it lives in a
        # subdirectory the corpus glob (and ``chaos corpus``) skip
        assert os.path.exists(os.path.join(
            CORPUS_DIR, "expected_fail", "sdc_undefended.json"))

    @pytest.mark.parametrize(
        "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
    def test_corpus_plan_passes(self, path):
        result = corpus_result(path)
        assert result.ok, [str(v) for v in result.violations]

    @pytest.mark.parametrize(
        "path",
        [p for p in CORPUS
         if os.path.basename(p) in PINNED_FINGERPRINTS],
        ids=[os.path.basename(p) for p in CORPUS
             if os.path.basename(p) in PINNED_FINGERPRINTS])
    def test_replication_off_fingerprints_are_pinned(self, path):
        """The SDC defense must be bit-invisible when replication is off:
        every pre-replication corpus plan replays to the exact journal
        fingerprint it had before the feature landed."""
        plan = FaultPlan.load(path)
        assert plan.replicate_frac == 0.0
        result = corpus_result(path)
        assert result.fingerprint == PINNED_FINGERPRINTS[
            os.path.basename(path)]

    def test_replay_is_bit_deterministic(self):
        first, second = verify_determinism(corpus_plan("crash_during_wave"))
        assert first and first == second

    def test_lossy_recovery_exercises_retries(self):
        """S3 regression: a total drop window over RECOVER_STATE/DONE is
        survived only because recovery control is acked and re-sent."""
        result = run_plan(corpus_plan("lossy_recovery"))
        assert result.ok, [str(v) for v in result.violations]
        assert result.cluster.network_stats().get("chaos_dropped").count > 0
        assert result.cluster.total_stats().get("recover_retries").count > 0

    def test_crash_during_recovery_queues_second_crash(self):
        """S1 regression: the second crash lands while ``_recovering`` and
        must be queued, then recovered serially."""
        result = run_plan(corpus_plan("crash_during_recovery"))
        assert result.ok, [str(v) for v in result.violations]
        stats = result.cluster.total_stats()
        assert stats.get("crashes_queued").count >= 1
        assert stats.get("recoveries").count >= 2

    def test_coordinator_crash_recovers_from_replica(self):
        """S2 regression: the successor coordinator restores from its
        replicated snapshot instead of declaring the program lost."""
        result = run_plan(corpus_plan("coordinator_crash"))
        assert result.ok, [str(v) for v in result.violations]
        assert result.cluster.total_stats().get(
            "replicas_adopted").count >= 1

    def test_steal_batching_survives_reorder(self):
        """Batched HELP_REPLYs and proactive pushes under a long message
        reorder window: late replies must stay fenced (no backoff reset)
        and every batched frame must land exactly once."""
        result = run_plan(corpus_plan("steal_batch_reorder"))
        assert result.ok, [str(v) for v in result.violations]
        stats = result.cluster.total_stats()
        # reordering is modelled as an extra delivery delay on the picked
        # fraction of messages, so it surfaces in the delayed counter
        assert result.cluster.network_stats().get("chaos_delayed").count > 0
        assert stats.get("steals_in").count > 0
        first, second = verify_determinism(corpus_plan("steal_batch_reorder"))
        assert first and first == second

    def test_dir_shard_crash_rehomes_directory(self):
        """Sharded-directory regression: crash a site holding both memory
        objects and directory shard entries while the memstress workload
        is migrating objects between sites.  Recovery must rehome the
        shard space, keep ownership single, and replayed reads must see
        the rolled-back object values (the exact final sum checks it)."""
        result = run_plan(corpus_plan("dir_shard_crash"))
        assert result.ok, [str(v) for v in result.violations]
        stats = result.cluster.total_stats()
        assert stats.get("migrations_in").count > 0
        assert stats.get("dir_updates_applied").count > 0

    def test_duplicate_delivery_does_not_double_commit(self):
        result = run_plan(corpus_plan("duplicate_delivery"))
        assert result.ok, [str(v) for v in result.violations]
        assert result.cluster.network_stats().get(
            "chaos_duplicated").count > 0


class TestSilentDataCorruption:
    def test_detected_plan_has_exact_accounting(self):
        """Replication on + corruption: the run completes correctly and
        every injected corruption of a replicated thread produces exactly
        one mismatch detection and one tie-break resolution — and no
        tainted effect ever commits."""
        result = corpus_result(
            os.path.join(CORPUS_DIR, "sdc_detected.json"))
        assert result.ok, [str(v) for v in result.violations]
        kinds = result.cluster.tracer.kinds()
        corruptions = sum(
            1 for e in result.cluster.tracer.events
            if e.kind == "chaos_fault" and e.fields[0] == "corrupt_result")
        assert corruptions > 0
        assert kinds.get("sdc_mismatch") == corruptions
        assert kinds.get("sdc_resolved") == corruptions
        assert kinds.get("sdc_tainted_commit", 0) == 0

    def test_undefended_plan_is_flagged_by_the_invariant(self):
        """Replication off: the same corruption window silently commits
        flipped values, and the journal-driven invariant catches it."""
        path = os.path.join(CORPUS_DIR, "expected_fail",
                            "sdc_undefended.json")
        result = run_plan(FaultPlan.load(path))
        assert not result.ok
        assert "sdc_commit" in {v.invariant for v in result.violations}

    def test_param_corruption_fires_on_the_wire(self):
        """Wire-mode corruption: APPLY_RESULT payloads get flipped in
        flight (journal shows it) and the run is still deterministic."""
        plan = FaultPlan(seed=3, nsites=4, name="param", faults=[
            CorruptFault(start=0.3, end=0.5, site=1, mode="param",
                         prob=0.5)])
        result = run_plan(plan)
        kinds = [e.fields[0] for e in result.cluster.tracer.events
                 if e.kind == "chaos_fault"]
        assert "corrupt_param" in kinds
        assert run_plan(plan).fingerprint == result.fingerprint

    def test_replicate_chosen_is_deterministic_and_scales(self):
        from repro.sched.policies import replicate_chosen
        keys = list(range(10_000))
        chosen = [k for k in keys if replicate_chosen(k, 0.25)]
        assert chosen == [k for k in keys if replicate_chosen(k, 0.25)]
        # roughly frac of the keyspace, and monotone in frac
        assert 0.15 < len(chosen) / len(keys) < 0.35
        assert all(replicate_chosen(k, 1.0) for k in keys[:100])
        assert not any(replicate_chosen(k, 0.0) for k in keys[:100])
        half = {k for k in keys if replicate_chosen(k, 0.5)}
        assert set(chosen) <= half

    def test_record_replay_contexts_round_trip(self):
        """A shadow fed the primary's oplog + argument snapshot observes
        identical primitive-op results and argument values."""
        from repro.proc.sim_context import ReplaySimContext
        oplog = ["addr-1", 42, b"data"]

        class _Frame:
            def arguments(self):
                return [1, {"x": 2}]
        replay = ReplaySimContext.__new__(ReplaySimContext)
        replay._oplog = list(oplog)
        replay._cursor = 0
        assert replay._op_alloc_frame_address() == "addr-1"
        assert replay._op_read("anything") == 42
        assert replay._op_file_read("h", 10) == b"data"
        from repro.common.errors import ProgramError
        with pytest.raises(ProgramError):
            replay._replay()


class TestInjection:
    def test_partition_holds_traffic_until_heal(self):
        result = run_plan(corpus_plan("partition_then_heal"))
        assert result.ok, [str(v) for v in result.violations]
        assert result.cluster.network_stats().get("chaos_delayed").count > 0

    def test_slowdown_stretches_the_run(self):
        fast = run_plan(FaultPlan(seed=11, nsites=2))
        slow = run_plan(FaultPlan(seed=11, nsites=2, faults=[
            SlowFault(start=0.1, end=60.0, site=1, factor=8.0)]))
        assert fast.ok and slow.ok
        assert (slow.cluster.handles[0].duration
                > fast.cluster.handles[0].duration)

    def test_chaos_off_network_hook_stays_cold(self):
        """Plans without link faults must not touch the network hot path."""
        result = run_plan(FaultPlan(seed=12, nsites=2, faults=[
            CrashFault(at=0.4, site=1)]))
        assert result.ok
        assert result.cluster.network.chaos is None

    def test_faults_appear_in_the_journal(self):
        result = run_plan(corpus_plan("crash_during_wave"))
        kinds = [e.fields[0] for e in result.cluster.tracer.events
                 if e.kind == "chaos_fault"]
        assert "crash" in kinds

    def test_controller_rejects_site_count_mismatch(self):
        from repro.chaos import chaos_config
        from repro.site.simcluster import SimCluster
        plan = FaultPlan(nsites=4)
        cluster = SimCluster(nsites=2, config=chaos_config(plan))
        with pytest.raises(SDVMError):
            ChaosController(cluster, plan)

    def test_double_install_rejected(self):
        from repro.chaos import chaos_config
        from repro.site.simcluster import SimCluster
        plan = FaultPlan(seed=13, nsites=2)
        cluster = SimCluster(nsites=2, config=chaos_config(plan))
        controller = cluster.apply_chaos(plan)
        with pytest.raises(SDVMError):
            controller.install()


class TestInvariantChecker:
    def test_clean_run_has_no_violations(self):
        result = run_plan(FaultPlan(seed=14, nsites=2))
        checker = InvariantChecker(result.cluster,
                                   expect_complete=True)
        assert checker.check() == []

    def test_fingerprint_requires_tracer(self):
        assert journal_fingerprint(None) == ""


class TestChaosCli:
    def test_run_subcommand(self):
        out = io.StringIO()
        path = os.path.join(CORPUS_DIR, "crash_during_wave.json")
        assert main(["chaos", "run", path], out=out) == 0
        assert "PASS" in out.getvalue()

    def test_run_twice_reports_determinism(self):
        out = io.StringIO()
        path = os.path.join(CORPUS_DIR, "partition_then_heal.json")
        assert main(["chaos", "run", path, "--twice"], out=out) == 0
        assert "deterministic" in out.getvalue()

    def test_corpus_subcommand(self):
        out = io.StringIO()
        assert main(["chaos", "corpus", "--dir", CORPUS_DIR],
                    out=out) == 0
        text = out.getvalue()
        assert "lossy_recovery" in text and "FAIL" not in text

    def test_fuzz_subcommand_green_seed(self):
        out = io.StringIO()
        assert main(["chaos", "fuzz", "--seeds", "1", "1"], out=out) == 0
        assert "ok" in out.getvalue()

    def test_fuzz_saves_failing_plan(self, tmp_path):
        """An unsurvivable plan (every site crashes) must be reported,
        shrunk, and written out for triage."""
        doomed = FaultPlan(seed=1, nsites=2, faults=[
            CrashFault(at=0.4, site=0), CrashFault(at=0.45, site=1)])
        plan_path = str(tmp_path / "doomed.json")
        doomed.save(plan_path)
        out = io.StringIO()
        assert main(["chaos", "run", plan_path], out=out) == 1
        assert "FAIL" in out.getvalue()


class TestBigClusterChaos:
    def test_256_sites_survive_crash_with_invariants(self):
        """Scaling-era regression: a 256-site cluster — sixteen times the
        gossip sample window, directory sharded across every site — must
        finish the treesum workload and pass the full invariant audit
        after losing a site mid-run (single ownership, no lost frames,
        exact result).  Pins two scaling-era fixes: checkpoint waves
        deferring instead of superseding (no wave ever committed past
        ~100 sites, so any crash failed the program) and the heartbeat
        watch-set grace window (a ring shift after a death used to make
        watchers declare never-heard-from live peers dead, cascading
        false crashes around the ring)."""
        plan = FaultPlan(seed=31, nsites=256, workload="treesum",
                         horizon=120.0,
                         faults=[CrashFault(at=0.55, site=17)])
        result = run_plan(plan, progress_timeout=120.0)
        assert result.ok, [str(v) for v in result.violations]
        stats = result.cluster.total_stats()
        # exactly the injected crash recovered — no cascading false
        # suspicions inflating the count
        assert stats.get("recoveries").count == 1
        # waves commit at scale despite O(sites) collection time
        assert stats.get("checkpoints_committed").count >= 1
