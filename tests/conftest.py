"""Shared fixtures for the SDVM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.common.config import (
    CostModel,
    NetworkConfig,
    SchedulingConfig,
    SDVMConfig,
)


@pytest.fixture
def fast_config() -> SDVMConfig:
    """A cluster config with a cheap compile cost so integration tests fly.

    Everything else keeps production defaults, so manager behaviour under
    test matches what the benchmarks exercise.
    """
    return SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-4),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0),
    )


@pytest.fixture
def sim():
    from repro.sim.engine import Simulator
    return Simulator(seed=7)
