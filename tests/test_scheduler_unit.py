"""Unit tests for the scheduling manager and its queue policies."""

from __future__ import annotations

from collections import deque

import pytest

from repro.common.errors import SchedulingError
from repro.common.ids import GlobalAddress
from repro.core.frames import Microframe
from repro.sched.policies import (pop_frame, take_batch_for_help,
                                  take_for_help, take_push_batch)
from repro.site.simcluster import SimCluster


def frames(count, critical_indices=(), priorities=None):
    out = deque()
    for i in range(count):
        frame = Microframe(GlobalAddress(0, i + 1), thread_id=0,
                           program=1, nparams=0)
        frame.created_at = float(i)
        frame.critical = i in critical_indices
        if priorities:
            frame.priority = priorities[i]
        out.append(frame)
    return out


class TestPolicies:
    def test_fifo_pop(self):
        queue = frames(3)
        assert pop_frame(queue, "fifo", False).frame_id.local == 1
        assert pop_frame(queue, "fifo", False).frame_id.local == 2

    def test_lifo_pop(self):
        queue = frames(3)
        assert pop_frame(queue, "lifo", False).frame_id.local == 3

    def test_hints_pull_critical_first(self):
        queue = frames(4, critical_indices=(2,))
        assert pop_frame(queue, "fifo", True).frame_id.local == 3
        # remaining frames revert to fifo
        assert pop_frame(queue, "fifo", True).frame_id.local == 1

    def test_hints_disabled_ignores_critical(self):
        queue = frames(4, critical_indices=(2,))
        assert pop_frame(queue, "fifo", False).frame_id.local == 1

    def test_priority_policy(self):
        queue = frames(3, priorities=[1.0, 9.0, 5.0])
        assert pop_frame(queue, "priority", True).frame_id.local == 2
        assert pop_frame(queue, "priority", True).frame_id.local == 3

    def test_priority_tie_breaks_by_age(self):
        queue = frames(3, priorities=[5.0, 5.0, 5.0])
        assert pop_frame(queue, "priority", True).frame_id.local == 1

    def test_help_reply_lifo_takes_newest(self):
        queue = frames(3)
        assert take_for_help(queue, "lifo").frame_id.local == 3

    def test_help_reply_fifo_takes_oldest(self):
        queue = frames(3)
        assert take_for_help(queue, "fifo").frame_id.local == 1

    def test_empty_queue_rejected(self):
        with pytest.raises(SchedulingError):
            pop_frame(deque(), "fifo", False)
        with pytest.raises(SchedulingError):
            take_for_help(deque(), "lifo")

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError):
            pop_frame(frames(1), "quantum", False)
        with pytest.raises(SchedulingError):
            take_for_help(frames(1), "sjf")

    def test_batch_lifo_takes_newest_first(self):
        queue = frames(5)
        batch = take_batch_for_help(queue, "lifo", 3)
        assert [f.frame_id.local for f in batch] == [5, 4, 3]
        assert len(queue) == 2

    def test_batch_stops_at_queue_bottom(self):
        queue = frames(2)
        assert len(take_batch_for_help(queue, "fifo", 5)) == 2
        assert not queue

    def test_batch_count_validated(self):
        with pytest.raises(SchedulingError):
            take_batch_for_help(frames(3), "lifo", 0)
        with pytest.raises(SchedulingError):
            take_push_batch(frames(3), "lifo", 0)

    def test_push_batch_skips_critical_and_restores_order(self):
        queue = frames(5, critical_indices=(1, 3))
        batch = take_push_batch(queue, "fifo", 3)
        # the three non-critical frames go; the critical two stay, in order
        assert [f.frame_id.local for f in batch] == [1, 3, 5]
        assert [f.frame_id.local for f in queue] == [2, 4]

    def test_push_batch_lifo_restores_order(self):
        queue = frames(4, critical_indices=(3,))
        batch = take_push_batch(queue, "lifo", 2)
        assert [f.frame_id.local for f in batch] == [3, 2]
        assert [f.frame_id.local for f in queue] == [1, 4]


class TestStarvationFreedom:
    def test_fifo_local_no_starvation(self, fast_config):
        """Every frame of a long run is eventually executed (the paper's
        reason for FIFO locally): total executions == frames created."""
        from repro.apps import build_primes_program, first_n_primes
        cluster = SimCluster(nsites=2, config=fast_config)
        handle = cluster.submit(build_primes_program(),
                                args=(30, 5, 200.0, 2000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(30)


@pytest.fixture
def running_pair(fast_config):
    from repro.apps import build_primes_program
    cluster = SimCluster(nsites=2,
                         config=fast_config.with_(journal=True))
    handle = cluster.submit(build_primes_program(),
                            args=(25, 6, 400.0, 4000.0))
    cluster.sim.run(until=0.05)
    thief, victim = cluster.sites
    assert thief.program_manager.is_active(handle.pid)
    return cluster, thief, victim, handle


class TestLateHelpReply:
    """A HELP_REPLY that arrives after its request timed out still carries
    stolen frames, so it must adopt and account them — but the timed-out
    request already fed the backoff/cooldown failure path, so the late
    reply must NOT reset that congestion state (only a reply correlated
    to a live in-flight request may)."""

    def _late_reply(self, mtype, thief, victim, pid):
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage
        payload = {"load": 1.0}
        if mtype is MsgType.HELP_REPLY:
            frame = Microframe(GlobalAddress(victim.site_id, 7777),
                               thread_id=0, program=pid, nparams=0)
            payload["frames"] = [frame.to_wire()]
        return SDMessage(
            type=mtype,
            src_site=victim.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=thief.site_id, dst_manager=ManagerId.SCHEDULING,
            payload=payload)

    def test_late_reply_adopts_but_keeps_backoff(self, running_pair):
        from repro.messages import MsgType
        _cluster, thief, victim, handle = running_pair
        sm = thief.scheduling_manager
        sm._cooldown[victim.site_id] = until = sm.kernel.now + 100.0
        sm._help_backoff = 4.0
        steals = sm.stats.get("steals_in").count
        enqueued = sm.stats.get("frames_enqueued").count
        grants = sm.stats.get("steal_grants").count
        late = sm.stats.get("late_steal_grants").count

        sm.handle(self._late_reply(MsgType.HELP_REPLY, thief, victim,
                                   handle.pid))

        # the frame is adopted and fully accounted...
        assert sm.stats.get("steals_in").count == steals + 1
        assert sm.stats.get("frames_enqueued").count == enqueued + 1
        assert sm.stats.get("late_steal_grants").count == late + 1
        assert any(k == "steal_in" and d.get("victim") == victim.site_id
                   for _t, k, d in thief.journal)
        # ...but the fence holds: a reply to a dead request must not wipe
        # congestion state mid-congestion
        assert sm._help_backoff == 4.0
        assert sm._cooldown[victim.site_id] == until
        # and it is not a correlated grant (success-rate numerator)
        assert sm.stats.get("steal_grants").count == grants

    def test_live_reply_resets_backoff_and_cooldown(self, running_pair):
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage
        from repro.sched.manager import _HelpRequest
        _cluster, thief, victim, handle = running_pair
        sm = thief.scheduling_manager
        sm._help_backoff = 4.0
        sm._cooldown[victim.site_id] = sm.kernel.now + 100.0
        sm._cooldown[999] = sm.kernel.now + 100.0
        sm._inflight_helps[4242] = _HelpRequest(
            victim.site_id, prefetch=False, sent_at=sm.kernel.now)
        frame = Microframe(GlobalAddress(victim.site_id, 7778),
                           thread_id=0, program=handle.pid, nparams=0)
        steals = sm.stats.get("steals_in").count
        grants = sm.stats.get("steal_grants").count

        sm._on_help_reply(SDMessage(
            type=MsgType.HELP_REPLY,
            src_site=victim.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=thief.site_id, dst_manager=ManagerId.SCHEDULING,
            reply_to=4242,
            payload={"load": 1.0, "queue": 0.0,
                     "frames": [frame.to_wire()]}))

        assert sm.stats.get("steals_in").count == steals + 1
        assert sm.stats.get("steal_grants").count == grants + 1
        # the victim just proved it can help: off cooldown, backoff reset
        assert sm._help_backoff == 1.0
        assert victim.site_id not in sm._cooldown
        assert 4242 not in sm._inflight_helps
        # unrelated cooldown state is untouched
        assert 999 in sm._cooldown

    def test_late_cant_help_is_ignored(self, running_pair):
        from repro.messages import MsgType
        _cluster, thief, victim, handle = running_pair
        sm = thief.scheduling_manager
        sm._cooldown[victim.site_id] = until = sm.kernel.now + 100.0
        steals = sm.stats.get("steals_in").count
        sm.handle(self._late_reply(MsgType.CANT_HELP, thief, victim,
                                   handle.pid))
        assert sm.stats.get("steals_in").count == steals
        assert sm._cooldown[victim.site_id] == until


class TestBackoffAndCooldown:
    def test_backoff_grows_and_caps(self, running_pair):
        _cluster, thief, _victim, _handle = running_pair
        sm = thief.scheduling_manager
        sm._help_backoff = 1.0
        for expected in (1.5, 2.25, 3.375):
            sm._schedule_retry()
            assert sm._help_backoff == expected
            sm.kernel.cancel(sm._help_timer)
            sm._help_timer = None
        sm._help_backoff = 15.0
        sm._schedule_retry()
        assert sm._help_backoff == 20.0  # capped, not 22.5
        sm.kernel.cancel(sm._help_timer)
        sm._help_timer = None

    def test_kick_resets_backoff(self, running_pair):
        _cluster, thief, _victim, _handle = running_pair
        sm = thief.scheduling_manager
        sm._help_backoff = 8.0
        sm.kick()
        assert sm._help_backoff == 1.0

    def test_victim_cooldown_blocks_then_expires(self, running_pair):
        _cluster, thief, victim, _handle = running_pair
        sm = thief.scheduling_manager
        # only peer is unknown-freshness: eligible unless on cooldown
        thief.cluster_manager.sites[victim.site_id].load_at = -1.0
        sent = sm.stats.get("help_sent").count
        sm._cooldown[victim.site_id] = sm.kernel.now + 100.0
        sm._send_help()
        assert sm.stats.get("help_sent").count == sent  # victim skipped
        sm._cooldown[victim.site_id] = sm.kernel.now - 1.0  # expired
        sm._send_help()
        assert sm.stats.get("help_sent").count == sent + 1
        assert victim.site_id in {req.target
                                  for req in sm._inflight_helps.values()}

    def test_timed_out_request_counts_as_attempt(self, running_pair):
        """Satellite of the success-rate fix: a request that times out
        with no reply at all must land in the attempt denominator."""
        from repro.trace.aggregate import aggregate_sites
        _cluster, thief, victim, _handle = running_pair
        sm = thief.scheduling_manager
        thief.cluster_manager.sites[victim.site_id].load_at = -1.0
        sm._cooldown.clear()
        sent = sm.stats.get("help_sent").count
        sm._send_help()
        assert sm.stats.get("help_sent").count == sent + 1
        seq = next(iter(sm._inflight_helps))
        timeouts = sm.stats.get("help_timeouts").count
        sm._help_timed_out(seq)
        assert sm.stats.get("help_timeouts").count == timeouts + 1
        assert not sm._inflight_helps
        grants = sm.stats.get("steal_grants").count
        attempts = sm.stats.get("help_sent").count
        report = aggregate_sites([thief])
        # the timed-out request is in the denominator, not a non-event
        assert report.derived["steal_success_rate"] == pytest.approx(
            grants / attempts)
        assert report.derived["steal_success_rate"] < 1.0


class TestDepartureCleanup:
    """Per-peer scheduler state (cooldown, in-flight fence, parked
    thieves) must be dropped when the peer crashes or signs off — dead
    sites used to accumulate in these maps forever."""

    def test_departure_clears_cooldown_and_inflight(self, running_pair):
        from repro.sched.manager import _HelpRequest
        _cluster, thief, victim, _handle = running_pair
        sm = thief.scheduling_manager
        sm._cooldown[victim.site_id] = sm.kernel.now + 100.0
        sm._inflight_helps[555] = _HelpRequest(victim.site_id, False,
                                               sm.kernel.now)
        thief.cluster_manager._note_departed(victim.site_id)
        assert victim.site_id not in sm._cooldown
        assert not sm._inflight_helps
        assert sm.stats.get("help_targets_departed").count == 1

    def test_departure_drops_parked_helps_of_dead_thief(self, running_pair):
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage
        _cluster, victim_site, thief_site, _handle = running_pair
        sm = victim_site.scheduling_manager
        msg = SDMessage(
            type=MsgType.HELP_REQUEST,
            src_site=thief_site.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=victim_site.site_id, dst_manager=ManagerId.SCHEDULING,
            payload={"thief": thief_site.site_id, "rseq": 42})
        timer = sm.kernel.call_later(100.0, lambda: None)
        sm._parked_helps[42] = (msg, timer)
        cant_help = sm.stats.get("cant_help_sent").count
        victim_site.cluster_manager._note_departed(thief_site.site_id)
        assert not sm._parked_helps
        assert sm.stats.get("help_parks_dropped_dead").count == 1
        # no CANT_HELP into the void: the thief is gone
        assert sm.stats.get("cant_help_sent").count == cant_help


class TestVictimSelection:
    @pytest.fixture
    def cm(self, fast_config):
        cluster = SimCluster(nsites=4, config=fast_config)
        cluster.sim.run(until=0.05)
        manager = cluster.sites[0].cluster_manager
        now = manager.kernel.now
        for record in manager.alive_peers():
            record.load_at = now
            record.load = 0.0
            record.queue = 0.0
        return manager

    def test_all_fresh_and_empty_yields_none(self, cm):
        assert cm.pick_help_target(()) is None

    def test_deepest_fresh_queue_wins(self, cm):
        cm.sites[1].queue = 2.0
        cm.sites[2].queue = 5.0
        assert cm.pick_help_target(()) == 2
        assert cm.pick_help_target({2}) == 1

    def test_stale_peers_get_probed(self, cm):
        for record in cm.alive_peers():
            record.load_at = -1.0
        assert cm.pick_help_target(()) in {1, 2, 3}

    def test_fresh_busy_peer_beats_nothing(self, cm):
        # queues empty everywhere, but one peer's load says work may
        # surface: probe it rather than backing off
        cm.sites[3].load = 4.0
        assert cm.pick_help_target(()) == 3

    def test_push_target_needs_fresh_idle_peer(self, cm):
        for record in cm.alive_peers():
            record.load_at = -1.0
        assert cm.pick_push_target() is None
        cm.sites[1].load_at = cm.kernel.now
        assert cm.pick_push_target() == 1
        # pushing marks the peer non-idle so the next push spreads
        cm.note_pushed(1, 2)
        assert cm.pick_push_target() is None


class TestStealBatching:
    def _park_frames(self, sm, pid, count, start=9000):
        for i in range(count):
            sm.executable.append(Microframe(
                GlobalAddress(0, start + i), thread_id=0,
                program=pid, nparams=0))

    def test_steal_half_bounded_by_want(self, running_pair):
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage
        _cluster, victim, thief, handle = running_pair
        sm = victim.scheduling_manager
        sm.executable.clear()
        sm.ready.clear()
        self._park_frames(sm, handle.pid, 12)
        outs = sm.stats.get("steals_out").count
        sm._on_help_request(SDMessage(
            type=MsgType.HELP_REQUEST, seq=777,
            src_site=thief.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=victim.site_id, dst_manager=ManagerId.SCHEDULING,
            payload={"load": 0.0, "want": 3}))
        # min(want=3, steal_batch_max=4, half of 12) = 3 frames granted
        assert sm.stats.get("steals_out").count == outs + 3
        assert len(sm.executable) == 9
        # batch sizes are tracked as a histogram, not a counter
        assert any(name == "steal_batch"
                   for name, _hist in sm.stats.hist_items())

    def test_steal_half_never_takes_more_than_half(self, running_pair):
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage
        _cluster, victim, thief, handle = running_pair
        sm = victim.scheduling_manager
        sm.executable.clear()
        sm.ready.clear()
        self._park_frames(sm, handle.pid, 3)
        outs = sm.stats.get("steals_out").count
        sm._on_help_request(SDMessage(
            type=MsgType.HELP_REQUEST, seq=778,
            src_site=thief.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=victim.site_id, dst_manager=ManagerId.SCHEDULING,
            payload={"load": 0.0, "want": 4}))
        # min(want=4, batch_max=4, (3+1)//2=2) = 2: over half stays home
        assert sm.stats.get("steals_out").count == outs + 2
        assert len(sm.executable) == 1

    def test_batched_reply_lands_every_frame(self, running_pair):
        cluster, victim, thief, handle = running_pair
        sm = victim.scheduling_manager
        sm.executable.clear()
        sm.ready.clear()
        self._park_frames(sm, handle.pid, 12)
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage
        replies = []
        thief.message_manager.request(SDMessage(
            type=MsgType.HELP_REQUEST,
            src_site=thief.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=victim.site_id, dst_manager=ManagerId.SCHEDULING,
            payload={"load": 0.0, "want": 3},
        ), replies.append)
        cluster.sim.run(until=0.2)
        assert len(replies) == 1
        assert replies[0].type is MsgType.HELP_REPLY
        assert len(replies[0].payload["frames"]) == 3
        # program info rides along so the thief can adopt immediately
        pids = [w["pid"] for w in replies[0].payload["program_infos"]]
        assert handle.pid in pids


class TestProactivePush:
    def test_push_sheds_surplus_to_known_idle_peer(self, running_pair):
        cluster, pusher, peer, handle = running_pair
        sm = pusher.scheduling_manager
        cm = pusher.cluster_manager
        sm.executable.clear()
        sm.ready.clear()
        sm._pm_hungry = 0
        for i in range(5):
            sm.executable.append(Microframe(
                GlobalAddress(0, 9100 + i), thread_id=0,
                program=handle.pid, nparams=0))
        cm.note_load(peer.site_id, 0.0, queue=0.0)  # fresh & idle
        sm._maybe_push()
        # spare=5, floor=max(keep_local_min=0, push_min_queue=1)=1:
        # count = min(batch_max=4, (5+1)//2=3, 5-1=4) = 3
        assert sm.stats.get("frames_pushed").count == 3
        assert len(sm.executable) == 2
        assert any(k == "push_out" and d.get("target") == peer.site_id
                   for _t, k, d in pusher.journal)
        # the peer adopts the batch once the transfer is delivered
        cluster.sim.run(until=0.2)
        adopted = peer.attraction_memory.stats.get("frames_adopted").count
        assert adopted >= 3

    def test_no_push_without_fresh_idle_view(self, running_pair):
        _cluster, pusher, peer, handle = running_pair
        sm = pusher.scheduling_manager
        sm.executable.clear()
        sm.ready.clear()
        sm._pm_hungry = 0
        for i in range(5):
            sm.executable.append(Microframe(
                GlobalAddress(0, 9200 + i), thread_id=0,
                program=handle.pid, nparams=0))
        pusher.cluster_manager.sites[peer.site_id].load_at = -1.0
        sm._maybe_push()
        assert sm.stats.get("frames_pushed").count == 0
        assert len(sm.executable) == 5

    def test_critical_frames_stay_home(self, running_pair):
        _cluster, pusher, peer, handle = running_pair
        sm = pusher.scheduling_manager
        sm.executable.clear()
        sm.ready.clear()
        sm._pm_hungry = 0
        for i in range(5):
            frame = Microframe(GlobalAddress(0, 9300 + i), thread_id=0,
                               program=handle.pid, nparams=0)
            frame.critical = True
            sm.executable.append(frame)
        pusher.cluster_manager.note_load(peer.site_id, 0.0, queue=0.0)
        sm._maybe_push()
        assert sm.stats.get("frames_pushed").count == 0
        assert len(sm.executable) == 5


class TestPrefetchEscalation:
    """A prefetched steal in flight must not suppress a genuine idle-time
    help request: an idle site whose only outstanding requests are
    prefetches escalates with a real one."""

    def _drain(self, sm):
        sm.executable.clear()
        sm.ready.clear()
        sm._pending_code.clear()
        sm._cooldown.clear()

    def test_idle_site_escalates_past_prefetch(self, running_pair):
        from repro.sched.manager import _HelpRequest
        _cluster, thief, victim, _handle = running_pair
        sm = thief.scheduling_manager
        self._drain(sm)
        thief.cluster_manager.sites[victim.site_id].load_at = -1.0
        sm._pm_hungry = 1  # genuinely idle
        sm._inflight_helps = {99: _HelpRequest(999, prefetch=True,
                                               sent_at=sm.kernel.now)}
        sent = sm.stats.get("help_sent").count
        sm._maybe_help()
        assert sm.stats.get("help_sent").count == sent + 1

    def test_real_request_in_flight_suppresses(self, running_pair):
        from repro.sched.manager import _HelpRequest
        _cluster, thief, victim, _handle = running_pair
        sm = thief.scheduling_manager
        self._drain(sm)
        thief.cluster_manager.sites[victim.site_id].load_at = -1.0
        sm._pm_hungry = 1
        sm._inflight_helps = {99: _HelpRequest(999, prefetch=False,
                                               sent_at=sm.kernel.now)}
        sent = sm.stats.get("help_sent").count
        sm._maybe_help()
        assert sm.stats.get("help_sent").count == sent


class TestCodeRetryCleanup:
    """Regression: ``_code_retries`` entries used to outlive their frames
    through program teardown and sign-off relocation."""

    @pytest.fixture
    def manager(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.sim.run(until=0.05)
        return cluster.sites[0].scheduling_manager

    @staticmethod
    def _frame(local, program):
        return Microframe(GlobalAddress(0, local), thread_id=0,
                          program=program, nparams=0)

    def test_drop_program_prunes_stale_budgets(self, manager):
        kept = self._frame(1, program=7)
        manager.executable.append(kept)
        manager._code_retries = {kept.frame_id: 1,
                                 GlobalAddress(0, 2): 2}
        manager.drop_program(8)
        # the orphaned budget (frame no longer queued anywhere) is gone;
        # the live frame's budget survives
        assert manager._code_retries == {kept.frame_id: 1}
        manager.drop_program(7)
        assert manager._code_retries == {}

    def test_export_frames_clears_budgets(self, manager):
        frame = self._frame(3, program=7)
        manager.executable.append(frame)
        manager._code_retries = {frame.frame_id: 2}
        exported = manager.export_frames()
        assert frame in exported
        assert manager._code_retries == {}

    def test_terminated_program_budget_dropped_on_code_arrival(self,
                                                               manager):
        frame = self._frame(4, program=424242)  # never registered
        manager._pending_code[frame.frame_id] = frame
        manager._code_retries[frame.frame_id] = 3
        manager._code_arrived(frame, None)
        assert frame.frame_id not in manager._code_retries


class TestHelpProtocol:
    def test_cant_help_when_queue_low(self, fast_config):
        from dataclasses import replace
        config = fast_config.with_(scheduling=replace(
            fast_config.scheduling, keep_local_min=5))
        cluster = SimCluster(nsites=2, config=config)
        cluster.sim.run(until=0.2)
        a, b = cluster.sites
        # b asks a (empty queue, high keep_local_min): must refuse
        from repro.messages import MsgType, SDMessage
        from repro.common.ids import ManagerId
        replies = []
        b.message_manager.request(SDMessage(
            type=MsgType.HELP_REQUEST,
            src_site=b.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=a.site_id, dst_manager=ManagerId.SCHEDULING,
            payload={"load": 0.0},
        ), replies.append)
        cluster.sim.run(until=0.5)
        assert len(replies) == 1
        assert replies[0].type is MsgType.CANT_HELP

    def test_paused_site_refuses_help(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.sim.run(until=0.2)
        a, b = cluster.sites
        a.paused = True
        from repro.messages import MsgType, SDMessage
        from repro.common.ids import ManagerId
        replies = []
        b.message_manager.request(SDMessage(
            type=MsgType.HELP_REQUEST,
            src_site=b.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=a.site_id, dst_manager=ManagerId.SCHEDULING,
            payload={"load": 0.0},
        ), replies.append)
        cluster.sim.run(until=0.5)
        assert replies[0].type is MsgType.CANT_HELP

    def test_steal_counts_balance(self, fast_config):
        """steals_out across the cluster equals steals_in plus late-reply
        recoveries — no frame duplication."""
        from repro.apps import build_primes_program, first_n_primes
        cluster = SimCluster(nsites=4, config=fast_config)
        handle = cluster.submit(build_primes_program(),
                                args=(40, 8, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        stats = cluster.total_stats()
        out = stats.get("steals_out").count
        received = stats.get("steals_in").count
        assert out >= received
        # conservation, outflow form: every enqueued frame ends in exactly
        # one bucket — executed, dropped at program termination, dropped as
        # stale, handed to a thief (steals_out; the thief's re-enqueue is
        # its own enqueue event), pushed to an idle peer (frames_pushed;
        # likewise re-enqueued there), still queued, or in a PM slot.
        # Frames are never duplicated or lost.
        accounted = (stats.get("executions").count
                     + stats.get("frames_dropped_terminated").count
                     + stats.get("stale_work_dropped").count
                     + out
                     + stats.get("frames_pushed").count
                     + sum(s.scheduling_manager.queue_depth()
                           for s in cluster.sites)
                     + sum(s.processing_manager.in_flight
                           for s in cluster.sites))
        assert stats.get("frames_enqueued").count == accounted


class TestHotPeerRumors:
    """The hot-peer cache and epidemic load rumors — the machinery that
    keeps work discovery O(1) once the cluster outgrows the 16-peer
    sample window."""

    @pytest.fixture
    def big_cm(self, fast_config):
        # 20 sites: 19 peers, three more than the sample window holds
        cluster = SimCluster(nsites=20, config=fast_config)
        cluster.sim.run(until=0.05)
        cm = cluster.sites[0].cluster_manager
        now = cm.kernel.now
        for record in cm.alive_peers():
            record.load_at = now
            record.load = 0.0
            record.queue = 0.0
        cm._hot_peers.clear()
        return cm

    def test_rumor_applies_when_fresher(self, big_cm):
        cm = big_cm
        record = cm.sites[5]
        record.load_at = cm.kernel.now - 1.0
        seen = record.last_seen
        cm.note_load_rumor(5, 3.0, 4.0, age=0.0)
        assert record.load == 3.0 and record.queue == 4.0
        # liveness evidence stays first-hand: a relayed rumor must never
        # mask a missing heartbeat
        assert record.last_seen == seen
        assert 5 in {r.logical for r in cm.hot_peers()}

    def test_rumor_older_than_known_is_ignored(self, big_cm):
        cm = big_cm
        cm.note_load(5, 1.0, queue=1.0)
        cm.note_load_rumor(5, 9.0, 9.0, age=1.0)
        record = cm.sites[5]
        assert record.load == 1.0 and record.queue == 1.0

    def test_rumor_about_dead_site_is_ignored(self, big_cm):
        cm = big_cm
        cm.sites[5].alive = False
        cm.note_load_rumor(5, 9.0, 9.0, age=0.0)
        assert cm.sites[5].queue == 0.0
        assert 5 not in {r.logical for r in cm.hot_peers()}

    def test_hot_cache_drops_drained_peer(self, big_cm):
        cm = big_cm
        cm.note_load(7, 5.0, queue=5.0)
        assert 7 in {r.logical for r in cm.hot_peers()}
        cm.note_load(7, 0.0, queue=0.0)
        assert 7 not in {r.logical for r in cm.hot_peers()}

    def test_hot_rumors_deepest_first_and_capped(self, big_cm):
        cm = big_cm
        for logical, queue in ((3, 2.0), (4, 6.0), (5, 4.0), (6, 3.0)):
            cm.note_load(logical, queue, queue=queue)
        rows = cm.hot_rumors()
        assert len(rows) == cm.RUMOR_FANOUT
        assert [row[0] for row in rows] == [4, 5, 6]
        assert all(row[3] >= 0.0 for row in rows)  # ages, not timestamps

    def test_pick_help_target_sees_past_sample_window(self, big_cm):
        cm = big_cm
        cm._pick_cursor = 0  # next window: logicals 1..16
        cm.note_load(19, 6.0, queue=6.0)
        assert cm.pick_help_target(()) == 19

    def test_no_rumor_payload_below_sample_window(self, running_pair):
        # small clusters must gossip byte-identical payloads to the
        # pre-rumor wire format (the bit-reproducibility invariant)
        from dataclasses import replace
        _cluster, thief, victim, _handle = running_pair
        sm = victim.scheduling_manager
        victim.config = victim.config.with_(
            scheduling=replace(victim.config.scheduling,
                               gossip_interval=1e-3))
        victim.cluster_manager.note_load(thief.site_id, 5.0, queue=5.0)
        sent = []
        victim.message_manager.send = sent.append
        sm._gossip_tick()
        assert sent, "gossip tick should emit load reports"
        assert all("hot" not in msg.payload for msg in sent)
