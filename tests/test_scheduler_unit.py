"""Unit tests for the scheduling manager and its queue policies."""

from __future__ import annotations

from collections import deque

import pytest

from repro.common.errors import SchedulingError
from repro.common.ids import GlobalAddress
from repro.core.frames import Microframe
from repro.sched.policies import pop_frame, take_for_help
from repro.site.simcluster import SimCluster


def frames(count, critical_indices=(), priorities=None):
    out = deque()
    for i in range(count):
        frame = Microframe(GlobalAddress(0, i + 1), thread_id=0,
                           program=1, nparams=0)
        frame.created_at = float(i)
        frame.critical = i in critical_indices
        if priorities:
            frame.priority = priorities[i]
        out.append(frame)
    return out


class TestPolicies:
    def test_fifo_pop(self):
        queue = frames(3)
        assert pop_frame(queue, "fifo", False).frame_id.local == 1
        assert pop_frame(queue, "fifo", False).frame_id.local == 2

    def test_lifo_pop(self):
        queue = frames(3)
        assert pop_frame(queue, "lifo", False).frame_id.local == 3

    def test_hints_pull_critical_first(self):
        queue = frames(4, critical_indices=(2,))
        assert pop_frame(queue, "fifo", True).frame_id.local == 3
        # remaining frames revert to fifo
        assert pop_frame(queue, "fifo", True).frame_id.local == 1

    def test_hints_disabled_ignores_critical(self):
        queue = frames(4, critical_indices=(2,))
        assert pop_frame(queue, "fifo", False).frame_id.local == 1

    def test_priority_policy(self):
        queue = frames(3, priorities=[1.0, 9.0, 5.0])
        assert pop_frame(queue, "priority", True).frame_id.local == 2
        assert pop_frame(queue, "priority", True).frame_id.local == 3

    def test_priority_tie_breaks_by_age(self):
        queue = frames(3, priorities=[5.0, 5.0, 5.0])
        assert pop_frame(queue, "priority", True).frame_id.local == 1

    def test_help_reply_lifo_takes_newest(self):
        queue = frames(3)
        assert take_for_help(queue, "lifo").frame_id.local == 3

    def test_help_reply_fifo_takes_oldest(self):
        queue = frames(3)
        assert take_for_help(queue, "fifo").frame_id.local == 1

    def test_empty_queue_rejected(self):
        with pytest.raises(SchedulingError):
            pop_frame(deque(), "fifo", False)
        with pytest.raises(SchedulingError):
            take_for_help(deque(), "lifo")

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError):
            pop_frame(frames(1), "quantum", False)
        with pytest.raises(SchedulingError):
            take_for_help(frames(1), "sjf")


class TestStarvationFreedom:
    def test_fifo_local_no_starvation(self, fast_config):
        """Every frame of a long run is eventually executed (the paper's
        reason for FIFO locally): total executions == frames created."""
        from repro.apps import build_primes_program, first_n_primes
        cluster = SimCluster(nsites=2, config=fast_config)
        handle = cluster.submit(build_primes_program(),
                                args=(30, 5, 200.0, 2000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(30)


class TestLateHelpReply:
    """A HELP_REPLY that arrives after its request timed out still carries
    a stolen frame; it must run through the same accounting as the
    correlated reply path (regression: the late path used to re-enqueue
    the frame but skip ``steals_in``, the journal event, the backoff
    reset, and the victim's cooldown removal)."""

    @pytest.fixture
    def running_pair(self, fast_config):
        from repro.apps import build_primes_program
        cluster = SimCluster(nsites=2,
                             config=fast_config.with_(journal=True))
        handle = cluster.submit(build_primes_program(),
                                args=(25, 6, 400.0, 4000.0))
        cluster.sim.run(until=0.05)
        thief, victim = cluster.sites
        assert thief.program_manager.is_active(handle.pid)
        return cluster, thief, victim, handle

    def _late_reply(self, mtype, thief, victim, pid):
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage
        payload = {"load": 1.0}
        if mtype is MsgType.HELP_REPLY:
            frame = Microframe(GlobalAddress(victim.site_id, 7777),
                               thread_id=0, program=pid, nparams=0)
            payload["frame"] = frame.to_wire()
        return SDMessage(
            type=mtype,
            src_site=victim.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=thief.site_id, dst_manager=ManagerId.SCHEDULING,
            payload=payload)

    def test_late_reply_counts_as_steal(self, running_pair):
        from repro.messages import MsgType
        _cluster, thief, victim, handle = running_pair
        sm = thief.scheduling_manager
        sm._cooldown[victim.site_id] = sm.kernel.now + 100.0
        sm._cooldown[999] = sm.kernel.now + 100.0
        sm._help_backoff = 4.0
        sm._help_outstanding = True
        steals = sm.stats.get("steals_in").count
        enqueued = sm.stats.get("frames_enqueued").count

        sm.handle(self._late_reply(MsgType.HELP_REPLY, thief, victim,
                                   handle.pid))

        assert sm.stats.get("steals_in").count == steals + 1
        assert sm.stats.get("frames_enqueued").count == enqueued + 1
        assert any(k == "steal_in" and d.get("victim") == victim.site_id
                   for _t, k, d in thief.journal)
        # the victim just proved it can help: off cooldown, backoff reset
        assert victim.site_id not in sm._cooldown
        assert sm._help_backoff == 1.0
        # ...but state belonging to the *newer* request is untouched
        assert sm._help_outstanding is True
        assert 999 in sm._cooldown

    def test_late_cant_help_is_ignored(self, running_pair):
        from repro.messages import MsgType
        _cluster, thief, victim, handle = running_pair
        sm = thief.scheduling_manager
        sm._cooldown[victim.site_id] = until = sm.kernel.now + 100.0
        steals = sm.stats.get("steals_in").count
        sm.handle(self._late_reply(MsgType.CANT_HELP, thief, victim,
                                   handle.pid))
        assert sm.stats.get("steals_in").count == steals
        assert sm._cooldown[victim.site_id] == until


class TestCodeRetryCleanup:
    """Regression: ``_code_retries`` entries used to outlive their frames
    through program teardown and sign-off relocation."""

    @pytest.fixture
    def manager(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.sim.run(until=0.05)
        return cluster.sites[0].scheduling_manager

    @staticmethod
    def _frame(local, program):
        return Microframe(GlobalAddress(0, local), thread_id=0,
                          program=program, nparams=0)

    def test_drop_program_prunes_stale_budgets(self, manager):
        kept = self._frame(1, program=7)
        manager.executable.append(kept)
        manager._code_retries = {kept.frame_id: 1,
                                 GlobalAddress(0, 2): 2}
        manager.drop_program(8)
        # the orphaned budget (frame no longer queued anywhere) is gone;
        # the live frame's budget survives
        assert manager._code_retries == {kept.frame_id: 1}
        manager.drop_program(7)
        assert manager._code_retries == {}

    def test_export_frames_clears_budgets(self, manager):
        frame = self._frame(3, program=7)
        manager.executable.append(frame)
        manager._code_retries = {frame.frame_id: 2}
        exported = manager.export_frames()
        assert frame in exported
        assert manager._code_retries == {}

    def test_terminated_program_budget_dropped_on_code_arrival(self,
                                                               manager):
        frame = self._frame(4, program=424242)  # never registered
        manager._pending_code[frame.frame_id] = frame
        manager._code_retries[frame.frame_id] = 3
        manager._code_arrived(frame, None)
        assert frame.frame_id not in manager._code_retries


class TestHelpProtocol:
    def test_cant_help_when_queue_low(self, fast_config):
        from dataclasses import replace
        config = fast_config.with_(scheduling=replace(
            fast_config.scheduling, keep_local_min=5))
        cluster = SimCluster(nsites=2, config=config)
        cluster.sim.run(until=0.2)
        a, b = cluster.sites
        # b asks a (empty queue, high keep_local_min): must refuse
        from repro.messages import MsgType, SDMessage
        from repro.common.ids import ManagerId
        replies = []
        b.message_manager.request(SDMessage(
            type=MsgType.HELP_REQUEST,
            src_site=b.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=a.site_id, dst_manager=ManagerId.SCHEDULING,
            payload={"load": 0.0},
        ), replies.append)
        cluster.sim.run(until=0.5)
        assert len(replies) == 1
        assert replies[0].type is MsgType.CANT_HELP

    def test_paused_site_refuses_help(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.sim.run(until=0.2)
        a, b = cluster.sites
        a.paused = True
        from repro.messages import MsgType, SDMessage
        from repro.common.ids import ManagerId
        replies = []
        b.message_manager.request(SDMessage(
            type=MsgType.HELP_REQUEST,
            src_site=b.site_id, src_manager=ManagerId.SCHEDULING,
            dst_site=a.site_id, dst_manager=ManagerId.SCHEDULING,
            payload={"load": 0.0},
        ), replies.append)
        cluster.sim.run(until=0.5)
        assert replies[0].type is MsgType.CANT_HELP

    def test_steal_counts_balance(self, fast_config):
        """steals_out across the cluster equals steals_in plus late-reply
        recoveries — no frame duplication."""
        from repro.apps import build_primes_program, first_n_primes
        cluster = SimCluster(nsites=4, config=fast_config)
        handle = cluster.submit(build_primes_program(),
                                args=(40, 8, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        stats = cluster.total_stats()
        out = stats.get("steals_out").count
        received = stats.get("steals_in").count
        assert out >= received
        # conservation: every enqueue is an execution, a re-enqueue at the
        # thief after a steal, a drop at program termination, still queued
        # at shutdown, or riding a HELP_REPLY still in flight when the sim
        # stopped (out - received) — frames are never duplicated or lost
        accounted = (stats.get("executions").count
                     + received
                     + stats.get("frames_dropped_terminated").count
                     + stats.get("stale_work_dropped").count
                     + (out - received)
                     + sum(s.scheduling_manager.queue_depth()
                           for s in cluster.sites)
                     + sum(s.processing_manager.in_flight
                           for s in cluster.sites))
        assert stats.get("frames_enqueued").count == accounted
