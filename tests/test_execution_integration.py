"""Integration tests for program execution on simulated clusters:
dataflow correctness, work stealing, I/O routing, memory, multi-program.
"""

from __future__ import annotations

import pytest

from repro.common.config import SDVMConfig, SecurityConfig, SiteConfig
from repro.common.errors import SDVMError
from repro.core.program import ProgramBuilder
from repro.site.simcluster import SimCluster


def run_program(prog, args=(), nsites=1, config=None, **cluster_kwargs):
    cluster = SimCluster(nsites=nsites, config=config, **cluster_kwargs)
    handle = cluster.submit(prog.build() if isinstance(prog, ProgramBuilder)
                            else prog, args=args)
    cluster.run()
    return cluster, handle


def fan_out_program():
    """main spawns N workers; a variadic collector sums their results."""
    prog = ProgramBuilder("fanout")

    @prog.microthread(creates=("worker", "collect"))
    def main(ctx, n):
        ctx.charge(5)
        collector = ctx.create_frame("collect", nparams=n)
        for i in range(n):
            worker = ctx.create_frame("worker",
                                      targets=[(collector, i)])
            ctx.send_result(worker, 0, i)

    @prog.microthread
    def worker(ctx, i):
        ctx.charge(100)
        ctx.send_to_targets(i * i)

    @prog.microthread
    def collect(ctx, *values):
        ctx.charge(5)
        ctx.output("sum computed")
        ctx.exit_program(sum(values))

    return prog


class TestDataflow:
    def test_single_frame_program(self, fast_config):
        prog = ProgramBuilder("one")

        @prog.microthread
        def main(ctx, x):
            ctx.charge(1)
            ctx.exit_program(x + 1)

        _cluster, handle = run_program(prog, args=(41,),
                                       config=fast_config)
        assert handle.result == 42
        assert handle.done and not handle.failed

    def test_fan_out_fan_in(self, fast_config):
        _cluster, handle = run_program(fan_out_program(), args=(10,),
                                       config=fast_config)
        assert handle.result == sum(i * i for i in range(10))

    def test_fan_out_distributed(self, fast_config):
        cluster, handle = run_program(fan_out_program(), args=(20,),
                                      nsites=4, config=fast_config)
        assert handle.result == sum(i * i for i in range(20))
        # work actually spread: at least one steal happened
        assert cluster.total_stats().get("steals_in").count > 0

    def test_chained_continuation(self, fast_config):
        """A linear chain of frames, each created by its predecessor."""
        prog = ProgramBuilder("chain")

        @prog.microthread(creates=("step",))
        def main(ctx, n):
            ctx.charge(1)
            step = ctx.create_frame("step")
            ctx.send_result(step, 0, n)
            ctx.send_result(step, 1, 0)

        @prog.microthread(creates=("step",))
        def step(ctx, remaining, acc):
            ctx.charge(10)
            if remaining == 0:
                ctx.exit_program(acc)
                return
            nxt = ctx.create_frame("step")
            ctx.send_result(nxt, 0, remaining - 1)
            ctx.send_result(nxt, 1, acc + remaining)
        _cluster, handle = run_program(prog, args=(30,),
                                       config=fast_config)
        assert handle.result == sum(range(31))

    def test_microthread_exception_fails_program(self, fast_config):
        prog = ProgramBuilder("boom")

        @prog.microthread
        def main(ctx):
            ctx.charge(1)
            raise ValueError("intentional")

        cluster = SimCluster(nsites=1, config=fast_config)
        handle = cluster.submit(prog.build())
        with pytest.raises(SDVMError, match="failed"):
            cluster.run()
        assert handle.failed
        assert "intentional" in handle.failure

    def test_deadlock_diagnosed(self, fast_config):
        prog = ProgramBuilder("stuck")

        @prog.microthread(creates=("never",))
        def main(ctx):
            ctx.charge(1)
            ctx.create_frame("never")  # one parameter never arrives

        @prog.microthread
        def never(ctx, x):
            ctx.exit_program(x)

        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.submit(prog.build())
        with pytest.raises(SDVMError, match="unfinished"):
            cluster.run()


class TestGlobalMemory:
    def test_malloc_read_write_local(self, fast_config):
        prog = ProgramBuilder("mem")

        @prog.microthread(creates=("reader",))
        def main(ctx):
            ctx.charge(1)
            addr = ctx.malloc({"hello": [1, 2, 3]})
            reader = ctx.create_frame("reader")
            ctx.send_result(reader, 0, addr)

        @prog.microthread
        def reader(ctx, addr):
            ctx.charge(1)
            value = ctx.read(addr)
            ctx.exit_program(value["hello"])

        _cluster, handle = run_program(prog, config=fast_config)
        assert handle.result == [1, 2, 3]

    def test_remote_read_migrates_object(self, fast_config):
        """Force the reader onto another site; the object must migrate."""
        prog = ProgramBuilder("mem2")

        @prog.microthread(creates=("reader",))
        def main(ctx):
            ctx.charge(200)
            addr = ctx.malloc(1234)
            reader = ctx.create_frame("reader")
            ctx.send_result(reader, 0, addr)

        @prog.microthread
        def reader(ctx, addr):
            ctx.charge(200)
            ctx.exit_program(ctx.read(addr))

        cluster, handle = run_program(prog, nsites=2, config=fast_config)
        assert handle.result == 1234
        stats = cluster.total_stats()
        # either it ran locally (no migration) or it migrated exactly once
        assert stats.get("migrations_in").count <= 1

    def test_write_updates_value(self, fast_config):
        prog = ProgramBuilder("mem3")

        @prog.microthread(creates=("second",))
        def main(ctx):
            ctx.charge(1)
            addr = ctx.malloc(1)
            ctx.write(addr, 2)
            second = ctx.create_frame("second")
            ctx.send_result(second, 0, addr)

        @prog.microthread
        def second(ctx, addr):
            ctx.charge(1)
            ctx.exit_program(ctx.read(addr))

        _cluster, handle = run_program(prog, config=fast_config)
        assert handle.result == 2


class TestIO:
    def test_output_routed_to_frontend(self, fast_config):
        cluster, handle = run_program(fan_out_program(), args=(5,),
                                      nsites=3, config=fast_config)
        assert handle.output() == ["sum computed"]

    def test_file_roundtrip(self, fast_config):
        prog = ProgramBuilder("files")

        @prog.microthread(creates=("reader",))
        def main(ctx):
            ctx.charge(1)
            handle = ctx.open_file("data.txt", "w")
            ctx.file_write(handle, b"file contents")
            ctx.file_close(handle)
            reader = ctx.create_frame("reader")
            ctx.send_result(reader, 0, 0)

        @prog.microthread
        def reader(ctx, _ignored):
            ctx.charge(1)
            handle = ctx.open_file("data.txt", "r")
            data = ctx.file_read(handle)
            ctx.file_close(handle)
            ctx.exit_program(data)

        _cluster, handle = run_program(prog, nsites=2, config=fast_config)
        assert handle.result == b"file contents"

    def test_frontend_input(self, fast_config):
        prog = ProgramBuilder("ask")

        @prog.microthread(creates=("answer",))
        def main(ctx):
            ctx.charge(1)
            answer = ctx.create_frame("answer")
            ctx.request_input("how many?", answer, 0)

        @prog.microthread
        def answer(ctx, value):
            ctx.charge(1)
            ctx.exit_program(value * 2)

        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.sites[0].io_manager.input_provider = (
            lambda pid, prompt: 21 if "how many" in prompt else 0)
        handle = cluster.submit(prog.build())
        cluster.run()
        assert handle.result == 42


class TestMultiProgram:
    def test_two_programs_interleave(self, fast_config):
        """Multitasking/multiuser (paper goals 10–11)."""
        cluster = SimCluster(nsites=4, config=fast_config)
        h1 = cluster.submit(fan_out_program().build(), args=(8,))
        h2 = cluster.submit(fan_out_program().build(), args=(12,),
                            site_index=1, at=0.001)
        cluster.run()
        assert h1.result == sum(i * i for i in range(8))
        assert h2.result == sum(i * i for i in range(12))

    def test_program_ids_distinct(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        h1 = cluster.submit(fan_out_program().build(), args=(3,))
        h2 = cluster.submit(fan_out_program().build(), args=(3,),
                            site_index=1)
        cluster.run()
        assert h1.pid != h2.pid


class TestSecurityIntegration:
    def test_program_runs_with_encryption(self, fast_config):
        config = fast_config.with_(
            security=SecurityConfig(enabled=True, cluster_password="s3cret"))
        cluster, handle = run_program(fan_out_program(), args=(6,),
                                      nsites=3, config=config)
        assert handle.result == sum(i * i for i in range(6))
        sealed = sum(s.security_manager.layer.messages_sealed
                     for s in cluster.sites)
        assert sealed > 0

    def test_dh_rotation_mid_run(self, fast_config):
        config = fast_config.with_(
            security=SecurityConfig(enabled=True))
        cluster = SimCluster(nsites=2, config=config)
        cluster.sim.run(until=0.5)
        a, b = cluster.sites
        a.security_manager.initiate_key_exchange(b.site_id)
        handle = cluster.submit(fan_out_program().build(), args=(4,))
        cluster.run()
        assert handle.result == sum(i * i for i in range(4))
        assert a.security_manager.layer.has_session_key(
            b.kernel.local_physical())


class TestHeterogeneous:
    def test_mixed_platforms_compile_on_the_fly(self, fast_config):
        """Sites with different platform ids get source and compile (§3.4)."""
        cluster = SimCluster(
            site_configs=[SiteConfig(platform="plat-a"),
                          SiteConfig(platform="plat-b"),
                          SiteConfig(platform="plat-b")],
            config=fast_config)
        handle = cluster.submit(fan_out_program().build(), args=(16,))
        cluster.run()
        assert handle.result == sum(i * i for i in range(16))
        stats = cluster.total_stats()
        assert stats.get("sources_received").count > 0   # source shipped
        assert stats.get("compiles").count >= 2          # compiled twice

    def test_binary_reuse_same_platform(self, fast_config):
        """Same-platform sites receive binaries, not source (§3.4).

        Sites holding a compile duty fetch the source once so the cluster
        can compile threads in parallel; everyone else must be served from
        the shared binary store, never handed source to recompile.
        """
        cluster = SimCluster(nsites=3, config=fast_config)
        handle = cluster.submit(fan_out_program().build(), args=(16,))
        cluster.run()
        assert handle.result == sum(i * i for i in range(16))
        stats = cluster.total_stats()
        assert stats.get("binaries_received").count > 0
        duties = stats.get("compile_duties").count
        assert stats.get("sources_received").count <= duties
