"""Tests for ``repro.trace.timeline``: interval pairing, horizon edge
cases (the zero-horizon guard is a shipped-bug regression), merging, and
the empty-journal render paths."""

from __future__ import annotations

from repro.common.config import SDVMConfig
from repro.site.simcluster import SimCluster
from repro.trace.timeline import Timeline, TraceEvent


def exec_pair(site, frame, start, end):
    return [TraceEvent(start, site, "exec_start", {"frame": frame}),
            TraceEvent(end, site, "exec_end", {"frame": frame})]


class TestIntervalPairing:
    def test_pairs_by_site_and_frame(self):
        events = (exec_pair(0, 1, 0.0, 1.0) + exec_pair(0, 2, 2.0, 3.0)
                  + exec_pair(1, 1, 0.5, 2.5))
        timeline = Timeline(events, horizon=4.0)
        assert timeline._busy[0] == [(0.0, 1.0), (2.0, 3.0)]
        assert timeline._busy[1] == [(0.5, 2.5)]
        assert timeline.busy_fraction(0) == 0.5
        assert timeline.busy_fraction(1) == 0.5

    def test_open_execution_runs_to_the_horizon(self):
        events = [TraceEvent(1.0, 0, "exec_start", {"frame": 9})]
        timeline = Timeline(events, horizon=3.0)
        assert timeline._busy[0] == [(1.0, 3.0)]
        assert timeline.busy_fraction(0) == (3.0 - 1.0) / 3.0

    def test_unmatched_end_is_ignored(self):
        events = [TraceEvent(1.0, 0, "exec_end", {"frame": 9})]
        timeline = Timeline(events, horizon=2.0)
        assert timeline._busy == {}
        assert timeline.busy_fraction(0) == 0.0

    def test_overlapping_intervals_merge_for_busy_fraction(self):
        # two frames in flight at once must not double-count wall time
        events = exec_pair(0, 1, 0.0, 2.0) + exec_pair(0, 2, 1.0, 3.0)
        timeline = Timeline(events, horizon=4.0)
        assert timeline._merge(timeline._busy[0]) == [(0.0, 3.0)]
        assert timeline.busy_fraction(0) == 0.75

    def test_busy_fraction_is_capped_at_one(self):
        events = exec_pair(0, 1, 0.0, 5.0)
        timeline = Timeline(events, horizon=2.0)
        assert timeline.busy_fraction(0) == 1.0


class TestHorizonEdgeCases:
    def test_zero_horizon_busy_fraction_is_zero(self):
        # regression: all events at t=0 used to divide by a 0 horizon
        events = exec_pair(0, 1, 0.0, 0.0)
        timeline = Timeline(events, horizon=0.0)
        assert timeline.busy_fraction(0) == 0.0

    def test_zero_horizon_render_says_so(self):
        events = exec_pair(0, 1, 0.0, 0.0)
        rendered = Timeline(events, horizon=0.0).render()
        assert "zero horizon" in rendered

    def test_negative_horizon_is_clamped(self):
        timeline = Timeline([], horizon=-1.0)
        assert timeline.horizon == 0.0
        assert timeline.busy_fraction(0) == 0.0


class TestEmptyAndRendering:
    def test_empty_journal_render_message(self):
        rendered = Timeline([], horizon=1.0).render()
        assert "no journal events" in rendered

    def test_render_marks_busy_and_steals(self):
        events = exec_pair(0, 1, 0.0, 1.0)
        events.append(TraceEvent(1.5, 0, "steal_in", {}))
        rendered = Timeline(events, horizon=2.0).render(width=8)
        lane = rendered.splitlines()[1]
        assert "#" in lane and "s" in lane

    def test_summary_counts_executions_and_steals(self):
        events = (exec_pair(0, 1, 0.0, 1.0) + exec_pair(0, 2, 1.0, 2.0))
        events.append(TraceEvent(0.5, 0, "steal_in", {}))
        summary = Timeline(events, horizon=2.0).summary()
        assert summary.splitlines()[1].split() == ["0", "100%", "2", "1"]

    def test_from_cluster_without_journal_is_empty(self):
        cluster = SimCluster(nsites=2, config=SDVMConfig(journal=False))
        timeline = Timeline.from_cluster(cluster)
        assert timeline.events == []
        assert "no journal events" in timeline.render()
