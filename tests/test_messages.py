"""Tests for SDMessage encoding and reply correlation helpers."""

from __future__ import annotations

import pytest

from repro.common.errors import SerializationError
from repro.common.ids import GlobalAddress, ManagerId
from repro.messages import MsgType, SDMessage, make_reply


def sample(**kwargs) -> SDMessage:
    base = dict(
        type=MsgType.HELP_REQUEST,
        src_site=1, src_manager=ManagerId.SCHEDULING,
        dst_site=2, dst_manager=ManagerId.SCHEDULING,
        payload={"load": 3.0},
        program=42, seq=7,
    )
    base.update(kwargs)
    return SDMessage(**base)


class TestWire:
    def test_roundtrip(self):
        msg = sample()
        decoded = SDMessage.decode(msg.encode())
        assert decoded.type is MsgType.HELP_REQUEST
        assert decoded.src_site == 1
        assert decoded.src_manager is ManagerId.SCHEDULING
        assert decoded.dst_site == 2
        assert decoded.payload == {"load": 3.0}
        assert decoded.program == 42
        assert decoded.seq == 7
        assert decoded.reply_to == -1

    def test_src_load_roundtrip(self):
        msg = sample(src_load=5.5)
        assert SDMessage.decode(msg.encode()).src_load == 5.5

    def test_payload_with_addresses(self):
        msg = sample(payload={"addr": GlobalAddress(3, 9), "slot": 1})
        decoded = SDMessage.decode(msg.encode())
        assert decoded.payload["addr"] == GlobalAddress(3, 9)

    def test_every_msg_type_roundtrips(self):
        for msg_type in MsgType:
            msg = sample(type=msg_type)
            assert SDMessage.decode(msg.encode()).type is msg_type

    def test_wire_size_positive(self):
        assert sample().wire_size() > 0

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            SDMessage.decode(b"definitely not a message")

    def test_wrong_shape_rejected(self):
        from repro.serde import dumps
        with pytest.raises(SerializationError):
            SDMessage.decode(dumps((1, 2, 3)))

    def test_unknown_enum_rejected(self):
        from repro.serde import dumps
        bad = dumps((9999, 1, 1, 2, 2, -1, 0, -1, -1.0, {}))
        with pytest.raises(SerializationError):
            SDMessage.decode(bad)

    def test_non_dict_payload_rejected(self):
        from repro.serde import dumps
        bad = dumps((int(MsgType.HEARTBEAT), 1, 7, 2, 7, -1, 0, -1, -1.0,
                     [1, 2]))
        with pytest.raises(SerializationError):
            SDMessage.decode(bad)


class TestEncodeOnce:
    def test_encode_returns_same_object(self):
        msg = sample()
        assert msg.encode() is msg.encode()

    def test_wire_size_matches_encode(self):
        msg = sample()
        assert msg.wire_size() == len(msg.encode())
        # in either probe order
        other = sample(payload={"big": list(range(100))})
        assert len(other.encode()) == other.wire_size()

    def test_mutation_after_encode_does_not_change_wire(self):
        msg = sample(payload={"load": 3.0})
        wire = msg.encode()
        msg.payload["load"] = 99.0
        msg.dst_site = 5
        assert msg.encode() is wire
        assert SDMessage.decode(msg.encode()).payload == {"load": 3.0}

    def test_invalidate_wire_re_encodes(self):
        msg = sample()
        before = msg.encode()
        msg.seq = 1234
        msg.invalidate_wire()
        after = msg.encode()
        assert after != before
        assert SDMessage.decode(after).seq == 1234

    def test_decode_leaves_cache_cold(self):
        # a received message may be re-addressed (heir forwarding) before
        # it is encoded again, so decode must not pin the incoming bytes
        wire = sample().encode()
        decoded = SDMessage.decode(wire)
        decoded.dst_site = 9
        assert SDMessage.decode(decoded.encode()).dst_site == 9


class TestReply:
    def test_make_reply_swaps_endpoints(self):
        request = sample()
        reply = make_reply(request, MsgType.CANT_HELP, {"load": 0.0})
        assert reply.dst_site == request.src_site
        assert reply.dst_manager is request.src_manager
        assert reply.src_site == request.dst_site
        assert reply.reply_to == request.seq
        assert reply.program == request.program

    def test_make_reply_default_payload(self):
        reply = make_reply(sample(), MsgType.CANT_HELP)
        assert reply.payload == {}
