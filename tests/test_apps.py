"""Correctness tests for every example application, on 1 and several sites."""

from __future__ import annotations

import pytest

from repro.apps import (
    build_mandelbrot_program,
    build_matmul_program,
    build_mergesort_program,
    build_primes_program,
    build_primes_rounds_program,
    build_stencil_program,
    build_treesum_program,
    first_n_primes,
    treesum_expected,
)
from repro.apps.matmul import reference_multiply
from repro.apps.mergesort import generate_input
from repro.apps.stencil import reference_stencil
from repro.site.simcluster import SimCluster


def run(program, args, nsites, fast_config):
    cluster = SimCluster(nsites=nsites, config=fast_config)
    handle = cluster.submit(program, args=args)
    cluster.run(progress_timeout=120.0)
    return cluster, handle


class TestPrimes:
    @pytest.mark.parametrize("nsites", [1, 4])
    @pytest.mark.parametrize("width", [1, 5, 10])
    def test_correct_primes(self, nsites, width, fast_config):
        app = build_primes_program()
        _c, handle = run(app, (25, width, 200.0, 2000.0), nsites,
                         fast_config)
        assert handle.result == first_n_primes(25)

    def test_rounds_variant_correct(self, fast_config):
        app = build_primes_rounds_program()
        _c, handle = run(app, (25, 8, 200.0, 2000.0), 4, fast_config)
        assert handle.result == first_n_primes(25)

    def test_width_exceeding_needed_candidates(self, fast_config):
        app = build_primes_program()
        _c, handle = run(app, (3, 20, 100.0, 1000.0), 2, fast_config)
        assert handle.result == [2, 3, 5]

    def test_bad_arguments_exit_cleanly(self, fast_config):
        app = build_primes_program()
        _c, handle = run(app, (0, 5, 100.0, 1000.0), 1, fast_config)
        assert handle.result == []

    def test_speedup_on_more_sites(self, fast_config):
        app = build_primes_program()
        _c1, h1 = run(app, (60, 8, 400.0, 4000.0), 1, fast_config)
        _c4, h4 = run(app, (60, 8, 400.0, 4000.0), 4, fast_config)
        assert h1.result == h4.result == first_n_primes(60)
        assert h4.duration < h1.duration * 0.6

    def test_sequential_work_units_monotone(self):
        from repro.apps import sequential_work_units
        assert (sequential_work_units(50)
                > sequential_work_units(20)
                > sequential_work_units(5) > 0)


class TestMatmul:
    @pytest.mark.parametrize("nsites", [1, 4])
    def test_product_correct(self, nsites, fast_config):
        app = build_matmul_program()
        _c, handle = run(app, (12, 4), nsites, fast_config)
        assert handle.result == reference_multiply(12)

    def test_single_block(self, fast_config):
        app = build_matmul_program()
        _c, handle = run(app, (6, 6), 1, fast_config)
        assert handle.result == reference_multiply(6)

    def test_bad_block_exits(self, fast_config):
        app = build_matmul_program()
        _c, handle = run(app, (10, 3), 1, fast_config)
        assert handle.result is None


class TestMergesort:
    @pytest.mark.parametrize("nsites", [1, 3])
    def test_sorts(self, nsites, fast_config):
        app = build_mergesort_program()
        _c, handle = run(app, (500, 32, 42), nsites, fast_config)
        assert handle.result == sorted(generate_input(500, 42))

    def test_small_input_below_cutoff(self, fast_config):
        app = build_mergesort_program()
        _c, handle = run(app, (10, 32, 7), 1, fast_config)
        assert handle.result == sorted(generate_input(10, 7))

    def test_recursion_spreads_work(self, fast_config):
        app = build_mergesort_program()
        cluster, handle = run(app, (2000, 64, 1), 4, fast_config)
        assert handle.result == sorted(generate_input(2000, 1))
        busy_sites = sum(
            1 for s in cluster.sites
            if s.processing_manager.stats.get("executions").count > 0)
        assert busy_sites >= 2


class TestMandelbrot:
    def test_render(self, fast_config):
        app = build_mandelbrot_program()
        cluster, handle = run(app, (40, 12, 50), 3, fast_config)
        total, art = handle.result
        assert total > 0
        assert len(art) == 12
        assert all(len(line) == 40 for line in art)
        # output reached the frontend, one line per row
        assert len(handle.output()) == 12

    def test_deterministic(self, fast_config):
        app = build_mandelbrot_program()
        _c1, h1 = run(app, (20, 8, 30), 1, fast_config)
        _c2, h2 = run(app, (20, 8, 30), 4, fast_config)
        assert h1.result == h2.result


class TestStencil:
    @pytest.mark.parametrize("nsites", [1, 4])
    def test_matches_reference(self, nsites, fast_config):
        app = build_stencil_program()
        _c, handle = run(app, (16, 4, 5), nsites, fast_config)
        checksum, delta = handle.result
        ref_checksum, ref_delta = reference_stencil(16, 5)
        assert checksum == pytest.approx(ref_checksum)
        assert delta == pytest.approx(ref_delta)

    def test_survives_sign_off_mid_run(self, fast_config):
        app = build_stencil_program()
        cluster = SimCluster(nsites=4, config=fast_config)
        handle = cluster.submit(app, args=(16, 4, 30))
        cluster.sign_off_site(3, at=0.05)
        cluster.run(progress_timeout=120.0)
        checksum, _delta = handle.result
        ref_checksum, _ref_delta = reference_stencil(16, 30)
        assert checksum == pytest.approx(ref_checksum)


class TestTreesum:
    @pytest.mark.parametrize("nsites", [1, 4])
    def test_sum_correct(self, nsites, fast_config):
        app = build_treesum_program()
        _c, handle = run(app, (64, 50.0), nsites, fast_config)
        assert handle.result == treesum_expected(64)
        assert handle.output() == [f"treesum: {treesum_expected(64)}"]

    def test_non_power_of_two_leaves(self, fast_config):
        app = build_treesum_program()
        _c, handle = run(app, (37, 50.0), 2, fast_config)
        assert handle.result == treesum_expected(37)

    def test_zero_leaves_exits_cleanly(self, fast_config):
        app = build_treesum_program()
        _c, handle = run(app, (0, 50.0), 1, fast_config)
        assert handle.result == 0

    def test_spawn_tree_spreads_work(self, fast_config):
        # the point of the app: every site ends up executing leaves
        app = build_treesum_program()
        cluster, handle = run(app, (256, 500.0), 4, fast_config)
        assert handle.result == treesum_expected(256)
        per_site = [s.kernel.cpu.busy_total for s in cluster.sites]
        assert all(busy > 0 for busy in per_site)
