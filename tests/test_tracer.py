"""Tests for the structured tracer, the Chrome exporter, and the
cluster-wide metrics aggregator."""

from __future__ import annotations

import json

import pytest

from repro.apps import build_primes_program, first_n_primes
from repro.common.errors import SDVMError
from repro.site.simcluster import SimCluster
from repro.trace import (
    EVENT_FIELDS,
    Tracer,
    TracerEvent,
    aggregate_cluster,
    to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture
def traced_run(fast_config):
    """A finished primes run with structured tracing on."""
    cluster = SimCluster(nsites=3, config=fast_config.with_(trace=True))
    handle = cluster.submit(build_primes_program(),
                            args=(25, 6, 400.0, 4000.0))
    cluster.run(progress_timeout=120.0)
    assert handle.result == first_n_primes(25)
    return cluster, handle


class TestTracerUnit:
    def test_emit_and_read_back(self):
        tracer = Tracer()
        tracer.emit(0.5, 2, "steal_in", 1, 0x20001)
        tracer.emit(0.2, 0, "help_request", 2)
        assert len(tracer) == 2
        # the events property sorts the cluster-wide stream by (ts, site)
        assert [e.kind for e in tracer.events] == ["help_request", "steal_in"]
        event = tracer.events[1]
        assert isinstance(event, TracerEvent)
        assert event.as_dict() == {"ts": 0.5, "site": 2, "kind": "steal_in",
                                   "victim": 1, "frame": 0x20001}

    def test_select_and_kinds(self):
        tracer = Tracer()
        tracer.emit(0.1, 0, "site_join", 0)
        tracer.emit(0.2, 1, "site_join", 1)
        tracer.emit(0.3, 1, "site_sleep")
        assert tracer.kinds() == {"site_join": 2, "site_sleep": 1}
        assert len(tracer.select(kind="site_join")) == 2
        assert len(tracer.select(kind="site_join", site=1)) == 1
        assert tracer.select(site=1)[-1].kind == "site_sleep"

    def test_validate_rejects_unknown_kind(self):
        tracer = Tracer()
        tracer.emit(0.0, 0, "warp_core_breach")
        with pytest.raises(SDVMError, match="unknown"):
            tracer.validate()

    def test_validate_rejects_arity_mismatch(self):
        tracer = Tracer()
        tracer.emit(0.0, 0, "steal_in", 1)  # schema wants (victim, frame)
        with pytest.raises(SDVMError, match="fields"):
            tracer.validate()

    def test_validate_rejects_bad_ts_and_site(self):
        bad_ts = Tracer()
        bad_ts.emit("soon", 0, "site_sleep")
        with pytest.raises(SDVMError, match="ts"):
            bad_ts.validate()
        bad_site = Tracer()
        bad_site.emit(0.0, "zero", "site_sleep")
        with pytest.raises(SDVMError, match="site"):
            bad_site.validate()

    def test_schema_field_names_unique_per_kind(self):
        for kind, names in EVENT_FIELDS.items():
            assert len(names) == len(set(names)), kind


class TestClusterTracing:
    def test_disabled_by_default(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        assert cluster.tracer is None
        for site in cluster.sites:
            assert site.tracer is None
            for manager in site.managers.values():
                assert manager.tracer is None

    def test_all_managers_share_the_cluster_tracer(self, traced_run):
        cluster, _handle = traced_run
        assert cluster.tracer is not None
        for site in cluster.sites:
            for manager in site.managers.values():
                assert manager.tracer is cluster.tracer

    def test_events_validate_and_cover_the_lifecycle(self, traced_run):
        cluster, _handle = traced_run
        tracer = cluster.tracer
        tracer.validate()
        kinds = tracer.kinds()
        for expected in ("frame_enqueued", "exec_begin", "exec_end",
                         "help_request", "steal_in", "steal_out",
                         "code_hit", "code_compile", "msg_send", "msg_recv",
                         "site_join", "program_register", "program_exit",
                         "io_output"):
            assert kinds[expected] > 0, expected

    def test_exec_events_match_stats(self, traced_run):
        cluster, _handle = traced_run
        stats = cluster.total_stats()
        ends = cluster.tracer.select(kind="exec_end")
        assert len(ends) == stats.get("executions").count
        assert (sum(e.fields[1] for e in ends)
                == pytest.approx(stats.get("work_units").total))

    def test_tracing_does_not_perturb_determinism(self, fast_config):
        outcomes = []
        for trace in (False, True):
            cluster = SimCluster(nsites=3,
                                 config=fast_config.with_(trace=trace))
            handle = cluster.submit(build_primes_program(),
                                    args=(25, 6, 400.0, 4000.0))
            cluster.run(progress_timeout=120.0)
            stats = cluster.total_stats()
            outcomes.append((handle.result, handle.duration,
                             stats.get("executions").count,
                             stats.get("sent").count,
                             stats.get("steals_in").count))
        assert outcomes[0] == outcomes[1]


class TestChromeExporter:
    def test_empty_tracer_exports_empty_doc(self):
        assert to_chrome(Tracer()) == {"traceEvents": [],
                                       "displayTimeUnit": "ms"}

    def test_artifact_round_trip(self, traced_run, tmp_path):
        cluster, _handle = traced_run
        path = tmp_path / "primes.trace.json"
        count = cluster.write_chrome_trace(str(path))
        assert count > 0
        report = validate_chrome_trace(str(path))
        assert report["events"] == count
        assert report["slices"] > 0       # executions became "X" slices
        assert report["instants"] > 0
        # every execution produces exactly one slice (plus wave slices and
        # any still-open slices closed at the horizon)
        execs = cluster.total_stats().get("executions").count
        assert report["slices"] >= execs

    def test_site_names_in_metadata(self, traced_run, tmp_path):
        cluster, _handle = traced_run
        path = tmp_path / "named.trace.json"
        cluster.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert len(meta) >= 3
        assert all(e["args"]["name"] for e in meta)

    def test_validator_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "ts": 5.0, "dur": 1.0},
            {"ph": "X", "ts": 1.0, "dur": 1.0},  # ts goes backwards
        ]}))
        with pytest.raises(SDVMError, match="monotonic"):
            validate_chrome_trace(str(path))

    def test_write_chrome_trace_requires_tracing(self, fast_config,
                                                 tmp_path):
        cluster = SimCluster(nsites=1, config=fast_config)
        with pytest.raises(SDVMError, match="trace"):
            cluster.write_chrome_trace(str(tmp_path / "nope.json"))


class TestAggregator:
    def test_report_matches_total_stats(self, traced_run):
        cluster, handle = traced_run
        report = cluster.cluster_report()
        stats = cluster.total_stats()
        assert report.nsites == 3
        assert report.horizon >= handle.duration
        assert report.derived["executions"] == stats.get("executions").count
        assert (report.derived["work_units"]
                == pytest.approx(stats.get("work_units").total))
        assert 0.0 <= report.derived["steal_success_rate"] <= 1.0
        assert 0.0 < report.derived["code_hit_rate"] <= 1.0
        assert 0.0 < report.derived["busy_fraction_mean"] <= 1.0

    def test_message_breakdown_accounts_for_every_send(self, traced_run):
        cluster, _handle = traced_run
        report = cluster.cluster_report()
        sends = cluster.tracer.select(kind="msg_send")
        assert sum(int(row["count"])
                   for row in report.message_breakdown.values()) == len(sends)
        assert all(row["bytes"] > 0
                   for row in report.message_breakdown.values())

    def test_render_and_as_dict(self, traced_run):
        cluster, _handle = traced_run
        report = cluster.cluster_report()
        text = report.render(top=8)
        assert "derived metrics" in text
        assert "messages by type" in text
        doc = report.as_dict()
        json.dumps(doc)  # must be JSON-serialisable as-is
        assert doc["nsites"] == 3

    def test_aggregate_without_tracer(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        handle = cluster.submit(build_primes_program(),
                                args=(10, 4, 200.0, 2000.0))
        cluster.run(progress_timeout=60.0)
        assert handle.result == first_n_primes(10)
        report = aggregate_cluster(cluster)
        assert report.message_breakdown == {}
        assert report.derived["executions"] > 0


class TestBenchArtifacts:
    def test_trace_dir_smoke(self, monkeypatch, tmp_path):
        """The CI smoke path: run one benchmark with SDVM_TRACE_DIR set and
        validate the dumped artifact."""
        from repro.bench import harness
        monkeypatch.setattr(harness, "TRACE_DIR", str(tmp_path))
        duration, cluster = harness.run_primes(10, 4, 2, 200.0, 2000.0)
        assert duration > 0
        trace_path = tmp_path / "primes_p10_w4_s2.trace.json"
        stats_path = tmp_path / "primes_p10_w4_s2.stats.txt"
        assert trace_path.exists() and stats_path.exists()
        report = validate_chrome_trace(str(trace_path))
        assert report["slices"] > 0
        assert "derived metrics" in stats_path.read_text()

    def test_dump_is_noop_without_trace_dir(self, monkeypatch, tmp_path):
        from repro.bench import harness
        monkeypatch.setattr(harness, "TRACE_DIR", "")
        _duration, cluster = harness.run_primes(10, 4, 2, 200.0, 2000.0)
        assert cluster.tracer is None
        assert harness.dump_trace_artifact(cluster, "nope") is None
        assert list(tmp_path.iterdir()) == []
