"""Integration tests for dynamic entry/exit and crash recovery
(paper §3.4, §2.2): join mid-run, orderly sign-off with relocation,
checkpointed crash recovery.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CheckpointConfig,
    ClusterConfig,
    CostModel,
    SchedulingConfig,
    SDVMConfig,
)
from repro.apps import build_primes_program, first_n_primes
from repro.site.simcluster import SimCluster

PRIMES = build_primes_program()
P, WIDTH = 40, 6
ARGS = (P, WIDTH, 400.0, 4000.0)
EXPECTED = first_n_primes(P)


def elastic_config(**kwargs) -> SDVMConfig:
    return SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-4),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0),
        **kwargs)


class TestJoin:
    def test_site_joining_mid_run_gets_work(self):
        cluster = SimCluster(nsites=2, config=elastic_config())
        handle = cluster.submit(PRIMES, args=ARGS)
        newcomer = cluster.add_site(at=0.05)
        cluster.run()
        assert handle.result == EXPECTED
        assert newcomer.running
        execs = newcomer.processing_manager.stats.get("executions").count
        assert execs > 0, "joiner never received work"

    def test_many_joins_accelerate_completion(self):
        solo = SimCluster(nsites=1, config=elastic_config())
        h1 = solo.submit(PRIMES, args=ARGS)
        solo.run()

        growing = SimCluster(nsites=1, config=elastic_config())
        h2 = growing.submit(PRIMES, args=ARGS)
        for i in range(3):
            growing.add_site(at=0.01 * (i + 1))
        growing.run()
        assert h2.result == EXPECTED
        assert h2.duration < h1.duration


class TestSignOff:
    def test_orderly_departure_mid_run(self):
        """A site leaves mid-run; its frames relocate; the program still
        delivers the correct result (§3.4)."""
        cluster = SimCluster(nsites=4, config=elastic_config())
        handle = cluster.submit(PRIMES, args=ARGS)
        cluster.sign_off_site(3, at=0.05)
        cluster.run()
        assert handle.result == EXPECTED
        assert not cluster.sites[3].running
        assert cluster.sites[3].stopped

    def test_departed_site_marked_left_with_heir(self):
        cluster = SimCluster(nsites=3, config=elastic_config())
        handle = cluster.submit(PRIMES, args=ARGS)
        leaver_logical = None

        def capture():
            nonlocal leaver_logical
            leaver_logical = cluster.sites[2].site_id

        cluster.sim.schedule_at(0.049, capture)
        cluster.sign_off_site(2, at=0.05)
        cluster.run()
        assert handle.result == EXPECTED
        record = cluster.sites[0].cluster_manager.sites[leaver_logical]
        assert not record.alive
        assert record.left
        assert record.heir is not None

    def test_multiple_departures(self):
        cluster = SimCluster(nsites=5, config=elastic_config())
        handle = cluster.submit(PRIMES, args=ARGS)
        cluster.sign_off_site(4, at=0.03)
        cluster.sign_off_site(3, at=0.06)
        cluster.run()
        assert handle.result == EXPECTED

    def test_shrink_then_grow(self):
        cluster = SimCluster(nsites=3, config=elastic_config())
        handle = cluster.submit(PRIMES, args=ARGS)
        cluster.sign_off_site(2, at=0.03)
        cluster.add_site(at=0.08)
        cluster.run()
        assert handle.result == EXPECTED


def crash_config() -> SDVMConfig:
    return SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-4),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0),
        cluster=ClusterConfig(heartbeats_enabled=True,
                              heartbeat_interval=0.02,
                              heartbeat_timeout=0.08),
        checkpoint=CheckpointConfig(enabled=True, interval=0.05),
    )


class TestCrashRecovery:
    def test_crash_recovered_from_checkpoint(self):
        cluster = SimCluster(nsites=4, config=crash_config())
        handle = cluster.submit(PRIMES, args=ARGS)
        cluster.crash_site(3, at=0.12)  # after at least one checkpoint wave
        cluster.run(progress_timeout=60.0)
        assert handle.result == EXPECTED
        coordinator = cluster.sites[0]
        assert coordinator.crash_manager.stats.get("recoveries").count >= 1

    def test_crash_without_checkpoint_fails_program(self):
        config = SDVMConfig(
            cost=CostModel(compile_fixed_cost=1e-4),
            cluster=ClusterConfig(heartbeats_enabled=True,
                                  heartbeat_interval=0.02,
                                  heartbeat_timeout=0.08),
            checkpoint=CheckpointConfig(enabled=False),
        )
        cluster = SimCluster(nsites=3, config=config)
        # enough work that the crash lands mid-run
        handle = cluster.submit(PRIMES, args=(60, 6, 2000.0, 20000.0))
        cluster.crash_site(2, at=0.1)
        from repro.common.errors import SDVMError
        with pytest.raises(SDVMError):
            cluster.run(progress_timeout=60.0)

    def test_checkpoint_waves_commit_without_crash(self):
        cluster = SimCluster(nsites=3, config=crash_config())
        handle = cluster.submit(PRIMES, args=ARGS)
        cluster.run(progress_timeout=60.0)
        assert handle.result == EXPECTED
        committed = max(s.crash_manager.committed_wave
                        for s in cluster.sites)
        assert committed >= 1
