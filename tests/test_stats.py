"""Tests for the statistics primitives and the sim resource."""

from __future__ import annotations

import pytest

from repro.common.stats import Counter, Gauge, Histogram, StatSet, Timer
from repro.sim.engine import SimulationError
from repro.sim.resource import SimResource


class TestCounter:
    def test_add(self):
        c = Counter()
        c.add(2.0)
        c.add(4.0)
        assert c.count == 2
        assert c.total == 6.0
        assert c.mean == 3.0

    def test_empty_mean(self):
        assert Counter().mean == 0.0

    def test_merge(self):
        a, b = Counter(), Counter()
        a.add(1.0)
        b.add(2.0)
        a.merge(b)
        assert a.count == 2 and a.total == 3.0


class TestStatSet:
    def test_autovivify(self):
        s = StatSet()
        s.inc("x")
        s.add("y", 5.0)
        assert s["x"].count == 1
        assert s["y"].total == 5.0

    def test_get_does_not_create(self):
        s = StatSet()
        assert s.get("nothing").count == 0
        assert "nothing" not in s.as_dict()

    def test_merge(self):
        a, b = StatSet(), StatSet()
        a.inc("x")
        b.inc("x")
        b.inc("y")
        a.merge(b)
        assert a["x"].count == 2
        assert a["y"].count == 1

    def test_items_sorted(self):
        s = StatSet()
        s.inc("zebra")
        s.inc("alpha")
        assert [k for k, _ in s.items()] == ["alpha", "zebra"]


class TestGauge:
    def test_tracks_value_and_peak(self):
        g = Gauge()
        g.set(3.0)
        g.set(7.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.peak == 7.0

    def test_merge_takes_max_not_overwrite(self):
        """Cross-site merge semantics: instantaneous levels from different
        sites are not time-ordered, so the merged value is the max level
        any site reported — never the last operand's, never a sum."""
        a, b = Gauge(), Gauge()
        a.set(5.0)
        b.set(3.0)
        a.merge(b)
        assert a.value == 5.0
        assert a.peak == 5.0

    def test_merge_does_not_sum_values(self):
        sites = [Gauge() for _ in range(4)]
        for g in sites:
            g.set(2.0)
        merged = Gauge()
        for g in sites:
            merged.merge(g)
        assert merged.value == 2.0   # not 8.0
        assert merged.peak == 2.0

    def test_merge_takes_larger_incoming_value(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(6.0)
        a.merge(b)
        assert a.value == 6.0
        assert a.peak == 6.0

    def test_statset_gauges_in_as_dict(self):
        s = StatSet()
        s.set_gauge("queue_depth", 4.0)
        s.set_gauge("queue_depth", 1.0)
        d = s.as_dict()
        assert d["queue_depth"] == 1.0
        assert d["queue_depth_peak"] == 4.0

    def test_statset_gauge_merge(self):
        a, b = StatSet(), StatSet()
        a.set_gauge("depth", 9.0)
        b.set_gauge("depth", 2.0)
        a.merge(b)
        assert a.gauge("depth").peak == 9.0

    def test_locked_statset_counts_concurrently(self):
        import threading
        s = StatSet(locked=True)

        def spin():
            for _ in range(5000):
                s.inc("hits")

        workers = [threading.Thread(target=spin) for _ in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert s["hits"].count == 20000


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.p50 == 0.0 and h.p95 == 0.0 and h.mean == 0.0
        assert h.as_dict() == {"count": 0, "mean": 0.0, "p50": 0.0,
                               "p95": 0.0, "max": 0.0}

    def test_percentiles_are_conservative(self):
        """A bucketed percentile never under-reports: it returns the
        bucket's upper bound, clamped to the true observed max."""
        h = Histogram()
        for value in (0.001, 0.002, 0.003, 0.004, 0.100):
            h.observe(value)
        assert h.count == 5
        assert h.p50 >= 0.002
        assert h.p95 >= 0.100 * 0.99
        assert h.p95 <= h.max == 0.100

    def test_single_value(self):
        h = Histogram()
        h.observe(0.5)
        assert h.p50 == 0.5 and h.p95 == 0.5 and h.max == 0.5
        assert h.mean == 0.5

    def test_out_of_range_values_clamped_to_edge_buckets(self):
        h = Histogram()
        h.observe(1e-9)    # below the first bound
        h.observe(1e6)     # above the last bound
        assert h.count == 2
        assert h.max == 1e6
        assert h.percentile(1.0) == 1e6

    def test_merge(self):
        a, b = Histogram(), Histogram()
        for value in (0.01, 0.02):
            a.observe(value)
        b.observe(0.04)
        a.merge(b)
        assert a.count == 3
        assert a.total == pytest.approx(0.07)
        assert a.max == 0.04

    def test_statset_observe_and_dump(self):
        s = StatSet()
        s.observe("help_latency", 0.010)
        s.observe("help_latency", 0.020)
        assert s.hist("help_latency").count == 2
        d = s.as_dict()
        assert d["help_latency_count"] == 2
        assert d["help_latency_p95"] >= 0.020 * 0.99

    def test_statset_hist_merge(self):
        a, b = StatSet(), StatSet()
        a.observe("lat", 0.01)
        b.observe("lat", 0.03)
        a.merge(b)
        assert a.hist("lat").count == 2
        assert a.hist("lat").max == 0.03

    def test_locked_statset_observe(self):
        s = StatSet(locked=True)
        s.observe("lat", 0.5)
        assert s.hist("lat").count == 1


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        t.start(1.0)
        assert t.running
        assert t.stop(3.0) == 2.0
        t.start(5.0)
        t.stop(6.0)
        assert t.busy == 3.0

    def test_double_start_rejected(self):
        t = Timer()
        t.start(0.0)
        with pytest.raises(RuntimeError):
            t.start(1.0)

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop(1.0)

    def test_backwards_clock_rejected(self):
        t = Timer()
        t.start(5.0)
        with pytest.raises(ValueError):
            t.stop(1.0)


class TestSimResource:
    def test_capacity_respected(self, sim):
        res = SimResource(sim, capacity=2)
        order = []
        for i in range(4):
            res.acquire(lambda i=i: order.append(i))
        assert order == [0, 1]
        assert res.queued == 2
        res.release()
        sim.run()
        assert order == [0, 1, 2]

    def test_release_without_acquire(self, sim):
        res = SimResource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_fifo_wakeup(self, sim):
        res = SimResource(sim, capacity=1)
        order = []
        for i in range(3):
            res.acquire(lambda i=i: order.append(i))
        res.release()
        sim.run()
        res.release()
        sim.run()
        assert order == [0, 1, 2]

    def test_bad_capacity(self, sim):
        with pytest.raises(SimulationError):
            SimResource(sim, capacity=0)
