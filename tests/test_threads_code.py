"""Tests for microthread source/binary compilation (§3.4 code path)."""

from __future__ import annotations

import pytest

from repro.common.errors import CodeError
from repro.core.threads import (
    CompiledMicrothread,
    MicrothreadSource,
    binary_from_compiled,
    compile_microthread,
    compiled_from_binary,
)

GOOD_SOURCE = """\
def adder(ctx, a, b):
    def double(x):
        return x * 2
    ctx.charge(1)
    return double(a) + b
"""


def src(source=GOOD_SOURCE, name="adder", nparams=2):
    return MicrothreadSource(thread_id=1, name=name, program=5,
                             source=source, nparams=nparams)


class FakeCtx:
    def charge(self, units):
        pass


class TestCompile:
    def test_compile_and_run(self):
        compiled = compile_microthread(src(), "linux-x64")
        assert compiled.platform == "linux-x64"
        assert compiled.entry(FakeCtx(), 3, 4) == 10
        assert compiled.binary_size > 0
        assert compiled.source is not None

    def test_syntax_error_raises_code_error(self):
        with pytest.raises(CodeError):
            compile_microthread(src(source="def broken(:\n"), "p")

    def test_missing_function_rejected(self):
        with pytest.raises(CodeError):
            compile_microthread(src(source="x = 1\n"), "p")

    def test_wrong_name_rejected(self):
        with pytest.raises(CodeError):
            compile_microthread(src(name="other"), "p")

    def test_restricted_builtins(self):
        evil = "def adder(ctx, a, b):\n    return open('/etc/passwd')\n"
        compiled = compile_microthread(src(source=evil), "p")
        with pytest.raises(Exception):
            compiled.entry(FakeCtx(), 1, 2)

    def test_import_at_load_time_fails(self):
        source = "import os\ndef adder(ctx, a, b):\n    return 1\n"
        with pytest.raises(CodeError):
            compile_microthread(src(source=source), "p")


class TestBinary:
    def test_binary_roundtrip(self):
        compiled = compile_microthread(src(), "platform-a")
        blob = binary_from_compiled(compiled)
        clone = compiled_from_binary(blob, src(), "platform-a")
        assert clone.entry(FakeCtx(), 5, 6) == 16
        assert clone.binary_size == len(blob)

    def test_corrupt_binary_rejected(self):
        with pytest.raises(CodeError):
            compiled_from_binary(b"garbage", src(), "p")

    def test_non_code_marshal_rejected(self):
        import marshal
        with pytest.raises(CodeError):
            compiled_from_binary(marshal.dumps([1, 2, 3]), src(), "p")


class TestWire:
    def test_source_roundtrip(self):
        source = src()
        clone = MicrothreadSource.from_wire(source.to_wire())
        assert clone == source

    def test_source_size(self):
        assert src().source_size() == len(GOOD_SOURCE.encode())

    def test_malformed_rejected(self):
        with pytest.raises(CodeError):
            MicrothreadSource.from_wire({"name": "x"})
