"""Unit tests for the processing manager, I/O manager, and program manager
driven through the simulation facade.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ProgramError
from repro.common.ids import FileHandle, make_program_id, program_origin_site
from repro.core.program import ProgramBuilder
from repro.site.simcluster import SimCluster


def simple_program(name="p"):
    prog = ProgramBuilder(name)

    @prog.microthread
    def main(ctx, x):
        ctx.charge(10)
        ctx.exit_program(x)

    return prog.build()


class TestProgramIds:
    def test_program_id_embeds_origin(self):
        pid = make_program_id(5, 3)
        assert program_origin_site(pid) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_program_id(-1, 0)


class TestProgramManager:
    def test_register_and_broadcast(self, fast_config):
        cluster = SimCluster(nsites=3, config=fast_config)
        cluster.sim.run(until=0.2)
        site = cluster.sites[0]
        pid = site.submit_program(simple_program(), args=(1,))
        cluster.sim.run(until=0.4)
        for other in cluster.sites[1:]:
            assert other.program_manager.knows(pid)
            info = other.program_manager.get(pid)
            assert info.code_home == site.site_id
            assert info.frontend == site.site_id

    def test_termination_propagates(self, fast_config):
        cluster = SimCluster(nsites=3, config=fast_config)
        handle = cluster.submit(simple_program(), args=(7,), at=0.01)
        cluster.run()
        assert handle.result == 7
        # run() stops the instant the frontend has the result; give the
        # PROGRAM_TERMINATED broadcast time to land everywhere
        cluster.sim.run(until=cluster.sim.now + 0.5)
        for site in cluster.sites:
            assert site.program_manager.get(handle.pid).terminated

    def test_accounting_records_work(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        handle = cluster.submit(simple_program(), args=(1,))
        cluster.run()
        info = cluster.sites[0].program_manager.get(handle.pid)
        assert info.executions == 1
        assert info.work_charged == 10.0
        assert info.finished_at > info.started_at >= 0.0

    def test_unknown_program_rejected(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        with pytest.raises(ProgramError):
            cluster.sites[0].program_manager.get(999999)

    def test_double_register_rejected(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.sim.run(until=0.1)
        site = cluster.sites[0]
        pid = make_program_id(site.site_id, 50)
        site.program_manager.register_local(simple_program("a"), pid)
        with pytest.raises(ProgramError):
            site.program_manager.register_local(simple_program("b"), pid)

    def test_wire_roundtrip(self, fast_config):
        from repro.program.manager import ProgramInfo
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.sim.run(until=0.1)
        site = cluster.sites[0]
        pid = make_program_id(site.site_id, 51)
        info = site.program_manager.register_local(simple_program(), pid)
        clone = ProgramInfo.from_wire(info.to_wire())
        assert clone.pid == info.pid
        assert clone.thread_table() == info.thread_table()


class TestProcessing:
    def test_entry_args_mismatch_rejected(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.sim.run(until=0.1)
        with pytest.raises(ProgramError):
            cluster.sites[0].submit_program(simple_program(), args=(1, 2))

    def test_work_accounting(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        handle = cluster.submit(simple_program(), args=(1,))
        cluster.run()
        pm = cluster.sites[0].processing_manager
        assert pm.work_done == 10.0
        assert pm.stats.get("executions").count == 1
        assert pm.in_flight == 0

    def test_cpu_busy_matches_charged_work(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        handle = cluster.submit(simple_program(), args=(1,))
        cluster.run()
        cpu = cluster.sites[0].kernel.cpu
        compute = cpu.busy_total - cpu.overhead_total
        expected = 10.0 * fast_config.cost.work_unit_time
        assert compute == pytest.approx(expected)

    def test_speed_scales_compute_time(self, fast_config):
        from repro.common.config import SiteConfig
        durations = {}
        for speed in (1.0, 4.0):
            cluster = SimCluster(
                site_configs=[SiteConfig(speed=speed)], config=fast_config)
            prog = ProgramBuilder("work")

            @prog.microthread
            def main(ctx):
                ctx.charge(1_000_000)
                ctx.exit_program(0)

            handle = cluster.submit(prog.build())
            cluster.run()
            durations[speed] = handle.duration
        # 4x speed is ~4x faster on the compute-dominated run
        assert durations[1.0] / durations[4.0] == pytest.approx(4.0,
                                                                rel=0.05)


class TestIOManager:
    def test_file_modes_enforced(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.sim.run(until=0.1)
        io = cluster.sites[0].io_manager
        with pytest.raises(ProgramError):
            io.sim_open("missing.txt", "r")
        handle, _lat = io.sim_open("new.txt", "w")
        with pytest.raises(ProgramError):
            io.sim_read(handle, -1)  # write-only
        io.sim_close(handle)
        with pytest.raises(ProgramError):
            io.sim_open("x", "x+")

    def test_append_mode(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.sim.run(until=0.1)
        io = cluster.sites[0].io_manager
        h1, _ = io.sim_open("log", "w")
        io.sim_write(h1, b"first")
        io.sim_close(h1)
        h2, _ = io.sim_open("log", "a")
        io.sim_write(h2, b"|second")
        io.sim_close(h2)
        h3, _ = io.sim_open("log", "r")
        data, _ = io.sim_read(h3, -1)
        assert data == b"first|second"

    def test_stale_handle_rejected(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.sim.run(until=0.1)
        io = cluster.sites[0].io_manager
        with pytest.raises(ProgramError):
            io.sim_read(FileHandle(cluster.sites[0].site_id, 999), 1)

    def test_input_without_provider_fails_program(self, fast_config):
        prog = ProgramBuilder("ask")

        @prog.microthread(creates=("sink",))
        def main(ctx):
            sink = ctx.create_frame("sink")
            ctx.request_input("?", sink, 0)

        @prog.microthread
        def sink(ctx, v):
            ctx.exit_program(v)

        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.submit(prog.build())
        from repro.common.errors import SDVMError
        with pytest.raises((ProgramError, SDVMError)):
            cluster.run()

    def test_output_order_preserved(self, fast_config):
        prog = ProgramBuilder("seq")

        @prog.microthread
        def main(ctx):
            for i in range(5):
                ctx.output(f"line {i}")
            ctx.exit_program(None)

        cluster = SimCluster(nsites=1, config=fast_config)
        handle = cluster.submit(prog.build())
        cluster.run()
        assert handle.output() == [f"line {i}" for i in range(5)]


class TestSiteManagerStatus:
    def test_full_status_covers_all_managers(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.sim.run(until=0.2)
        status = cluster.sites[0].site_manager.full_status()
        assert status["site_id"] == 0
        assert status["load"] == 0.0
        for name in ("processing", "scheduling", "code",
                     "attraction_memory", "io", "message", "cluster",
                     "program", "site", "security", "crash"):
            assert name in status["managers"], name

    def test_load_reflects_queue(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        handle = cluster.submit(simple_program(), args=(1,))
        cluster.run()
        assert cluster.sites[0].site_manager.current_load() == 0.0
