"""Unit tests for the message manager: routing, replies, timeouts,
rerouting to heirs, and the forwarding (zombie) mode.
"""

from __future__ import annotations

import pytest

from repro.common.config import SDVMConfig
from repro.common.ids import ManagerId
from repro.messages import MsgType, SDMessage, make_reply
from repro.site.simcluster import SimCluster


@pytest.fixture
def pair(fast_config):
    cluster = SimCluster(nsites=2, config=fast_config)
    cluster.sim.run(until=0.2)
    return cluster, cluster.sites[0], cluster.sites[1]


def status_msg(src, dst):
    return SDMessage(
        type=MsgType.STATUS_QUERY,
        src_site=src.site_id, src_manager=ManagerId.SITE,
        dst_site=dst.site_id, dst_manager=ManagerId.SITE,
    )


class TestSendReceive:
    def test_request_reply_roundtrip(self, pair):
        cluster, a, b = pair
        replies = []
        a.message_manager.request(status_msg(a, b), replies.append)
        cluster.sim.run(until=0.5)
        assert len(replies) == 1
        assert replies[0].type is MsgType.STATUS_REPLY
        assert replies[0].payload["site_id"] == b.site_id

    def test_local_loopback(self, pair):
        cluster, a, _b = pair
        replies = []
        a.message_manager.request(status_msg(a, a), replies.append)
        cluster.sim.run(until=0.5)
        assert len(replies) == 1
        assert a.message_manager.stats.get("local_messages").count >= 1

    def test_unresolvable_target(self, pair):
        _cluster, a, _b = pair
        msg = status_msg(a, a)
        msg.dst_site = 999
        assert not a.message_manager.send(msg)
        assert a.message_manager.stats.get("unresolvable").count == 1

    def test_seq_assigned_monotonically(self, pair):
        _cluster, a, b = pair
        m1, m2 = status_msg(a, b), status_msg(a, b)
        a.message_manager.send(m1)
        a.message_manager.send(m2)
        assert 0 < m1.seq < m2.seq

    def test_src_load_piggybacked(self, pair):
        cluster, a, b = pair
        msg = status_msg(a, b)
        a.message_manager.send(msg)
        assert msg.src_load >= 0
        cluster.sim.run(until=0.5)
        record = b.cluster_manager.sites[a.site_id]
        assert record.load == msg.src_load

    def test_timeout_fires_and_late_reply_is_orphan(self, pair):
        cluster, a, b = pair
        timed_out = []
        # impossible timeout: shorter than one-way latency
        a.message_manager.request(status_msg(a, b), lambda m: None,
                                  timeout=1e-6,
                                  on_timeout=lambda: timed_out.append(1))
        cluster.sim.run(until=0.5)
        assert timed_out == [1]
        assert a.message_manager.stats.get("request_timeouts").count == 1
        # the actual reply arrived later and was routed as unsolicited
        assert a.message_manager.stats.get("orphan_replies").count >= 0

    def test_stopped_site_drops_messages(self, pair):
        cluster, a, b = pair
        b.crash()
        assert a.message_manager.send(status_msg(a, b))  # fire and forget
        cluster.sim.run(until=0.5)  # no crash: message swallowed

    def test_reroute_to_heir_after_sign_off(self, fast_config):
        cluster = SimCluster(nsites=3, config=fast_config)
        cluster.sim.run(until=0.2)
        a, b, c = cluster.sites
        b_id = b.site_id
        # b leaves; a learns c is the heir
        record = a.cluster_manager.sites[b_id]
        record.alive = False
        record.left = True
        record.heir = c.site_id
        replies = []
        a.message_manager.request(status_msg(a, b), replies.append)
        cluster.sim.run(until=0.5)
        assert len(replies) == 1
        assert replies[0].payload["site_id"] == c.site_id


class TestForwardingMode:
    def test_zombie_forwards_results_to_heir(self, fast_config):
        from repro.common.ids import GlobalAddress
        cluster = SimCluster(nsites=3, config=fast_config)
        cluster.sim.run(until=0.2)
        a, b, c = cluster.sites
        b.forward_to = c.site_id
        msg = SDMessage(
            type=MsgType.APPLY_RESULT,
            src_site=a.site_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=b.site_id, dst_manager=ManagerId.ATTRACTION_MEMORY,
            program=-1,
            payload={"addr": GlobalAddress(b.site_id, 1), "slot": 0,
                     "value": 42},
        )
        a.message_manager.send(msg)
        cluster.sim.run(until=0.5)
        assert b.message_manager.stats.get("forwarded_to_heir").count == 1
        # c buffered the orphan result (program unknown -> dropped is also
        # acceptable; the point is the message reached c)
        received = c.message_manager.stats.get("received").count
        assert received >= 1

    def test_zombie_drops_heartbeats(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.sim.run(until=0.2)
        a, b = cluster.sites
        b.forward_to = a.site_id
        hb = SDMessage(
            type=MsgType.HEARTBEAT,
            src_site=a.site_id, src_manager=ManagerId.CLUSTER,
            dst_site=b.site_id, dst_manager=ManagerId.CLUSTER,
            payload={"load": 0.0},
        )
        a.message_manager.send(hb)
        cluster.sim.run(until=0.5)
        assert b.message_manager.stats.get("forwarded_to_heir").count == 0


class TestLiveKernelTimeoutPaths:
    """request() timeout machinery exercised on the live (real-threads)
    kernel: timeout fires, a late reply is routed as an orphan, and
    on_stop cancels pending handles."""

    @staticmethod
    def _cluster():
        import time

        from repro.common.config import CostModel
        from repro.runtime.live_cluster import LiveCluster

        return LiveCluster(nsites=2, config=SDVMConfig(
            cost=CostModel(compile_fixed_cost=1e-4)))

    @staticmethod
    def _swallow_queries(site):
        """Make ``site`` drop STATUS_QUERYs so no reply can race the
        timeout timer."""
        site.kernel.reactor_call(
            lambda: setattr(site.site_manager, "handle", lambda msg: None))

    @staticmethod
    def _await(predicate, timeout=5.0):
        import time
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return False

    def test_timeout_fires_and_clears_pending(self):
        import threading
        with self._cluster() as cluster:
            a, b = cluster.sites
            self._swallow_queries(b)
            timed_out = threading.Event()
            a.kernel.reactor_call(lambda: a.message_manager.request(
                status_msg(a, b), lambda m: None, timeout=0.05,
                on_timeout=timed_out.set))
            assert timed_out.wait(5.0)
            assert self._await(lambda: a.kernel.reactor_call(
                lambda: (a.message_manager.stats.get(
                             "request_timeouts").count,
                         len(a.message_manager._pending))) == (1, 0))

    def test_late_reply_becomes_orphan(self):
        with self._cluster() as cluster:
            a, b = cluster.sites
            self._swallow_queries(b)
            msg = status_msg(a, b)
            a.kernel.reactor_call(lambda: a.message_manager.request(
                msg, lambda m: None, timeout=0.05))
            assert self._await(lambda: a.kernel.reactor_call(
                lambda: a.message_manager.stats.get(
                    "request_timeouts").count) == 1)
            # now hand-deliver the reply the swallowed query never produced
            late = make_reply(msg, MsgType.STATUS_REPLY,
                              {"load": 0.0, "site_id": b.site_id})
            b.kernel.reactor_call(lambda: b.message_manager.send(late))
            assert self._await(lambda: a.kernel.reactor_call(
                lambda: a.message_manager.stats.get(
                    "orphan_replies").count) == 1)

    def test_on_stop_cancels_pending_handles(self):
        with self._cluster() as cluster:
            a, b = cluster.sites
            self._swallow_queries(b)
            msg = status_msg(a, b)
            a.kernel.reactor_call(lambda: a.message_manager.request(
                msg, lambda m: None, timeout=60.0))
            handle = a.kernel.reactor_call(
                lambda: a.message_manager._pending[msg.seq].timeout_handle)
            assert handle is not None and not handle.cancelled
            a.kernel.reactor_call(a.stop)
            assert handle.cancelled
            assert not a.message_manager._pending


class TestSecurityIntegration:
    def test_sealed_wire_hides_payload(self):
        from repro.common.config import SecurityConfig
        config = SDVMConfig(security=SecurityConfig(enabled=True))
        cluster = SimCluster(nsites=2, config=config)
        seen = []
        original_send = cluster.network.send

        def spy(src, dst, data):
            seen.append(bytes(data))
            return original_send(src, dst, data)

        cluster.network.send = spy
        cluster.sim.run(until=0.2)
        a, b = cluster.sites
        msg = status_msg(a, b)
        msg.payload["secret_marker"] = "VERY-SECRET-TOKEN"
        a.message_manager.send(msg)
        cluster.sim.run(until=0.5)
        assert seen
        assert all(b"VERY-SECRET-TOKEN" not in blob for blob in seen)
