"""Integration tests for cluster membership: sign-on, gossip, id strategies."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, SDVMConfig, SiteConfig
from repro.site.simcluster import SimCluster


def build(nsites, **cluster_kwargs):
    config = SDVMConfig(cluster=ClusterConfig(**cluster_kwargs))
    cluster = SimCluster(nsites=nsites, config=config)
    cluster.sim.run(until=1.0)
    return cluster


class TestSignOn:
    def test_all_sites_get_unique_ids(self):
        cluster = build(6)
        ids = [s.site_id for s in cluster.sites]
        assert -1 not in ids
        assert len(set(ids)) == 6

    def test_bootstrap_site_is_zero(self):
        cluster = build(3)
        assert cluster.sites[0].site_id == 0

    def test_joiners_know_whole_cluster(self):
        cluster = build(5)
        # the last joiner got the full site list in its SIGN_ON_ACK
        last = cluster.sites[-1]
        assert len(last.cluster_manager.sites) == 5

    def test_existing_sites_learn_joiners_via_gossip(self):
        cluster = build(5)
        for site in cluster.sites:
            assert len(site.cluster_manager.sites) == 5

    def test_records_carry_site_properties(self):
        config = SDVMConfig()
        cluster = SimCluster(
            site_configs=[
                SiteConfig(name="alpha", speed=2.0, platform="px"),
                SiteConfig(name="beta", speed=0.5, platform="py"),
            ],
            config=config)
        cluster.sim.run(until=1.0)
        beta_seen_by_alpha = cluster.sites[0].cluster_manager.sites[
            cluster.sites[1].site_id]
        assert beta_seen_by_alpha.name == "beta"
        assert beta_seen_by_alpha.speed == 0.5
        assert beta_seen_by_alpha.platform == "py"


class TestIdStrategies:
    @pytest.mark.parametrize("strategy", ["central", "contingent", "modulo"])
    def test_unique_ids(self, strategy):
        cluster = build(8, id_allocation=strategy)
        ids = [s.site_id for s in cluster.sites]
        assert -1 not in ids
        assert len(set(ids)) == 8

    def test_contingent_block_exhaustion_triggers_refill(self):
        # tiny blocks force ID_BLOCK_REQUEST round trips
        cluster = build(9, id_allocation="contingent", contingent_size=2)
        ids = [s.site_id for s in cluster.sites]
        assert -1 not in ids
        assert len(set(ids)) == 9

    def test_modulo_ids_in_residue_classes(self):
        cluster = build(5, id_allocation="modulo")
        from repro.cluster.id_allocation import MODULO_STRIDE
        for site in cluster.sites[1:]:
            assert site.site_id % MODULO_STRIDE == 0  # all allocated by site 0


class TestDynamicJoin:
    def test_late_join_via_any_site(self, fast_config):
        cluster = SimCluster(nsites=3, config=fast_config)
        cluster.sim.run(until=0.5)
        newcomer = cluster.add_site(via_index=2)
        cluster.sim.run(until=1.0)
        assert newcomer.site_id not in (-1,)
        assert newcomer.running
        # everyone heard about it
        for site in cluster.sites[:3]:
            assert newcomer.site_id in site.cluster_manager.sites


class TestLookups:
    def test_physical_of_dead_site_none(self):
        cluster = build(3)
        manager = cluster.sites[0].cluster_manager
        victim = cluster.sites[2].site_id
        manager.mark_dead(victim, left=False)
        assert manager.physical_of(victim) is None

    def test_effective_site_follows_heirs(self):
        cluster = build(4)
        manager = cluster.sites[0].cluster_manager
        a = cluster.sites[1].site_id
        b = cluster.sites[2].site_id
        c = cluster.sites[3].site_id
        manager.sites[a].alive = False
        manager.sites[a].heir = b
        manager.sites[b].alive = False
        manager.sites[b].heir = c
        assert manager.effective_site(a) == c

    def test_effective_site_cycle_safe(self):
        cluster = build(3)
        manager = cluster.sites[0].cluster_manager
        a = cluster.sites[1].site_id
        b = cluster.sites[2].site_id
        manager.sites[a].alive = False
        manager.sites[a].heir = b
        manager.sites[b].alive = False
        manager.sites[b].heir = a
        assert manager.effective_site(a) in (a, b)  # terminates

    def test_pick_help_target_prefers_queue_depth(self):
        cluster = build(4)
        manager = cluster.sites[0].cluster_manager
        for site in cluster.sites[1:]:
            manager.note_load(site.site_id, 0.0, queue=0.0)
        deep = cluster.sites[2].site_id
        manager.note_load(deep, 1.0, queue=5.0)
        picks = {manager.pick_help_target() for _ in range(10)}
        assert picks == {deep}

    def test_pick_help_target_probes_unknown_before_fresh_busy(self):
        # a fresh record with no known stealable queue is a worse bet than
        # an unprobed peer, so the stale ones get the random probe first
        cluster = build(4)
        manager = cluster.sites[0].cluster_manager
        busy = cluster.sites[2].site_id
        manager.note_load(busy, 50.0)
        others = {cluster.sites[1].site_id, cluster.sites[3].site_id}
        picks = {manager.pick_help_target() for _ in range(20)}
        assert picks <= others and picks

    def test_pick_help_target_prefers_load_when_all_fresh(self):
        cluster = build(4)
        manager = cluster.sites[0].cluster_manager
        for site in cluster.sites[1:]:
            manager.note_load(site.site_id, 0.0, queue=0.0)
        busy = cluster.sites[2].site_id
        manager.note_load(busy, 50.0, queue=0.0)
        picks = {manager.pick_help_target() for _ in range(10)}
        assert picks == {busy}

    def test_pick_help_target_excludes(self):
        cluster = build(2)
        manager = cluster.sites[0].cluster_manager
        other = cluster.sites[1].site_id
        assert manager.pick_help_target(exclude={other}) is None


class TestHeartbeats:
    def test_crash_detected_via_heartbeat_timeout(self):
        config = SDVMConfig(cluster=ClusterConfig(
            heartbeats_enabled=True, heartbeat_interval=0.05,
            heartbeat_timeout=0.2))
        cluster = SimCluster(nsites=3, config=config)
        cluster.sim.run(until=0.5)
        victim = cluster.sites[2]
        victim_id = victim.site_id
        victim.crash()
        cluster.sim.run(until=2.0)
        record = cluster.sites[0].cluster_manager.sites[victim_id]
        assert not record.alive
        assert not record.left  # crash, not orderly departure

    def test_fanout_ring_shift_grants_grace_to_new_watchees(self):
        """Scaling-era regression: with ``heartbeat_fanout`` only the k
        ring predecessors heartbeat to each site.  A death shifts the
        ring, handing nearby watchers a peer they have *never* heard
        from; before the watch-since grace window such a peer was
        declared dead at the very next liveness check, cascading false
        crashes around the ring (observed at 256 sites: one real crash
        snowballed into 69 recoveries)."""
        config = SDVMConfig(cluster=ClusterConfig(
            heartbeats_enabled=True, heartbeat_interval=0.05,
            heartbeat_timeout=0.2, heartbeat_fanout=2))
        cluster = SimCluster(nsites=12, config=config)
        cluster.sim.run(until=0.5)
        watcher = cluster.sites[6].cluster_manager
        # site 5 dies: watcher 6's watch set shifts {5, 4} -> {4, 3}
        cluster.sites[5].crash()
        watcher.mark_dead(5, left=False)
        # simulate a cold pair: 3 has never sent anything to 6
        watcher.sites[3].last_seen = 0.0
        watcher._check_liveness()
        assert watcher.sites[3].alive, (
            "silence predating the watch is not evidence of a crash")
        # silence *since the watch started* must still detect for real
        watcher._watch_since[3] = 0.0
        watcher._check_liveness()
        assert not watcher.sites[3].alive
