"""Tests for the simulated network and its transport cost models."""

from __future__ import annotations

import pytest

from repro.common.config import NetworkConfig
from repro.common.errors import AddressError
from repro.net.simnet import SimNetwork
from repro.net.topology import Topology
from repro.sim.engine import Simulator


def make_net(sim, **kwargs):
    return SimNetwork(sim, NetworkConfig(**kwargs))


class TestDelivery:
    def test_basic_delivery(self, sim):
        net = make_net(sim)
        got = []
        net.attach(0, got.append)
        net.attach(1, got.append)
        assert net.send(0, 1, b"hello")
        sim.run()
        assert got == [b"hello"]

    def test_delivery_delay_includes_size(self, sim):
        net = make_net(sim, latency=1e-3, bandwidth=1e6,
                       transport="ttcp", ttcp_transaction_cost=0.0)
        arrivals = []
        net.attach(0, lambda d: None)
        net.attach(1, lambda d: arrivals.append(sim.now))
        net.send(0, 1, b"x" * 1000)  # 1 ms serialization at 1 MB/s
        sim.run()
        assert arrivals[0] == pytest.approx(2e-3)

    def test_fifo_between_pair(self, sim):
        net = make_net(sim)
        got = []
        net.attach(0, lambda d: None)
        net.attach(1, got.append)
        for i in range(5):
            net.send(0, 1, bytes([i]))
        sim.run()
        assert got == [bytes([i]) for i in range(5)]

    def test_send_to_detached_swallowed(self, sim):
        net = make_net(sim)
        net.attach(0, lambda d: None)
        net.attach(1, lambda d: pytest.fail("should not deliver"))
        net.detach(1)
        assert net.send(0, 1, b"x")  # sender cannot tell
        sim.run()
        assert net.stats.get("dropped_dead_dst").count == 1

    def test_double_attach_rejected(self, sim):
        net = make_net(sim)
        net.attach(0, lambda d: None)
        with pytest.raises(AddressError):
            net.attach(0, lambda d: None)

    def test_negative_address_rejected(self, sim):
        net = make_net(sim)
        with pytest.raises(AddressError):
            net.attach(-1, lambda d: None)


class TestTransportModels:
    def test_tcp_handshake_overhead(self, sim):
        tcp = make_net(sim, transport="tcp", tcp_handshake_cost=1e-3,
                       tcp_connection_reuse=0.0)
        ttcp = make_net(sim, transport="ttcp", ttcp_transaction_cost=0.0)
        assert (tcp.transit_delay(0, 1, 100)
                > ttcp.transit_delay(0, 1, 100))

    def test_connection_reuse_amortizes(self, sim):
        cold = make_net(sim, transport="tcp", tcp_connection_reuse=0.0)
        warm = make_net(sim, transport="tcp", tcp_connection_reuse=0.9)
        assert warm.transit_delay(0, 1, 100) < cold.transit_delay(0, 1, 100)

    def test_udp_loses_messages(self):
        sim = Simulator(seed=1)
        net = make_net(sim, transport="udp", udp_loss_rate=0.5,
                       udp_reorder_rate=0.0)
        got = []
        net.attach(0, lambda d: None)
        net.attach(1, got.append)
        for i in range(200):
            net.send(0, 1, bytes([i % 256]))
        sim.run()
        lost = net.stats.get("udp_lost").count
        assert 60 < lost < 140  # ~50% of 200
        assert len(got) == 200 - lost

    def test_udp_reorders_messages(self):
        sim = Simulator(seed=2)
        net = make_net(sim, transport="udp", udp_loss_rate=0.0,
                       udp_reorder_rate=0.5)
        got = []
        net.attach(0, lambda d: None)
        net.attach(1, got.append)
        for i in range(100):
            net.send(0, 1, bytes([i]))
        sim.run()
        assert len(got) == 100
        assert got != sorted(got)  # out of order
        assert net.stats.get("udp_reordered").count > 20

    def test_tcp_never_loses_or_reorders(self):
        sim = Simulator(seed=3)
        net = make_net(sim, transport="tcp")
        got = []
        net.attach(0, lambda d: None)
        net.attach(1, got.append)
        for i in range(100):
            net.send(0, 1, bytes([i]))
        sim.run()
        assert got == [bytes([i]) for i in range(100)]


class TestTopologyRouting:
    def test_unroutable_returns_false(self, sim):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        net = SimNetwork(sim, NetworkConfig(), topo)
        net.attach(0, lambda d: None)
        net.attach(1, lambda d: None)
        assert not net.send(0, 1, b"x")

    def test_wan_slower_than_lan(self, sim):
        topo = Topology.wan_coupled(2, 2)
        net = SimNetwork(sim, NetworkConfig(), topo)
        assert net.transit_delay(0, 2, 10) > net.transit_delay(0, 1, 10)

    def test_late_joiner_gets_anchored(self, sim):
        topo = Topology.full_mesh(2)
        net = SimNetwork(sim, NetworkConfig(), topo)
        net.attach(0, lambda d: None)
        net.attach(1, lambda d: None)
        got = []
        net.attach(7, got.append)  # address not in original topology
        assert net.send(0, 7, b"hi")
        sim.run()
        assert got == [b"hi"]


class TestEndpoint:
    def test_endpoint_protocol(self, sim):
        net = make_net(sim)
        got = []
        a = net.endpoint(0, lambda d: None)
        net.endpoint(1, got.append)
        assert a.local_address() == "0"
        assert a.send("1", b"via endpoint")
        sim.run()
        assert got == [b"via endpoint"]
        a.close()
        assert not net.is_attached(0)
