"""Tests for the three logical-id allocation strategies (paper §4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ClusterError
from repro.cluster.id_allocation import (
    MODULO_STRIDE,
    CentralAllocator,
    ContingentAllocator,
    ModuloAllocator,
    make_allocator,
)


class TestCentral:
    def test_only_site_zero_allocates(self):
        root = CentralAllocator(local_id=0)
        other = CentralAllocator(local_id=3)
        assert root.can_allocate()
        assert not other.can_allocate()
        with pytest.raises(ClusterError):
            other.allocate()

    def test_monotone_unique(self):
        root = CentralAllocator(local_id=0)
        ids = [root.allocate() for _ in range(100)]
        assert len(set(ids)) == 100
        assert ids == sorted(ids)
        assert 0 not in ids

    def test_note_seen_skips_ahead(self):
        root = CentralAllocator(local_id=0)
        root.note_seen(50)
        assert root.allocate() == 51


class TestContingent:
    def test_root_grants_disjoint_blocks(self):
        root = ContingentAllocator(block_size=8)
        root.init_as_root()
        blocks = [root.grant_block() for _ in range(10)]
        seen = set()
        for low, high in blocks:
            ids = set(range(low, high))
            assert not ids & seen
            seen |= ids

    def test_allocate_from_block(self):
        alloc = ContingentAllocator(block_size=4)
        alloc.receive_block(100, 104)
        ids = [alloc.allocate() for _ in range(4)]
        assert ids == [100, 101, 102, 103]
        assert not alloc.can_allocate()
        with pytest.raises(ClusterError):
            alloc.allocate()

    def test_root_allocates_from_own_block_too(self):
        root = ContingentAllocator(block_size=4)
        root.init_as_root()
        own = [root.allocate() for _ in range(4)]
        low, high = root.grant_block()
        assert not set(own) & set(range(low, high))

    def test_empty_block_rejected(self):
        with pytest.raises(ClusterError):
            ContingentAllocator().receive_block(5, 5)

    def test_non_root_cannot_grant(self):
        with pytest.raises(ClusterError):
            ContingentAllocator().grant_block()

    def test_remaining(self):
        alloc = ContingentAllocator()
        alloc.receive_block(0, 3)
        alloc.allocate()
        assert alloc.remaining == 2


class TestModulo:
    def test_emits_own_residue_class(self):
        alloc = ModuloAllocator(local_id=5)
        ids = [alloc.allocate() for _ in range(10)]
        assert all(i % MODULO_STRIDE == 5 for i in ids)
        assert len(set(ids)) == 10

    def test_high_id_sites_cannot_emit(self):
        alloc = ModuloAllocator(local_id=MODULO_STRIDE + 1)
        assert not alloc.can_allocate()
        with pytest.raises(ClusterError):
            alloc.allocate()

    def test_servers_never_collide(self):
        servers = [ModuloAllocator(local_id=i) for i in range(8)]
        ids = [srv.allocate() for srv in servers for _ in range(20)]
        assert len(set(ids)) == len(ids)

    def test_note_seen_skips_own_class(self):
        alloc = ModuloAllocator(local_id=2)
        alloc.note_seen(2 + 5 * MODULO_STRIDE)
        assert alloc.allocate() == 2 + 6 * MODULO_STRIDE

    def test_note_seen_ignores_other_class(self):
        alloc = ModuloAllocator(local_id=2)
        alloc.note_seen(3 + 5 * MODULO_STRIDE)
        assert alloc.allocate() == 2 + MODULO_STRIDE


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("central", CentralAllocator),
        ("contingent", ContingentAllocator),
        ("modulo", ModuloAllocator),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_allocator(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ClusterError):
            make_allocator("quantum")


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                max_size=50))
def test_modulo_uniqueness_property(sequence):
    """Any interleaving of allocations across servers stays collision-free."""
    servers = {i: ModuloAllocator(local_id=i) for i in range(8)}
    out = [servers[i].allocate() for i in sequence]
    assert len(set(out)) == len(out)
