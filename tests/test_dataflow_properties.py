"""Property-based end-to-end tests: randomly shaped dataflow programs
produce the same answer on any cluster size, under any policy mix.

These are the repository's strongest invariant checks: they exercise frame
creation, result routing, stealing, code distribution, and termination for
program shapes no hand-written test would construct.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import CostModel, SchedulingConfig, SDVMConfig
from repro.core.program import ProgramBuilder
from repro.site.simcluster import SimCluster

FAST = SDVMConfig(
    cost=CostModel(compile_fixed_cost=1e-5),
    scheduling=SchedulingConfig(ready_target=1, keep_local_min=0))


def layered_fanout_program():
    """main -> L1 workers -> L2 workers -> collector.

    Each L1 worker spawns its own L2 children, so frame creation happens on
    whatever site the L1 worker was stolen to — the addresses flow back
    through the collector.
    """
    prog = ProgramBuilder("layers")

    @prog.microthread(creates=("level1", "collect"))
    def main(ctx, n1, n2, work):
        ctx.charge(5)
        collector = ctx.create_frame("collect", nparams=n1)
        for i in range(n1):
            worker = ctx.create_frame("level1", targets=[(collector, i)])
            ctx.send_result(worker, 0, i)
            ctx.send_result(worker, 1, n2)
            ctx.send_result(worker, 2, work)

    @prog.microthread(creates=("level2", "subcollect"))
    def level1(ctx, index, n2, work):
        ctx.charge(work)
        if n2 == 0:
            ctx.send_to_targets(index)
            return
        sub = ctx.create_frame("subcollect", nparams=n2,
                               targets=ctx.targets())
        for j in range(n2):
            child = ctx.create_frame("level2", targets=[(sub, j)])
            ctx.send_result(child, 0, index * 1000 + j)
            ctx.send_result(child, 1, work)

    @prog.microthread
    def level2(ctx, value, work):
        ctx.charge(work)
        ctx.send_to_targets(value)

    @prog.microthread
    def subcollect(ctx, *values):
        ctx.charge(2)
        ctx.send_to_targets(sum(values))

    @prog.microthread
    def collect(ctx, *values):
        ctx.charge(2)
        ctx.exit_program(sum(values))

    return prog.build()


def expected_layers(n1, n2):
    if n2 == 0:
        return sum(range(n1))
    return sum(i * 1000 + j for i in range(n1) for j in range(n2))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n1=st.integers(min_value=1, max_value=8),
    n2=st.integers(min_value=0, max_value=5),
    work=st.integers(min_value=1, max_value=5000),
    nsites=st.integers(min_value=1, max_value=5),
)
def test_layered_program_correct_everywhere(n1, n2, work, nsites):
    cluster = SimCluster(nsites=nsites, config=FAST)
    handle = cluster.submit(layered_fanout_program(),
                            args=(n1, n2, float(work)))
    cluster.run(progress_timeout=120.0)
    assert handle.result == expected_layers(n1, n2)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    local=st.sampled_from(["fifo", "lifo", "priority"]),
    reply=st.sampled_from(["fifo", "lifo"]),
    hints=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_policies_never_change_the_answer(local, reply, hints, seed):
    config = FAST.with_(
        seed=seed,
        scheduling=replace(FAST.scheduling, local_policy=local,
                           help_reply_policy=reply, use_hints=hints))
    cluster = SimCluster(nsites=3, config=config)
    handle = cluster.submit(layered_fanout_program(), args=(6, 3, 500.0))
    cluster.run(progress_timeout=120.0)
    assert handle.result == expected_layers(6, 3)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_determinism_under_fixed_seed(seed):
    """Two identical runs produce identical virtual durations and results."""
    def run_once():
        cluster = SimCluster(nsites=4, config=FAST.with_(seed=seed))
        handle = cluster.submit(layered_fanout_program(),
                                args=(5, 2, 800.0))
        cluster.run(progress_timeout=120.0)
        return handle.result, handle.duration

    first = run_once()
    second = run_once()
    assert first == second
