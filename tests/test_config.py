"""Validation tests for every configuration dataclass."""

from __future__ import annotations

import pytest

from repro.common.config import (
    CheckpointConfig,
    ClusterConfig,
    CostModel,
    NetworkConfig,
    PowerConfig,
    SchedulingConfig,
    SDVMConfig,
    SecurityConfig,
    SiteConfig,
)
from repro.common.errors import ConfigError


class TestCostModel:
    def test_work_seconds(self):
        cost = CostModel(work_unit_time=1e-6)
        assert cost.work_seconds(1_000_000, 1.0) == pytest.approx(1.0)
        assert cost.work_seconds(1_000_000, 2.0) == pytest.approx(0.5)

    def test_zero_speed_rejected(self):
        with pytest.raises(ConfigError):
            CostModel().work_seconds(1.0, 0.0)


class TestNetworkConfig:
    def test_defaults_valid(self):
        NetworkConfig()

    @pytest.mark.parametrize("kwargs", [
        {"latency": -1.0},
        {"bandwidth": 0.0},
        {"udp_loss_rate": 1.0},
        {"udp_loss_rate": -0.1},
        {"transport": "carrier-pigeon"},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            NetworkConfig(**kwargs)


class TestSchedulingConfig:
    @pytest.mark.parametrize("kwargs", [
        {"help_fanout": 0},
        {"ready_target": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SchedulingConfig(**kwargs)


class TestClusterConfig:
    def test_timeout_must_exceed_interval(self):
        with pytest.raises(ConfigError):
            ClusterConfig(heartbeat_interval=1.0, heartbeat_timeout=0.5)

    def test_contingent_size(self):
        with pytest.raises(ConfigError):
            ClusterConfig(contingent_size=0)


class TestSiteConfig:
    def test_service_only_site_allowed(self):
        assert SiteConfig(max_parallel=0).max_parallel == 0

    @pytest.mark.parametrize("kwargs", [
        {"speed": 0.0},
        {"speed": -1.0},
        {"max_parallel": -1},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SiteConfig(**kwargs)


class TestPowerConfig:
    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            PowerConfig(sleep_after=-1.0)
        with pytest.raises(ConfigError):
            PowerConfig(idle_watts=-5.0)


class TestSDVMConfig:
    def test_with_replaces_top_level(self):
        config = SDVMConfig()
        replaced = config.with_(seed=42)
        assert replaced.seed == 42
        assert config.seed == 0  # original untouched
        assert replaced.cost is config.cost

    def test_nested_configs_frozen(self):
        config = SDVMConfig()
        with pytest.raises(AttributeError):
            config.network.latency = 1.0  # type: ignore[misc]


class TestSecurityAndCheckpoint:
    def test_defaults(self):
        assert not SecurityConfig().enabled
        assert not CheckpointConfig().enabled
