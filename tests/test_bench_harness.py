"""Tests for the benchmark harness and the Table-1 calibration."""

from __future__ import annotations

import pytest

from repro.apps.primes import sequential_work_units
from repro.bench.calibration import (
    BASE_TO_SCALE,
    PAPER_OVERHEAD_PERCENT,
    PAPER_SPEEDUPS,
    PAPER_TABLE1,
    calibrated_test_params,
)
from repro.bench.harness import bench_config, render_table, run_primes, speedup_row


class TestCalibration:
    def test_paper_table_complete(self):
        assert set(PAPER_TABLE1) == {(p, w) for p in (100, 200, 500, 1000)
                                     for w in (10, 20)}
        for t1, t4, t8 in PAPER_TABLE1.values():
            assert t1 > t4 > t8 > 0

    def test_paper_speedups_in_published_bands(self):
        for (p, w), (s4, s8) in PAPER_SPEEDUPS.items():
            assert 3.3 < s4 < 3.7, (p, w)
            assert 6.3 < s8 < 7.1, (p, w)

    def test_calibration_reproduces_t1(self):
        """The ideal sequential time under calibrated params equals the
        paper's 1-site seconds exactly."""
        for (p, width), (paper_t1, _t4, _t8) in PAPER_TABLE1.items():
            if p > 200:
                continue  # keep the test fast; same formula throughout
            scale, base = calibrated_test_params(p, width)
            assert base == pytest.approx(BASE_TO_SCALE * scale)
            ideal = sequential_work_units(p, scale=scale, base=base) * 1e-6
            assert ideal == pytest.approx(paper_t1, rel=1e-9)

    def test_overhead_constant(self):
        assert PAPER_OVERHEAD_PERCENT == 3.0


class TestHarness:
    def test_run_primes_verifies(self):
        duration, cluster = run_primes(10, 4, 2, 200.0, 2000.0)
        assert duration > 0
        assert cluster.alive_count() == 2

    def test_run_primes_detects_wrong_result(self, monkeypatch):
        import repro.bench.harness as harness
        monkeypatch.setattr(harness, "first_n_primes",
                            lambda p: ["wrong"])
        from repro.common.errors import SDVMError
        with pytest.raises(SDVMError, match="wrong result"):
            run_primes(10, 4, 1, 200.0, 2000.0)

    def test_speedup_row(self):
        assert speedup_row(10.0, {2: 5.0, 4: 2.5}) == {2: 2.0, 4: 4.0}

    def test_bench_config_overrides(self):
        from repro.common.config import NetworkConfig
        config = bench_config(network=NetworkConfig(latency=1.0))
        assert config.network.latency == 1.0
        assert config.scheduling.ready_target == 1

    def test_render_table_alignment(self):
        table = render_table("Title", ["a", "bb"],
                             [[1, 2.5], ["xyz", "w"]])
        lines = table.splitlines()
        assert lines[0] == "Title"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide
        assert "2.50" in table  # floats formatted
