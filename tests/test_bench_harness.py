"""Tests for the benchmark harness and the Table-1 calibration."""

from __future__ import annotations

import pytest

from repro.apps.primes import sequential_work_units
from repro.bench.calibration import (
    BASE_TO_SCALE,
    PAPER_OVERHEAD_PERCENT,
    PAPER_SPEEDUPS,
    PAPER_TABLE1,
    calibrated_test_params,
)
from repro.bench.harness import (
    BENCH_SCHEMA,
    bench_config,
    bench_doc,
    compare_metrics,
    load_bench_json,
    render_table,
    render_violations,
    run_primes,
    speedup_row,
    write_bench_json,
)


class TestCalibration:
    def test_paper_table_complete(self):
        assert set(PAPER_TABLE1) == {(p, w) for p in (100, 200, 500, 1000)
                                     for w in (10, 20)}
        for t1, t4, t8 in PAPER_TABLE1.values():
            assert t1 > t4 > t8 > 0

    def test_paper_speedups_in_published_bands(self):
        for (p, w), (s4, s8) in PAPER_SPEEDUPS.items():
            assert 3.3 < s4 < 3.7, (p, w)
            assert 6.3 < s8 < 7.1, (p, w)

    def test_calibration_reproduces_t1(self):
        """The ideal sequential time under calibrated params equals the
        paper's 1-site seconds exactly."""
        for (p, width), (paper_t1, _t4, _t8) in PAPER_TABLE1.items():
            if p > 200:
                continue  # keep the test fast; same formula throughout
            scale, base = calibrated_test_params(p, width)
            assert base == pytest.approx(BASE_TO_SCALE * scale)
            ideal = sequential_work_units(p, scale=scale, base=base) * 1e-6
            assert ideal == pytest.approx(paper_t1, rel=1e-9)

    def test_overhead_constant(self):
        assert PAPER_OVERHEAD_PERCENT == 3.0


class TestHarness:
    def test_run_primes_verifies(self):
        duration, cluster = run_primes(10, 4, 2, 200.0, 2000.0)
        assert duration > 0
        assert cluster.alive_count() == 2

    def test_run_primes_detects_wrong_result(self, monkeypatch):
        import repro.bench.harness as harness
        monkeypatch.setattr(harness, "first_n_primes",
                            lambda p: ["wrong"])
        from repro.common.errors import SDVMError
        with pytest.raises(SDVMError, match="wrong result"):
            run_primes(10, 4, 1, 200.0, 2000.0)

    def test_speedup_row(self):
        assert speedup_row(10.0, {2: 5.0, 4: 2.5}) == {2: 2.0, 4: 4.0}

    def test_bench_config_overrides(self):
        from repro.common.config import NetworkConfig
        config = bench_config(network=NetworkConfig(latency=1.0))
        assert config.network.latency == 1.0
        assert config.scheduling.ready_target == 1

    def test_render_table_alignment(self):
        table = render_table("Title", ["a", "bb"],
                             [[1, 2.5], ["xyz", "w"]])
        lines = table.splitlines()
        assert lines[0] == "Title"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide
        assert "2.50" in table  # floats formatted


class TestBenchJson:
    def test_write_and_load_round_trip(self, tmp_path):
        path = write_bench_json(str(tmp_path), "demo",
                                {"b": 2.0, "a": 1.0},
                                tolerances={"a": 0.1},
                                meta={"note": "x"})
        assert path.endswith("BENCH_demo.json")
        doc = load_bench_json(path)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["suite"] == "demo"
        assert list(doc["metrics"]) == ["a", "b"]  # sorted, deterministic
        assert doc["tolerances"] == {"a": 0.1}
        assert doc["meta"] == {"note": "x"}

    def test_load_rejects_wrong_schema(self, tmp_path):
        import json
        from repro.common.errors import SDVMError
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "nope", "metrics": {}}))
        with pytest.raises(SDVMError, match="schema"):
            load_bench_json(str(path))
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        with pytest.raises(SDVMError, match="metrics"):
            load_bench_json(str(path))


class TestCompareMetrics:
    def _baseline(self, metrics, tolerances=None):
        return bench_doc("s", metrics, tolerances)

    def test_within_default_tolerance_passes(self):
        base = self._baseline({"t": 100.0})
        assert compare_metrics({"t": 104.0}, base) == []

    def test_outside_default_tolerance_fails(self):
        base = self._baseline({"t": 100.0})
        violations = compare_metrics({"t": 110.0}, base)
        assert len(violations) == 1
        assert violations[0]["metric"] == "t"
        assert violations[0]["deviation"] == pytest.approx(0.10)

    def test_per_metric_tolerance_overrides_default(self):
        base = self._baseline({"rate": 0.5}, {"rate": 0.5})
        assert compare_metrics({"rate": 0.7}, base) == []
        assert compare_metrics({"rate": 0.1}, base)

    def test_missing_metric_is_a_violation(self):
        violations = compare_metrics({}, self._baseline({"t": 1.0}))
        assert violations[0]["reason"] == "missing from current run"

    def test_extra_current_metrics_ignored(self):
        base = self._baseline({"t": 1.0})
        assert compare_metrics({"t": 1.0, "new_counter": 99.0}, base) == []

    def test_zero_baseline_uses_absolute_bound(self):
        base = self._baseline({"recoveries": 0.0}, {"recoveries": 0.5})
        assert compare_metrics({"recoveries": 0.4}, base) == []
        assert compare_metrics({"recoveries": 1.0}, base)

    def test_render_violations_mentions_metric(self):
        base = self._baseline({"t": 1.0})
        text = render_violations("s", compare_metrics({"t": 2.0}, base))
        assert "bench gate FAILED" in text and "t" in text
        text = render_violations("s", compare_metrics({}, base))
        assert "missing" in text


class TestGateSuitesRegistry:
    def test_suites_registered(self):
        from repro.bench import GATE_SUITES
        assert set(GATE_SUITES) == {"primes_speedup", "overhead_1site",
                                    "scaling"}
        assert all(callable(fn) for fn in GATE_SUITES.values())
