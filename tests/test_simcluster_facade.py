"""Tests for the SimCluster facade itself: handles, scripting, reports."""

from __future__ import annotations

import pytest

from repro.common.config import SiteConfig
from repro.common.errors import SDVMError
from repro.core.program import ProgramBuilder
from repro.net.topology import Topology
from repro.site.simcluster import SimCluster


def trivial(result=1):
    prog = ProgramBuilder("trivial")

    @prog.microthread
    def main(ctx):
        ctx.charge(100)
        ctx.exit_program(None)

    return prog.build()


class TestConstruction:
    def test_zero_sites_rejected(self):
        with pytest.raises(SDVMError):
            SimCluster(nsites=0)

    def test_site_configs_override_nsites(self, fast_config):
        cluster = SimCluster(site_configs=[SiteConfig(), SiteConfig(),
                                           SiteConfig()],
                             config=fast_config)
        assert len(cluster.sites) == 3

    def test_custom_topology(self, fast_config):
        cluster = SimCluster(nsites=4, config=fast_config,
                             topology=Topology.ring(4))
        handle = cluster.submit(trivial())
        cluster.run()
        assert handle.done

    def test_site_lookup(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.sim.run(until=0.2)
        logical = cluster.sites[1].site_id
        assert cluster.site_by_logical(logical) is cluster.sites[1]
        assert cluster.site_by_index(0) is cluster.sites[0]
        with pytest.raises(SDVMError):
            cluster.site_by_logical(12345)


class TestHandles:
    def test_duration_before_done_rejected(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        handle = cluster.submit(trivial())
        with pytest.raises(SDVMError):
            _ = handle.duration

    def test_submit_to_departed_site_rejected(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.sim.run(until=0.2)
        cluster.sites[1].sign_off()
        cluster.sim.run(until=0.5)
        cluster.submit(trivial(), site_index=1)
        with pytest.raises(SDVMError, match="left the cluster"):
            cluster.run()

    def test_run_until_returns_early(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        prog = ProgramBuilder("slow")

        @prog.microthread
        def main(ctx):
            ctx.charge(10_000_000)  # 10 virtual seconds
            ctx.exit_program(0)

        handle = cluster.submit(prog.build())
        cluster.run(until=1.0)
        assert not handle.done
        cluster.run()
        assert handle.done

    def test_failed_program_not_raised_when_disabled(self, fast_config):
        prog = ProgramBuilder("boom")

        @prog.microthread
        def main(ctx):
            raise RuntimeError("nope")

        cluster = SimCluster(nsites=1, config=fast_config)
        handle = cluster.submit(prog.build())
        cluster.run(raise_on_failure=False)
        assert handle.failed
        assert "nope" in handle.failure


class TestReports:
    def test_cpu_report(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.submit(trivial())
        cluster.run()
        report = cluster.cpu_report()
        assert set(report) == {0, 1}
        assert report[0]["busy"] > 0
        assert report[0]["busy"] == pytest.approx(
            report[0]["overhead"] + report[0]["compute"])

    def test_total_stats_merges_everything(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.submit(trivial())
        cluster.run()
        stats = cluster.total_stats()
        assert stats.get("executions").count == 1
        assert stats.get("sent").count > 0

    def test_energy_report_all_sites(self, fast_config):
        cluster = SimCluster(nsites=3, config=fast_config)
        cluster.submit(trivial())
        cluster.run()
        report = cluster.energy_report()
        assert set(report) == {0, 1, 2}
        for entry in report.values():
            assert entry["joules"] >= 0
