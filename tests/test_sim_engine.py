"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestOrdering:
    def test_time_order(self, sim):
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_same_time(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_clock_advances_monotonically(self, sim):
        times = []
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 1.0, 5.0]

    def test_nested_scheduling(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.5, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.schedule(2.0, lambda: order.append("later"))
        sim.run()
        assert order == ["outer", "inner", "later"]


class TestControl:
    def test_run_until(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_run_until_advances_clock_past_empty_queue(self, sim):
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_stop(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [(1, None)] or fired[0] is not None
        assert len(fired) == 1

    def test_max_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is False

    def test_cancel(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.cancel(event)
        sim.run()
        assert fired == [2]

    def test_pending_excludes_cancelled(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(event)
        assert sim.pending == 1

    def test_peek_time_skips_cancelled(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(event)
        assert sim.peek_time() == 2.0


class TestErrors:
    def test_negative_delay(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_reentrant_run_rejected(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()


class TestDeterminism:
    def test_same_seed_same_rng(self):
        a, b = Simulator(seed=3), Simulator(seed=3)
        assert [a.rng.random() for _ in range(5)] == \
               [b.rng.random() for _ in range(5)]

    def test_trace_hook(self, sim):
        seen = []
        sim.trace_hook = lambda event: seen.append(event.time)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert seen == [1.0]


class TestCompaction:
    def test_heavy_cancellation_compacts_and_preserves_survivors(self, sim):
        fired = []
        survivors = []
        doomed = []
        for i in range(500):
            if i % 5 == 0:
                survivors.append((i, sim.schedule(float(i), fired.append, i)))
            else:
                doomed.append(sim.schedule(float(i), fired.append, i))
        for event in doomed:
            event.cancel()
        # the compaction sweep must have culled the dead entries already
        assert len(sim._queue) < 500
        assert sim.pending == len(survivors)
        sim.run()
        assert fired == [i for i, _e in survivors]

    def test_cancel_is_idempotent_for_count(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_is_harmless(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.run(until=1.5)
        event.cancel()  # already popped from the heap
        sim.run()
        assert fired == [1, 2]
        assert sim.pending == 0

    def test_interleaved_cancel_and_schedule_stays_exact(self, sim):
        live = []
        for round_no in range(20):
            events = [sim.schedule(float(round_no) + 1.0, lambda: None)
                      for _ in range(50)]
            for event in events[:40]:
                event.cancel()
            live.extend(events[40:])
        assert sim.pending == len(live)
        count = 0
        while sim.step():
            count += 1
        assert count == len(live)


@settings(max_examples=50)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30))
def test_events_fire_in_nondecreasing_time_property(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)
