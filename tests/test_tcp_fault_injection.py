"""Fault injection for the live TCP transport's reliability layer.

A small TCP proxy (drop/partition on command) plus direct socket abuse
exercise the failure modes the reliable messaging layer exists for:
concurrent writers, peer restarts, partitions, corrupt streams, idle-peer
death, and shutdown leaks.  Every test runs under a hard watchdog so a hung
socket fails CI instead of wedging it.
"""

from __future__ import annotations

import faulthandler
import socket
import threading
import time
from dataclasses import replace
from typing import Callable, List, Optional, Set, Tuple

import pytest

from repro.common.config import LiveTransportConfig, SDVMConfig
from repro.net.tcp import TcpTransport
from repro.serde.framing import frame

#: fast-failure knobs: suspicion after 2 misses, dead letters after 4
FAST = LiveTransportConfig(
    connect_timeout=0.5, retry_budget=4, backoff_initial=0.02,
    backoff_max=0.1, heartbeat_misses=2)

WATCHDOG_SECONDS = 60.0


@pytest.fixture(autouse=True)
def _watchdog():
    """Hard per-test timeout: dump all stacks and kill the process rather
    than letting a stuck recv/accept wedge the tier-1 run."""
    faulthandler.dump_traceback_later(WATCHDOG_SECONDS, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def _parse(addr: str) -> Tuple[str, int]:
    host, _, port = addr.rpartition(":")
    return host, int(port)


def _wait_until(predicate: Callable[[], bool], timeout: float = 10.0,
                message: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(f"timed out waiting for {message}")


class Collector:
    """Thread-safe frame sink with an arrival event."""

    def __init__(self) -> None:
        self.frames: List[bytes] = []
        self._lock = threading.Lock()

    def __call__(self, data: bytes) -> None:
        with self._lock:
            self.frames.append(data)

    def snapshot(self) -> List[bytes]:
        with self._lock:
            return list(self.frames)


class FlakyProxy:
    """TCP proxy whose link can be severed (connections killed, listener
    closed so new connects are refused) and later healed on the same port."""

    def __init__(self, backend_addr: str) -> None:
        self._backend = _parse(backend_addr)
        self._lock = threading.Lock()
        self._conns: Set[socket.socket] = set()
        self._listener: Optional[socket.socket] = None
        self._port = 0
        self._closed = False
        self._open_listener()
        self.address = f"127.0.0.1:{self._port}"

    def _open_listener(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", self._port))
        listener.listen(16)
        self._port = listener.getsockname()[1]
        self._listener = listener
        threading.Thread(target=self._accept_loop, args=(listener,),
                         daemon=True).start()

    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            try:
                backend = socket.create_connection(self._backend, timeout=2.0)
            except OSError:
                conn.close()
                continue
            with self._lock:
                self._conns.update((conn, backend))
            threading.Thread(target=self._pump, args=(conn, backend),
                             daemon=True).start()
            threading.Thread(target=self._pump, args=(backend, conn),
                             daemon=True).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            # sever, don't just close: the twin pump thread is blocked in
            # recv on ``dst`` — a plain close would strand it (and swallow
            # the FIN the far side is waiting for)
            self._sever(src)
            self._sever(dst)

    @staticmethod
    def _sever(sock: socket.socket) -> None:
        # shutdown first: a plain close while a pump/accept thread is
        # blocked in recv/accept leaves the kernel socket alive (no FIN,
        # port still listening), so the cut would go unnoticed
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def partition(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            self._sever(listener)
        with self._lock:
            conns, self._conns = list(self._conns), set()
        for sock in conns:
            self._sever(sock)

    def heal(self) -> None:
        if self._listener is None and not self._closed:
            self._open_listener()

    def close(self) -> None:
        self._closed = True
        self.partition()


# ----------------------------------------------------------------------
# concurrent writers: frames must never interleave on the stream


def test_multithreaded_send_every_frame_decodes_intact():
    """8+ writer threads hammering one peer; the single queue-drain writer
    must serialize frames so every one decodes at the receiver."""
    threads_n, frames_n = 8, 150
    sink = Collector()
    server = TcpTransport(sink, config=FAST)
    # queue limit must exceed threads_n * frames_n: this test asserts zero
    # backpressure drops, it is not a backpressure test
    roomy = replace(FAST, send_queue_limit=threads_n * frames_n + 64)
    client = TcpTransport(lambda d: None, config=roomy)
    expected = {
        f"{tid}:{i}:".encode() + bytes([tid]) * (64 + i % 32)
        for tid in range(threads_n) for i in range(frames_n)
    }
    try:
        dst = server.local_address()

        def hammer(tid: int) -> None:
            for i in range(frames_n):
                payload = (f"{tid}:{i}:".encode()
                           + bytes([tid]) * (64 + i % 32))
                assert client.send(dst, payload)

        workers = [threading.Thread(target=hammer, args=(tid,))
                   for tid in range(threads_n)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=20)
        _wait_until(lambda: len(sink.snapshot()) >= threads_n * frames_n,
                    timeout=30, message="all frames to arrive")
        received = sink.snapshot()
        assert len(received) == threads_n * frames_n
        assert set(received) == expected  # intact, no interleaving
        assert client.stats.get("dead_letters").total == 0
    finally:
        client.close()
        server.close()


# ----------------------------------------------------------------------
# peer restart: stale connections retried, queued backlog flushes


def test_peer_restart_queued_messages_flush_in_order():
    sink1 = Collector()
    server = TcpTransport(sink1, config=FAST)
    host, port = _parse(server.local_address())
    # generous budget so the backlog survives until the peer returns
    patient = LiveTransportConfig(
        connect_timeout=0.5, retry_budget=30, backoff_initial=0.02,
        backoff_max=0.1, heartbeat_misses=3)
    client = TcpTransport(lambda d: None, config=patient)
    dst = f"{host}:{port}"
    server2 = None
    try:
        assert client.send(dst, b"before")
        _wait_until(lambda: sink1.snapshot() == [b"before"],
                    message="first frame")
        server.close()
        # the EOF monitor notices the dead connection; once the listener is
        # gone, connect attempts are refused and the batch piles up queued
        _wait_until(
            lambda: client.stats.get("stale_connections").count >= 1,
            message="stale connection detected")
        batch = [f"during-{i}".encode() for i in range(20)]
        for payload in batch:
            assert client.send(dst, payload)
        sink2 = Collector()
        server2 = TcpTransport(sink2, host=host, port=port, config=FAST)
        _wait_until(lambda: len(sink2.snapshot()) >= len(batch),
                    timeout=20, message="backlog to flush after restart")
        assert sink2.snapshot() == batch  # intact AND in send order
        assert client.stats.get("dead_letters").total == 0
    finally:
        client.close()
        server.close()
        if server2 is not None:
            server2.close()


def test_first_message_after_peer_restart_not_lost():
    """Regression: a stale cached connection used to make the first send
    after a peer restart fail silently; the writer must reconnect."""
    sink1 = Collector()
    server = TcpTransport(sink1, config=FAST)
    host, port = _parse(server.local_address())
    client = TcpTransport(lambda d: None, config=FAST)
    dst = f"{host}:{port}"
    server2 = None
    try:
        assert client.send(dst, b"m1")
        _wait_until(lambda: sink1.snapshot() == [b"m1"], message="m1")
        server.close()
        sink2 = Collector()
        server2 = TcpTransport(sink2, host=host, port=port, config=FAST)
        _wait_until(
            lambda: client.stats.get("stale_connections").count >= 1,
            message="stale connection detected")
        assert client.send(dst, b"m2")
        _wait_until(lambda: sink2.snapshot() == [b"m2"], message="m2")
        assert client.stats.get("dead_letters").total == 0
    finally:
        client.close()
        server.close()
        if server2 is not None:
            server2.close()


# ----------------------------------------------------------------------
# partition: dead letters, peer-down report, recovery after heal


def test_partition_dead_letters_then_recovers_after_heal():
    sink = Collector()
    backend = TcpTransport(sink, config=FAST)
    proxy = FlakyProxy(backend.local_address())
    down: List[str] = []
    client = TcpTransport(lambda d: None, config=FAST)
    client.on_peer_down = down.append
    try:
        assert client.send(proxy.address, b"healthy")
        _wait_until(lambda: sink.snapshot() == [b"healthy"],
                    message="pre-partition frame")
        proxy.partition()
        _wait_until(
            lambda: client.stats.get("stale_connections").count >= 1,
            message="severed connection noticed")
        assert client.send(proxy.address, b"doomed")
        _wait_until(lambda: client.stats.get("dead_letters").total >= 1,
                    message="dead letter accounting")
        assert down == [proxy.address]
        assert client.stats.get("peers_suspected").count == 1
        assert client.stats.get("send_retries").count >= FAST.retry_budget
        proxy.heal()
        assert client.send(proxy.address, b"revived")
        _wait_until(lambda: b"revived" in sink.snapshot(),
                    message="post-heal frame")
        assert client.stats.get("peers_recovered").count == 1
    finally:
        client.close()
        proxy.close()
        backend.close()


# ----------------------------------------------------------------------
# keepalive failure detector: idle peers still get death noticed


def test_heartbeat_suspects_idle_dead_peer():
    config = LiveTransportConfig(
        connect_timeout=0.5, retry_budget=3, backoff_initial=0.02,
        backoff_max=0.05, heartbeat_interval=0.05, heartbeat_misses=2)
    sink = Collector()
    server = TcpTransport(sink, config=FAST)
    down = threading.Event()
    client = TcpTransport(lambda d: None, config=config)
    client.on_peer_down = lambda addr: down.set()
    try:
        assert client.send(server.local_address(), b"hello")
        _wait_until(lambda: sink.snapshot() == [b"hello"], message="hello")
        _wait_until(lambda: client.stats.get("keepalives_sent").count >= 1,
                    message="keepalives flowing")
        assert server.stats.get("corrupt_stream").count == 0
        server.close()
        # no application traffic: only keepalives can notice the death
        assert down.wait(10.0), "failure detector never fired"
        assert client.stats.get("peers_suspected").count >= 1
    finally:
        client.close()
        server.close()


def test_keepalives_filtered_from_receiver():
    config = LiveTransportConfig(
        connect_timeout=0.5, retry_budget=3, backoff_initial=0.02,
        backoff_max=0.05, heartbeat_interval=0.03, heartbeat_misses=2)
    sink = Collector()
    server = TcpTransport(sink, config=FAST)
    client = TcpTransport(lambda d: None, config=config)
    try:
        assert client.send(server.local_address(), b"real")
        _wait_until(
            lambda: server.stats.get("keepalives_received").count >= 3,
            message="keepalives received")
        assert sink.snapshot() == [b"real"]  # pings never reach the app
    finally:
        client.close()
        server.close()


# ----------------------------------------------------------------------
# corrupt stream: reader survives, counts, and drops the connection


def test_corrupt_length_prefix_closes_connection_not_listener():
    sink = Collector()
    server = TcpTransport(sink, config=FAST)
    host, port = _parse(server.local_address())
    evil = socket.create_connection((host, port), timeout=2.0)
    evil.settimeout(5.0)
    try:
        evil.sendall(frame(b"good"))
        _wait_until(lambda: sink.snapshot() == [b"good"], message="good frame")
        evil.sendall(b"\xff\xff\xff\xff garbage beyond any MAX_FRAME_SIZE")
        _wait_until(lambda: server.stats.get("corrupt_stream").count == 1,
                    message="corrupt stream counted")
        assert evil.recv(4096) == b""  # server closed the poisoned stream
        # the listener is fine: a clean client still gets through
        client = TcpTransport(lambda d: None, config=FAST)
        try:
            assert client.send(server.local_address(), b"still-alive")
            _wait_until(lambda: b"still-alive" in sink.snapshot(),
                        message="post-corruption frame")
        finally:
            client.close()
    finally:
        evil.close()
        server.close()


# ----------------------------------------------------------------------
# shutdown: accepted connections are tracked and reaped


def test_close_reaps_accepted_connections():
    sink = Collector()
    server = TcpTransport(sink, config=FAST)
    host, port = _parse(server.local_address())
    inbound = socket.create_connection((host, port), timeout=2.0)
    inbound.settimeout(5.0)
    try:
        inbound.sendall(frame(b"ping"))
        _wait_until(lambda: sink.snapshot() == [b"ping"], message="ping")
        server.close()
        # before tracking, the reader thread lingered in recv and this
        # would block until the watchdog killed the test
        assert inbound.recv(4096) == b""
    finally:
        inbound.close()


def test_send_after_close_fails_fast():
    server = TcpTransport(lambda d: None, config=FAST)
    addr = server.local_address()
    client = TcpTransport(lambda d: None, config=FAST)
    client.close()
    assert client.send(addr, b"x") is False
    server.close()


def test_send_queue_backpressure():
    config = LiveTransportConfig(
        connect_timeout=0.2, retry_budget=30, backoff_initial=0.2,
        backoff_max=0.5, heartbeat_misses=30, send_queue_limit=4)
    client = TcpTransport(lambda d: None, config=config)
    try:
        # unreachable peer: the writer parks in backoff, the queue fills
        accepted = [client.send("127.0.0.1:1", b"x") for _ in range(20)]
        assert not all(accepted)
        assert client.stats.get("queue_full_drops").count >= 1
    finally:
        client.close()


# ----------------------------------------------------------------------
# acceptance: a live two-site cluster notices real socket death


def test_live_cluster_transport_death_reaches_crash_manager():
    from repro.common.config import CostModel
    from repro.runtime.live_cluster import LiveCluster

    config = SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-4),
        live_transport=LiveTransportConfig(
            connect_timeout=0.5, retry_budget=4, backoff_initial=0.02,
            backoff_max=0.1, heartbeat_interval=0.05, heartbeat_misses=2))
    with LiveCluster(nsites=2, config=config, transport="tcp") as cluster:
        survivor, victim = cluster.sites
        victim_id = victim.site_id
        cluster.crash_site(1)
        kernel = survivor.kernel

        def victim_marked_dead() -> bool:
            def check() -> bool:
                record = survivor.cluster_manager.sites.get(victim_id)
                return record is not None and not record.alive
            return kernel.reactor_call(check)

        _wait_until(victim_marked_dead, timeout=20,
                    message="transport suspicion to mark the victim dead")
        stats = kernel.reactor_call(
            lambda: (survivor.cluster_manager.stats.get(
                         "transport_suspicions").count,
                     survivor.crash_manager.stats.get(
                         "crashes_observed").count))
        assert stats[0] >= 1
        assert stats[1] >= 1
        log = "\n".join(survivor.log_lines)
        assert "transport suspects site" in log
        assert "suspecting site" in log  # the crash manager's own line
