"""Tests for the causal DAG, blame attribution, and the bench gate."""

from __future__ import annotations

import pytest

from repro.apps import build_primes_program, first_n_primes
from repro.site.simcluster import SimCluster
from repro.trace.blame import blame_cluster, render_critical_path
from repro.trace.causal import (
    EXEC_TAG,
    MSG_TAG,
    CausalGraph,
    exec_node,
    msg_node,
    node_kind,
)
from repro.trace.tracer import Tracer


@pytest.fixture
def traced_cluster(fast_config):
    cluster = SimCluster(nsites=8, config=fast_config.with_(trace=True))
    handle = cluster.submit(build_primes_program(),
                            args=(30, 6, 400.0, 4000.0))
    cluster.run(progress_timeout=120.0)
    assert handle.result == first_n_primes(30)
    return cluster


class TestNodeIds:
    def test_tags_disjoint(self):
        assert node_kind(msg_node(3, 17)) == "msg"
        assert node_kind(exec_node((5 << 40) | 9)) == "exec"
        assert node_kind(42) is None

    def test_msg_node_unique_per_site_seq(self):
        ids = {msg_node(s, q) for s in range(16) for q in range(100)}
        assert len(ids) == 16 * 100

    def test_exec_node_roundtrip(self):
        packed = (7 << 40) | 123456
        assert exec_node(packed) ^ EXEC_TAG == packed

    def test_msg_and_exec_spaces_never_collide(self):
        assert msg_node(255, (1 << 44) - 1) & EXEC_TAG == 0
        assert exec_node((1 << 62) - 1) & MSG_TAG == 0


class TestCausalGraphUnits:
    """DAG construction from a hand-written event stream."""

    def _tracer(self):
        tr = Tracer()
        # root execution on site 0 -> message to site 1 -> execution there
        f0, f1 = (0 << 40) | 1, (1 << 40) | 1
        tr.emit(0.0, 0, "exec_begin", f0, "root", -1, -1)
        tr.emit(1.0, 0, "exec_end", f0, 100.0)
        tr.emit(1.0, 0, "msg_send", "APPLY_RESULT", 1, 64, 5,
                exec_node(f0), 0)
        tr.emit(1.5, 1, "msg_recv", "APPLY_RESULT", 0, 64, 5)
        tr.emit(2.0, 1, "exec_begin", f1, "child", msg_node(0, 5), 0)
        tr.emit(3.0, 1, "exec_end", f1, 200.0)
        return tr, f0, f1

    def test_nodes_and_edges(self):
        tr, f0, f1 = self._tracer()
        graph = CausalGraph.from_tracer(tr)
        assert len(graph) == 3
        m = graph.nodes[msg_node(0, 5)]
        assert (m.start, m.end, m.dst, m.nbytes) == (1.0, 1.5, 1, 64)
        assert m.cause == exec_node(f0)
        assert graph.children(exec_node(f0)) == [msg_node(0, 5)]
        assert [n.node_id for n in graph.roots()] == [exec_node(f0)]

    def test_chain_is_root_first(self):
        tr, f0, f1 = self._tracer()
        graph = CausalGraph.from_tracer(tr)
        chain = graph.chain(exec_node(f1))
        assert [n.node_id for n in chain] == [
            exec_node(f0), msg_node(0, 5), exec_node(f1)]

    def test_terminal_is_last_completing(self):
        tr, _f0, f1 = self._tracer()
        assert CausalGraph.from_tracer(tr).terminal().node_id == \
            exec_node(f1)

    def test_critical_path_categories(self):
        tr, _f0, f1 = self._tracer()
        graph = CausalGraph.from_tracer(tr)
        segments = graph.critical_path()
        cats = [seg["category"] for seg in segments]
        # compute(f0), transit, sched-wait (1.5 -> 2.0), compute(f1)
        assert cats == ["compute", "message-latency", "sched-wait",
                        "compute"]
        assert segments[0]["end"] == 1.0
        assert segments[2] == {"category": "sched-wait", "start": 1.5,
                               "end": 2.0, "site": 1, "label": "child"}
        # the path is gap-free from root start to terminal end
        assert segments[0]["start"] == 0.0
        assert max(seg["end"] for seg in segments) == 3.0

    def test_recv_before_send_in_stream_still_pairs(self):
        tr = Tracer()
        tr.emit(1.0, 1, "msg_recv", "HELP_REPLY", 0, 32, 9)
        tr.emit(1.0, 0, "msg_send", "HELP_REPLY", 1, 32, 9, -1, -1)
        node = CausalGraph.from_tracer(tr).nodes[msg_node(0, 9)]
        assert node.end == 1.0

    def test_presignon_traffic_skipped(self):
        tr = Tracer()
        tr.emit(0.0, -1, "msg_send", "SIGN_ON", 0, 48, 3, -1, -1)
        tr.emit(0.0, 2, "msg_send", "SIGN_ON", 0, 48, -1, -1, -1)
        assert len(CausalGraph.from_tracer(tr)) == 0

    def test_empty_graph_guards(self):
        graph = CausalGraph.from_events([])
        assert graph.roots() == []
        assert graph.terminal() is None
        assert graph.critical_path() == []
        assert graph.frame_span(1)["segments"] == []
        assert render_critical_path([]).startswith("critical path: empty")

    def test_cycle_guard(self):
        # corrupt stamps forming a 2-cycle must not hang chain()
        tr = Tracer()
        tr.emit(0.0, 0, "msg_local", "IO_OUTPUT", 1, msg_node(0, 2), 0)
        tr.emit(0.1, 0, "msg_local", "IO_OUTPUT", 2, msg_node(0, 1), 0)
        graph = CausalGraph.from_tracer(tr)
        assert len(graph.chain(msg_node(0, 1))) == 2


class TestBlameIntegration:
    def test_per_site_attribution_sums_to_horizon(self, traced_cluster):
        report = blame_cluster(traced_cluster)
        assert report.nsites == 8
        assert report.horizon > 0
        for site_id, shares in report.per_site.items():
            total = sum(shares.values())
            assert total == pytest.approx(report.horizon, rel=0.01), site_id
            assert all(sec >= -1e-12 for sec in shares.values()), site_id

    def test_gap_fully_decomposed(self, traced_cluster):
        """The speedup gap is explained (>= 90%) by the non-compute
        categories — by construction they decompose it exactly."""
        report = blame_cluster(traced_cluster)
        gap = report.nsites - report.measured_speedup
        explained = sum(report.lost_sites().values())
        assert gap > 0
        assert explained == pytest.approx(gap, rel=0.10)

    def test_render_and_as_dict(self, traced_cluster):
        report = blame_cluster(traced_cluster)
        text = report.render()
        for cat in ("compute", "steal-wait", "idle", "per-site"):
            assert cat in text
        doc = report.as_dict()
        assert set(doc["totals"]) == {
            "compute", "protocol", "steal-wait", "code-fetch",
            "checkpoint-pause", "message-latency", "idle"}
        assert doc["per_program"]  # primes ran
        assert doc["critical_path"]

    def test_blame_requires_tracer(self, fast_config):
        from repro.common.errors import SDVMError
        cluster = SimCluster(nsites=1, config=fast_config)
        with pytest.raises(SDVMError, match="trace"):
            blame_cluster(cluster)


class TestCausalDeterminism:
    def _stamp_stream(self, fast_config):
        cluster = SimCluster(nsites=4,
                             config=fast_config.with_(trace=True, seed=3))
        cluster.submit(build_primes_program(), args=(25, 6, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        return [(e.ts, e.site, e.kind, e.fields)
                for e in cluster.tracer.events
                if e.kind in ("msg_send", "msg_local", "exec_begin")]

    def test_stamps_byte_identical_across_runs(self, fast_config):
        assert self._stamp_stream(fast_config) == \
            self._stamp_stream(fast_config)

    def test_tracing_does_not_change_timing(self, fast_config):
        """The fixed-width wire stamp keeps envelope sizes — and hence the
        simulated byte costs — identical whether tracing is on or off."""
        durations = {}
        for trace in (False, True):
            cluster = SimCluster(nsites=4,
                                 config=fast_config.with_(trace=trace))
            handle = cluster.submit(build_primes_program(),
                                    args=(25, 6, 400.0, 4000.0))
            cluster.run(progress_timeout=120.0)
            durations[trace] = handle.duration
        assert durations[False] == durations[True]

    def test_untraced_sites_never_carry_causal_state(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.submit(build_primes_program(), args=(10, 4, 200.0, 2000.0))
        cluster.run(progress_timeout=120.0)
        for site in cluster.sites:
            assert site.cause_node == -1
            assert site.cause_origin == -1


class TestMessageStamp:
    def test_wire_size_independent_of_stamp(self):
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage

        def msg(**kw):
            return SDMessage(type=MsgType.HEARTBEAT, src_site=0,
                             src_manager=ManagerId.CLUSTER, dst_site=1,
                             dst_manager=ManagerId.CLUSTER, seq=12, **kw)

        plain = msg().wire_size()
        stamped = msg(cause_id=exec_node((3 << 40) | 77),
                      origin_site=3).wire_size()
        assert plain == stamped

    def test_stamp_roundtrip(self):
        from repro.common.ids import ManagerId
        from repro.messages import MsgType, SDMessage
        original = SDMessage(
            type=MsgType.APPLY_RESULT, src_site=2,
            src_manager=ManagerId.ATTRACTION_MEMORY, dst_site=5,
            dst_manager=ManagerId.ATTRACTION_MEMORY, seq=9,
            cause_id=msg_node(2, 8), origin_site=7)
        decoded = SDMessage.decode(original.encode())
        assert decoded.cause_id == msg_node(2, 8)
        assert decoded.origin_site == 7
        unstamped = SDMessage.decode(SDMessage(
            type=MsgType.HEARTBEAT, src_site=0,
            src_manager=ManagerId.CLUSTER, dst_site=1,
            dst_manager=ManagerId.CLUSTER).encode())
        assert unstamped.cause_id == -1
        assert unstamped.origin_site == -1


class TestAggregateGuards:
    def test_empty_cluster_report(self):
        from repro.trace.aggregate import aggregate_sites
        report = aggregate_sites([])
        assert report.nsites == 0
        assert "nothing to report" in report.render()
        doc = report.as_dict()
        assert doc["nsites"] == 0
        assert doc["counters"] == {}
