"""Tests for the paper's proposed extensions: accounting (§6) and
power-managed sleep states (§2.2, organic computing).
"""

from __future__ import annotations

import pytest

from repro.accounting import ClusterAccountant, Tariff
from repro.common.config import PowerConfig
from repro.common.errors import ConfigError
from repro.apps import build_primes_program, first_n_primes
from repro.site.simcluster import SimCluster


class TestAccounting:
    def test_tariff_validation(self):
        with pytest.raises(ConfigError):
            Tariff(work_unit_price=-1.0)

    def test_invoice_totals(self, fast_config):
        cluster = SimCluster(nsites=4, config=fast_config)
        handle = cluster.submit(build_primes_program(),
                                args=(30, 6, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(30)
        accountant = ClusterAccountant(Tariff(work_unit_price=1.0,
                                              execution_price=0.0,
                                              byte_price=0.0))
        invoices = accountant.collect(cluster.sites)
        invoice = invoices[handle.pid]
        # total work billed equals the work the processing managers did
        total_work = sum(s.processing_manager.work_done
                         for s in cluster.sites)
        assert invoice.work_units == pytest.approx(total_work)
        assert invoice.total(accountant.tariff) == pytest.approx(total_work)
        # billed across the sites that actually executed
        assert len(invoice.records) >= 2

    def test_two_programs_billed_separately(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        h1 = cluster.submit(build_primes_program(),
                            args=(20, 4, 400.0, 4000.0))
        h2 = cluster.submit(build_primes_program(),
                            args=(10, 4, 400.0, 4000.0), site_index=1,
                            at=0.001)
        cluster.run(progress_timeout=120.0)
        invoices = ClusterAccountant().collect(cluster.sites)
        assert h1.pid in invoices and h2.pid in invoices
        assert invoices[h1.pid].work_units > invoices[h2.pid].work_units

    def test_traffic_apportioned_by_work(self, fast_config):
        cluster = SimCluster(nsites=3, config=fast_config)
        handle = cluster.submit(build_primes_program(),
                                args=(20, 5, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        tariff = Tariff(work_unit_price=0.0, execution_price=0.0,
                        byte_price=1.0)
        invoices = ClusterAccountant(tariff).collect(cluster.sites)
        bytes_sent = sum(s.message_manager.stats.get("bytes_sent").total
                         for s in cluster.sites)
        assert invoices[handle.pid].total(tariff) == pytest.approx(
            bytes_sent)

    def test_report_renders(self, fast_config):
        cluster = SimCluster(nsites=2, config=fast_config)
        cluster.submit(build_primes_program(), args=(15, 4, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        report = cluster.accounting_report()
        assert "primes" in report


class TestPowerManagement:
    def power_config(self, fast_config, **kwargs):
        return fast_config.with_(power=PowerConfig(enabled=True,
                                                   sleep_after=0.2,
                                                   **kwargs))

    def test_idle_sites_fall_asleep(self, fast_config):
        cluster = SimCluster(nsites=3,
                             config=self.power_config(fast_config))
        cluster.sim.run(until=2.0)
        assert all(site.sleeping for site in cluster.sites)
        report = cluster.energy_report()
        assert all(r["sleep_s"] > 0 for r in report.values())

    def test_sleeping_site_wakes_for_work(self, fast_config):
        cluster = SimCluster(nsites=3,
                             config=self.power_config(fast_config))
        cluster.sim.run(until=2.0)
        assert all(site.sleeping for site in cluster.sites)
        handle = cluster.submit(build_primes_program(),
                                args=(30, 8, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(30)
        # the submitting site woke, and at least one peer was woken to help
        wakeups = sum(s.site_manager.stats.get("wakeups").count
                      for s in cluster.sites)
        assert wakeups >= 2

    def test_energy_saved_by_sleeping(self, fast_config):
        """Idle cluster: sleep-enabled burns far less than sleep-disabled."""
        asleep = SimCluster(nsites=2,
                            config=self.power_config(fast_config,
                                                     idle_watts=60.0,
                                                     sleep_watts=5.0))
        asleep.sim.run(until=5.0)
        awake = SimCluster(nsites=2, config=fast_config)
        awake.sim.run(until=5.0)
        joules_asleep = sum(r["joules"]
                            for r in asleep.energy_report().values())
        joules_awake = sum(r["joules"]
                           for r in awake.energy_report().values())
        assert joules_asleep < 0.35 * joules_awake

    def test_sleep_does_not_change_results(self, fast_config):
        cluster = SimCluster(nsites=4,
                             config=self.power_config(fast_config))
        handle = cluster.submit(build_primes_program(),
                                args=(40, 8, 400.0, 4000.0), at=1.0)
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)

    def test_power_config_validation(self):
        with pytest.raises(ConfigError):
            PowerConfig(sleep_after=0.0)
        with pytest.raises(ConfigError):
            PowerConfig(busy_watts=-1.0)
