"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import APPS, _coerce_args, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestApps:
    def test_lists_all(self):
        code, text = run_cli("apps")
        assert code == 0
        for name in APPS:
            assert name in text


class TestCoercion:
    def test_types_follow_defaults(self):
        assert _coerce_args(["7", "2.5"], (1, 1.0, 3)) == (7, 2.5, 3)

    def test_padding_with_defaults(self):
        assert _coerce_args([], (1, 2)) == (1, 2)


class TestRun:
    def test_run_primes(self):
        code, text = run_cli("run", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000")
        assert code == 0
        assert "result: [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]" in text
        assert "virtual time" in text

    def test_run_matmul_default_args(self):
        code, text = run_cli("run", "matmul", "--sites", "2")
        assert code == 0
        assert "executions" in text

    def test_run_with_trace(self):
        code, text = run_cli("run", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000",
                             "--trace")
        assert code == 0
        assert "timeline" in text
        assert "#" in text

    def test_run_with_invoice(self):
        code, text = run_cli("run", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000",
                             "--invoice")
        assert code == 0
        assert "primes" in text
        assert "cost" in text

    def test_run_encrypted(self):
        code, text = run_cli("run", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000",
                             "--encrypt")
        assert code == 0

    def test_unknown_app(self):
        code, text = run_cli("run", "doom")
        assert code == 2
        assert "unknown app" in text


class TestTraceAndStats:
    def test_trace_exports_valid_artifact(self, tmp_path):
        from repro.trace import validate_chrome_trace
        out = tmp_path / "primes.trace.json"
        code, text = run_cli("trace", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000",
                             "--out", str(out))
        assert code == 0
        assert "perfetto" in text
        report = validate_chrome_trace(str(out))
        assert report["slices"] > 0

    def test_run_with_trace_json(self, tmp_path):
        out = tmp_path / "run.trace.json"
        code, text = run_cli("run", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000",
                             "--trace-json", str(out))
        assert code == 0
        assert out.exists()
        assert "trace events" in text

    def test_stats_prints_cluster_report(self):
        code, text = run_cli("stats", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000")
        assert code == 0
        assert "derived metrics" in text
        assert "steal_success_rate" in text
        assert "messages by type" in text

    def test_trace_unknown_app(self):
        code, text = run_cli("trace", "doom")
        assert code == 2
        assert "unknown app" in text


class TestBlameAndCriticalPath:
    def test_blame_report_round_trip(self, tmp_path):
        import json
        dump = tmp_path / "blame.json"
        code, text = run_cli("blame", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000",
                             "--json", str(dump))
        assert code == 0
        assert "time attribution" in text
        assert "speedup: measured" in text
        doc = json.loads(dump.read_text())
        assert doc["nsites"] == 2
        assert "steal-wait" in doc["totals"]

    def test_blame_unknown_app(self):
        code, text = run_cli("blame", "doom")
        assert code == 2
        assert "unknown app" in text

    def test_critical_path_lists_segments(self):
        code, text = run_cli("critical-path", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000")
        assert code == 0
        assert "critical path" in text
        assert "segments:" in text
        assert "compute" in text

    def test_critical_path_summary_only(self):
        code, text = run_cli("critical-path", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000",
                             "--summary")
        assert code == 0
        assert "segments:" not in text

    def test_critical_path_unknown_app(self):
        code, _text = run_cli("critical-path", "doom")
        assert code == 2


class TestBenchGate:
    def _write_baseline(self, directory, metrics, tolerances=None):
        from repro.bench import write_bench_json
        return write_bench_json(str(directory), "fake", metrics,
                                tolerances=tolerances)

    def _patch_fake_suite(self, monkeypatch, metrics):
        import repro.bench
        import repro.bench.suites as suites
        fake = {"fake": lambda: (dict(metrics), {"loose": 0.5})}
        monkeypatch.setattr(suites, "GATE_SUITES", fake)
        monkeypatch.setattr(repro.bench, "GATE_SUITES", fake)

    def test_check_passes_on_matching_baseline(self, tmp_path,
                                               monkeypatch):
        metrics = {"t": 1.0, "loose": 2.0}
        self._patch_fake_suite(monkeypatch, metrics)
        self._write_baseline(tmp_path / "base", metrics, {"loose": 0.5})
        code, text = run_cli("bench", "--check",
                             "--out", str(tmp_path / "results"),
                             "--baselines", str(tmp_path / "base"))
        assert code == 0
        assert "bench gate PASSED" in text
        assert (tmp_path / "results" / "BENCH_fake.json").exists()

    def test_check_fails_on_regression(self, tmp_path, monkeypatch):
        self._patch_fake_suite(monkeypatch, {"t": 2.0, "loose": 2.0})
        self._write_baseline(tmp_path / "base", {"t": 1.0, "loose": 2.0})
        code, text = run_cli("bench", "--check",
                             "--out", str(tmp_path / "results"),
                             "--baselines", str(tmp_path / "base"))
        assert code == 1
        assert "bench gate FAILED" in text
        assert "t " in text or "t\t" in text or " t " in f" {text} "

    def test_check_fails_without_baseline(self, tmp_path, monkeypatch):
        self._patch_fake_suite(monkeypatch, {"t": 1.0})
        code, text = run_cli("bench", "--check",
                             "--out", str(tmp_path / "results"),
                             "--baselines", str(tmp_path / "missing"))
        assert code == 1
        assert "no baseline" in text

    def test_update_baselines_writes_to_baseline_dir(self, tmp_path,
                                                     monkeypatch):
        self._patch_fake_suite(monkeypatch, {"t": 1.0})
        code, _text = run_cli("bench", "--update-baselines",
                              "--out", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "base"))
        assert code == 0
        assert (tmp_path / "base" / "BENCH_fake.json").exists()
        assert not (tmp_path / "results").exists()

    def test_unknown_suite_rejected(self, tmp_path):
        code, text = run_cli("bench", "--suites", "nonesuch",
                             "--out", str(tmp_path))
        assert code == 2
        assert "unknown suite" in text

    def test_suite_meta_lands_in_artifact(self, tmp_path, monkeypatch):
        import json

        import repro.bench
        import repro.bench.suites as suites
        fake = {"fake": lambda: ({"t": 1.0}, {},
                                 {"events_per_sec": 12345.0})}
        monkeypatch.setattr(suites, "GATE_SUITES", fake)
        monkeypatch.setattr(repro.bench, "GATE_SUITES", fake)
        code, _text = run_cli("bench", "--out", str(tmp_path / "results"))
        assert code == 0
        doc = json.loads(
            (tmp_path / "results" / "BENCH_fake.json").read_text())
        assert doc["meta"]["events_per_sec"] == 12345.0
        assert "events_per_sec" not in doc["metrics"]

    def test_real_suites_report_wall_clock_meta(self):
        from repro.bench import GATE_SUITES
        metrics, _tolerances, meta = GATE_SUITES["overhead_1site"]()
        assert meta["wall_seconds"] > 0.0
        assert meta["events_per_sec"] > 0.0
        # informational only: wall figures must never be gated metrics
        assert "events_per_sec" not in metrics
        assert "wall_seconds" not in metrics


class TestProfile:
    def test_profile_primes(self):
        code, text = run_cli("profile", "primes", "--sites", "2",
                             "--args", "20", "6", "--top", "5")
        assert code == 0
        assert "events/sec" in text
        assert "msgs/sec" in text
        assert "cumtime" in text  # pstats table present

    def test_profile_dump_stats(self, tmp_path):
        out_path = tmp_path / "primes.pstats"
        code, text = run_cli("profile", "primes", "--sites", "1",
                             "--args", "20", "6", "--sort", "tottime",
                             "--out-stats", str(out_path))
        assert code == 0
        assert out_path.exists()
        import pstats
        pstats.Stats(str(out_path))  # parseable

    def test_profile_unknown_app(self):
        code, text = run_cli("profile", "nonesuch")
        assert code == 2
        assert "unknown app" in text


class TestTable1:
    def test_unknown_row_rejected(self):
        code, text = run_cli("table1", "--p", "123")
        assert code == 2
        assert "no paper row" in text

    @pytest.mark.slow
    def test_row_p100(self):
        code, text = run_cli("table1", "--p", "100")
        assert code == 0
        assert "measured" in text and "paper" in text


class TestHealthTop:
    def metrics_file(self, tmp_path, name="run.metrics.jsonl"):
        path = tmp_path / name
        code, text = run_cli("run", "primes", "--sites", "2",
                             "--args", "10", "4", "200", "2000",
                             "--metrics-json", str(path))
        assert code == 0
        assert "metric samples" in text
        assert path.exists()
        return str(path)

    def test_run_health_round_trip(self, tmp_path):
        path = self.metrics_file(tmp_path)
        code, text = run_cli("health", path)
        assert code == 0
        assert "health: OK" in text
        assert "queue p50/p90" in text

    def test_top_renders_tables(self, tmp_path):
        path = self.metrics_file(tmp_path)
        code, text = run_cli("top", path, "--key", "busy_frac",
                             "--last", "3")
        assert code == 0
        assert "site  samples" in text
        assert "busy_frac per site" in text

    def test_top_unknown_key(self, tmp_path):
        path = self.metrics_file(tmp_path)
        code, text = run_cli("top", path, "--key", "bogus")
        assert code == 2
        assert "unknown metrics field" in text

    def test_health_missing_file(self, tmp_path):
        code, text = run_cli("health", str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "no metrics file" in text

    def test_health_invalid_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "wrong/9"}\n')
        code, text = run_cli("health", str(path))
        assert code == 2
        assert "invalid metrics file" in text

    def test_health_flags_a_stalled_run(self, tmp_path):
        # hand-craft a document where site 0 goes idle while site 1
        # hoards a backlog: the idle_stall detector must fire -> exit 1
        import json as _json

        from repro.trace import MetricsLog

        log = MetricsLog(interval=0.05, nsites=2)
        header = log.header()
        rows = []
        for tick in range(1, 6):
            t = tick * 0.05
            base = {name: 0 for name in header["fields"]}
            idle = dict(base, t=t, site=0, alive=1)
            busy = dict(base, t=t, site=1, alive=1, queue=12,
                        in_flight=1, busy_frac=1.0)
            rows.extend([idle, busy])
        path = tmp_path / "stalled.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_json.dumps(header) + "\n")
            for row in rows:
                fh.write(_json.dumps(row) + "\n")
        code, text = run_cli("health", str(path))
        assert code == 1
        assert "idle_stall" in text
        assert "ANOMALOUS" in text
