"""Tests for the reliable-core extension (§2.2 public resource computing).

"The SDVM is run on a core of reliable sites (which each act as servers
for a number of unsafe sites) and unsafe sites.  If an unsafe site
crashes, the crash may be intercepted by its server, which redistributes
the work" — unreliable sites never coordinate recovery, keep checkpoints,
or inherit relocated state.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CheckpointConfig,
    ClusterConfig,
    CostModel,
    SchedulingConfig,
    SDVMConfig,
    SiteConfig,
)
from repro.apps import build_primes_program, first_n_primes
from repro.site.simcluster import SimCluster


def mixed_cluster(n_reliable=2, n_unsafe=2, **kwargs):
    config = SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-4),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0),
        cluster=ClusterConfig(heartbeats_enabled=True,
                              heartbeat_interval=0.03,
                              heartbeat_timeout=0.12),
        checkpoint=CheckpointConfig(enabled=True, interval=0.1),
        **kwargs)
    site_configs = (
        [SiteConfig(name=f"core{i}", reliable=True)
         for i in range(n_reliable)]
        + [SiteConfig(name=f"unsafe{i}", reliable=False)
           for i in range(n_unsafe)])
    return SimCluster(site_configs=site_configs, config=config)


class TestReliableCore:
    def test_reliability_propagates_in_records(self):
        cluster = mixed_cluster()
        cluster.sim.run(until=0.5)
        view = cluster.sites[0].cluster_manager.sites
        unsafe_ids = {cluster.sites[2].site_id, cluster.sites[3].site_id}
        for logical, record in view.items():
            assert record.reliable == (logical not in unsafe_ids)

    def test_unsafe_sites_never_coordinate(self):
        cluster = mixed_cluster()
        cluster.sim.run(until=0.5)
        assert cluster.sites[0].crash_manager.is_coordinator()
        for site in cluster.sites[2:]:
            assert not site.crash_manager.is_coordinator()
        # even when every reliable site dies, someone still coordinates
        cluster.sites[0].crash()
        cluster.sites[1].crash()
        cluster.sim.run(until=1.5)
        survivors = [s for s in cluster.sites[2:] if s.running]
        assert any(s.crash_manager.is_coordinator() for s in survivors)

    def test_unsafe_crash_intercepted_by_core(self):
        cluster = mixed_cluster()
        handle = cluster.submit(build_primes_program(),
                                args=(40, 8, 2000.0, 20000.0))
        cluster.crash_site(3, at=0.5)   # an unsafe site dies mid-run
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        core = cluster.sites[0]
        assert core.crash_manager.stats.get("recoveries").count >= 1
        # the dead unsafe site's address space is inherited by the core
        dead_id = cluster.sites[3].site_id
        record = core.cluster_manager.sites[dead_id]
        assert record.heir == core.site_id

    def test_unsafe_sign_off_relocates_to_reliable_heir(self):
        cluster = mixed_cluster()
        handle = cluster.submit(build_primes_program(),
                                args=(40, 8, 800.0, 8000.0))
        cluster.sign_off_site(2, at=0.3)  # unsafe site leaves mid-run
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        leaver_id = cluster.sites[2].site_id
        record = cluster.sites[0].cluster_manager.sites[leaver_id]
        assert record.left
        heir_record = cluster.sites[0].cluster_manager.sites[record.heir]
        assert heir_record.reliable

    def test_unsafe_sites_still_execute_work(self):
        cluster = mixed_cluster()
        handle = cluster.submit(build_primes_program(),
                                args=(60, 10, 800.0, 8000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(60)
        unsafe_execs = sum(
            s.processing_manager.stats.get("executions").count
            for s in cluster.sites[2:])
        assert unsafe_execs > 0
