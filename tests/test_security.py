"""Tests for the cipher, DH exchange, and the security layer."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SecurityError
from repro.security.cipher import (
    NONCE_SIZE,
    derive_key,
    open_sealed,
    seal,
)
from repro.security.dh import DH_GROUP_PRIME, DHKeyPair
from repro.security.layer import SecurityLayer

KEY = derive_key("test-password", "a", "b")
NONCE = bytes(NONCE_SIZE)


class TestCipher:
    def test_roundtrip(self):
        for size in (0, 1, 31, 32, 33, 1000):
            data = bytes(range(256)) * (size // 256 + 1)
            data = data[:size]
            assert open_sealed(KEY, seal(KEY, data, NONCE)) == data

    def test_ciphertext_differs_from_plaintext(self):
        sealed = seal(KEY, b"secret" * 10, NONCE)
        assert b"secret" not in sealed

    def test_tamper_detected(self):
        sealed = bytearray(seal(KEY, b"payload", NONCE))
        sealed[-1] ^= 0x01
        with pytest.raises(SecurityError):
            open_sealed(KEY, bytes(sealed))

    def test_tampered_nonce_detected(self):
        sealed = bytearray(seal(KEY, b"payload", NONCE))
        sealed[0] ^= 0x01
        with pytest.raises(SecurityError):
            open_sealed(KEY, bytes(sealed))

    def test_wrong_key_rejected(self):
        other = derive_key("other-password", "a", "b")
        with pytest.raises(SecurityError):
            open_sealed(other, seal(KEY, b"payload", NONCE))

    def test_truncated_rejected(self):
        with pytest.raises(SecurityError):
            open_sealed(KEY, b"short")

    def test_nonce_changes_ciphertext(self):
        n2 = b"\x01" + bytes(NONCE_SIZE - 1)
        assert seal(KEY, b"same", NONCE) != seal(KEY, b"same", n2)

    def test_key_size_enforced(self):
        with pytest.raises(SecurityError):
            seal(b"short", b"x", NONCE)
        with pytest.raises(SecurityError):
            seal(KEY, b"x", b"badnonce")

    def test_derive_key_deterministic_and_injective_ish(self):
        assert derive_key("a", "b") == derive_key("a", "b")
        # length-prefixing prevents concatenation ambiguity
        assert derive_key("ab", "c") != derive_key("a", "bc")
        assert derive_key(1, 23) != derive_key(12, 3)


@settings(max_examples=50)
@given(st.binary(max_size=500))
def test_cipher_roundtrip_property(data):
    assert open_sealed(KEY, seal(KEY, data, NONCE)) == data


class TestDH:
    def test_shared_secret_agrees(self):
        a = DHKeyPair(random.Random(1))
        b = DHKeyPair(random.Random(2))
        assert a.shared_key(b.public) == b.shared_key(a.public)

    def test_different_pairs_different_keys(self):
        a = DHKeyPair(random.Random(1))
        b = DHKeyPair(random.Random(2))
        c = DHKeyPair(random.Random(3))
        assert a.shared_key(b.public) != a.shared_key(c.public)

    def test_public_in_group(self):
        pair = DHKeyPair(random.Random(4))
        assert 2 <= pair.public <= DH_GROUP_PRIME - 2

    def test_degenerate_peer_rejected(self):
        pair = DHKeyPair(random.Random(5))
        for bad in (0, 1, DH_GROUP_PRIME - 1, DH_GROUP_PRIME):
            with pytest.raises(SecurityError):
                pair.shared_key(bad)

    def test_deterministic_under_seed(self):
        assert (DHKeyPair(random.Random(9)).public
                == DHKeyPair(random.Random(9)).public)


class TestSecurityLayer:
    def make_pair(self, enabled=True):
        return (SecurityLayer("addr-a", enabled, "pw"),
                SecurityLayer("addr-b", enabled, "pw"))

    def test_roundtrip_enabled(self):
        a, b = self.make_pair()
        sender, body = b.unprotect(a.protect("addr-b", b"payload"))
        assert sender == "addr-a"
        assert body == b"payload"

    def test_roundtrip_disabled(self):
        a, b = self.make_pair(enabled=False)
        sender, body = b.unprotect(a.protect("addr-b", b"payload"))
        assert (sender, body) == ("addr-a", b"payload")

    def test_disabled_payload_visible(self):
        a, _b = self.make_pair(enabled=False)
        assert b"payload" in a.protect("addr-b", b"payload")

    def test_enabled_payload_hidden(self):
        a, _b = self.make_pair()
        assert b"payload" not in a.protect("addr-b", b"payload")

    def test_mixed_modes_fail_closed(self):
        a, _ = self.make_pair(enabled=True)
        plain = SecurityLayer("addr-b", False, "pw")
        with pytest.raises(SecurityError):
            plain.unprotect(a.protect("addr-b", b"x"))
        with pytest.raises(SecurityError):
            a.unprotect(plain.protect("addr-a", b"x"))

    def test_wrong_password_rejected(self):
        a = SecurityLayer("addr-a", True, "pw1")
        b = SecurityLayer("addr-b", True, "pw2")
        with pytest.raises(SecurityError):
            b.unprotect(a.protect("addr-b", b"x"))

    def test_nonces_unique_per_message(self):
        a, b = self.make_pair()
        first = a.protect("addr-b", b"same")
        second = a.protect("addr-b", b"same")
        assert first != second
        assert b.unprotect(first)[1] == b.unprotect(second)[1] == b"same"

    def test_session_key_rotation(self):
        a, b = self.make_pair()
        key = derive_key("fresh session key")
        a.install_session_key("addr-b", key)
        b.install_session_key("addr-a", key)
        sender, body = b.unprotect(a.protect("addr-b", b"rotated"))
        assert body == b"rotated"
        assert a.has_session_key("addr-b")

    def test_session_key_mismatch_detected(self):
        a, b = self.make_pair()
        a.install_session_key("addr-b", derive_key("only a rotated"))
        with pytest.raises(SecurityError):
            b.unprotect(a.protect("addr-b", b"x"))

    def test_stats_counted(self):
        a, b = self.make_pair()
        b.unprotect(a.protect("addr-b", b"xyz"))
        assert a.messages_sealed == 1
        assert b.messages_opened == 1
        assert a.bytes_processed == 3


class TestSimulatedCrypto:
    def make_pair(self, simulate=True):
        return (SecurityLayer("addr-a", True, "pw", simulate=simulate),
                SecurityLayer("addr-b", True, "pw", simulate=simulate))

    def test_roundtrip(self):
        a, b = self.make_pair()
        sender, body = b.unprotect(a.protect("addr-b", b"payload"))
        assert (sender, body) == ("addr-a", b"payload")

    def test_envelope_size_identical_to_real_crypto(self):
        # the whole point of simulate mode: byte accounting must be
        # indistinguishable from a real-crypto run
        sim_a, _ = self.make_pair(simulate=True)
        real_a, _ = self.make_pair(simulate=False)
        for size in (0, 1, 33, 1000):
            data = b"x" * size
            assert (len(sim_a.protect("addr-b", data))
                    == len(real_a.protect("addr-b", data)))

    def test_mixed_real_and_simulated_fail_closed(self):
        sim_a, _ = self.make_pair(simulate=True)
        real_b = SecurityLayer("addr-b", True, "pw", simulate=False)
        with pytest.raises(SecurityError):
            real_b.unprotect(sim_a.protect("addr-b", b"x"))
        sim_b = SecurityLayer("addr-b", True, "pw", simulate=True)
        real_a = SecurityLayer("addr-a", True, "pw", simulate=False)
        with pytest.raises(SecurityError):
            sim_b.unprotect(real_a.protect("addr-b", b"x"))

    def test_simulated_dh_draws_same_rng_and_public(self):
        # identical RNG stream + identical public value -> identical wire
        real = DHKeyPair(random.Random(7), simulate=False)
        sim = DHKeyPair(random.Random(7), simulate=True)
        assert real.public == sim.public

    def test_simulated_dh_key_agrees_between_peers(self):
        rng = random.Random(3)
        a = DHKeyPair(rng, simulate=True)
        b = DHKeyPair(rng, simulate=True)
        # simulated "shared" keys are a function of the peer public alone,
        # so each side derives a valid 32-byte key (never used by a cipher)
        assert len(a.shared_key(b.public)) == 32
        assert len(b.shared_key(a.public)) == 32


def _encrypted_cluster_run(simulate: bool):
    from repro.bench.harness import bench_config, run_primes
    from repro.common.config import SecurityConfig
    config = bench_config(security=SecurityConfig(
        enabled=True, simulate_crypto=simulate))
    duration, cluster = run_primes(15, 4, 2, 400.0, 4000.0, config=config)
    stats = cluster.total_stats()
    return duration, stats.get("bytes_sent").total


def test_simulate_crypto_preserves_virtual_results():
    """An encrypted sim run with simulate_crypto on must be bit-identical
    in virtual time and bytes to one doing real crypto."""
    real = _encrypted_cluster_run(simulate=False)
    simulated = _encrypted_cluster_run(simulate=True)
    assert simulated == real
