"""Tests for the cipher, DH exchange, and the security layer."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SecurityError
from repro.security.cipher import (
    NONCE_SIZE,
    derive_key,
    open_sealed,
    seal,
)
from repro.security.dh import DH_GROUP_PRIME, DHKeyPair
from repro.security.layer import SecurityLayer

KEY = derive_key("test-password", "a", "b")
NONCE = bytes(NONCE_SIZE)


class TestCipher:
    def test_roundtrip(self):
        for size in (0, 1, 31, 32, 33, 1000):
            data = bytes(range(256)) * (size // 256 + 1)
            data = data[:size]
            assert open_sealed(KEY, seal(KEY, data, NONCE)) == data

    def test_ciphertext_differs_from_plaintext(self):
        sealed = seal(KEY, b"secret" * 10, NONCE)
        assert b"secret" not in sealed

    def test_tamper_detected(self):
        sealed = bytearray(seal(KEY, b"payload", NONCE))
        sealed[-1] ^= 0x01
        with pytest.raises(SecurityError):
            open_sealed(KEY, bytes(sealed))

    def test_tampered_nonce_detected(self):
        sealed = bytearray(seal(KEY, b"payload", NONCE))
        sealed[0] ^= 0x01
        with pytest.raises(SecurityError):
            open_sealed(KEY, bytes(sealed))

    def test_wrong_key_rejected(self):
        other = derive_key("other-password", "a", "b")
        with pytest.raises(SecurityError):
            open_sealed(other, seal(KEY, b"payload", NONCE))

    def test_truncated_rejected(self):
        with pytest.raises(SecurityError):
            open_sealed(KEY, b"short")

    def test_nonce_changes_ciphertext(self):
        n2 = b"\x01" + bytes(NONCE_SIZE - 1)
        assert seal(KEY, b"same", NONCE) != seal(KEY, b"same", n2)

    def test_key_size_enforced(self):
        with pytest.raises(SecurityError):
            seal(b"short", b"x", NONCE)
        with pytest.raises(SecurityError):
            seal(KEY, b"x", b"badnonce")

    def test_derive_key_deterministic_and_injective_ish(self):
        assert derive_key("a", "b") == derive_key("a", "b")
        # length-prefixing prevents concatenation ambiguity
        assert derive_key("ab", "c") != derive_key("a", "bc")
        assert derive_key(1, 23) != derive_key(12, 3)


@settings(max_examples=50)
@given(st.binary(max_size=500))
def test_cipher_roundtrip_property(data):
    assert open_sealed(KEY, seal(KEY, data, NONCE)) == data


class TestDH:
    def test_shared_secret_agrees(self):
        a = DHKeyPair(random.Random(1))
        b = DHKeyPair(random.Random(2))
        assert a.shared_key(b.public) == b.shared_key(a.public)

    def test_different_pairs_different_keys(self):
        a = DHKeyPair(random.Random(1))
        b = DHKeyPair(random.Random(2))
        c = DHKeyPair(random.Random(3))
        assert a.shared_key(b.public) != a.shared_key(c.public)

    def test_public_in_group(self):
        pair = DHKeyPair(random.Random(4))
        assert 2 <= pair.public <= DH_GROUP_PRIME - 2

    def test_degenerate_peer_rejected(self):
        pair = DHKeyPair(random.Random(5))
        for bad in (0, 1, DH_GROUP_PRIME - 1, DH_GROUP_PRIME):
            with pytest.raises(SecurityError):
                pair.shared_key(bad)

    def test_deterministic_under_seed(self):
        assert (DHKeyPair(random.Random(9)).public
                == DHKeyPair(random.Random(9)).public)


class TestSecurityLayer:
    def make_pair(self, enabled=True):
        return (SecurityLayer("addr-a", enabled, "pw"),
                SecurityLayer("addr-b", enabled, "pw"))

    def test_roundtrip_enabled(self):
        a, b = self.make_pair()
        sender, body = b.unprotect(a.protect("addr-b", b"payload"))
        assert sender == "addr-a"
        assert body == b"payload"

    def test_roundtrip_disabled(self):
        a, b = self.make_pair(enabled=False)
        sender, body = b.unprotect(a.protect("addr-b", b"payload"))
        assert (sender, body) == ("addr-a", b"payload")

    def test_disabled_payload_visible(self):
        a, _b = self.make_pair(enabled=False)
        assert b"payload" in a.protect("addr-b", b"payload")

    def test_enabled_payload_hidden(self):
        a, _b = self.make_pair()
        assert b"payload" not in a.protect("addr-b", b"payload")

    def test_mixed_modes_fail_closed(self):
        a, _ = self.make_pair(enabled=True)
        plain = SecurityLayer("addr-b", False, "pw")
        with pytest.raises(SecurityError):
            plain.unprotect(a.protect("addr-b", b"x"))
        with pytest.raises(SecurityError):
            a.unprotect(plain.protect("addr-a", b"x"))

    def test_wrong_password_rejected(self):
        a = SecurityLayer("addr-a", True, "pw1")
        b = SecurityLayer("addr-b", True, "pw2")
        with pytest.raises(SecurityError):
            b.unprotect(a.protect("addr-b", b"x"))

    def test_nonces_unique_per_message(self):
        a, b = self.make_pair()
        first = a.protect("addr-b", b"same")
        second = a.protect("addr-b", b"same")
        assert first != second
        assert b.unprotect(first)[1] == b.unprotect(second)[1] == b"same"

    def test_session_key_rotation(self):
        a, b = self.make_pair()
        key = derive_key("fresh session key")
        a.install_session_key("addr-b", key)
        b.install_session_key("addr-a", key)
        sender, body = b.unprotect(a.protect("addr-b", b"rotated"))
        assert body == b"rotated"
        assert a.has_session_key("addr-b")

    def test_session_key_mismatch_detected(self):
        a, b = self.make_pair()
        a.install_session_key("addr-b", derive_key("only a rotated"))
        with pytest.raises(SecurityError):
            b.unprotect(a.protect("addr-b", b"x"))

    def test_stats_counted(self):
        a, b = self.make_pair()
        b.unprotect(a.protect("addr-b", b"xyz"))
        assert a.messages_sealed == 1
        assert b.messages_opened == 1
        assert a.bytes_processed == 3
