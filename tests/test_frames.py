"""Tests for microframes — the dataflow firing rules (§3.1–3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import FrameStateError
from repro.common.ids import GlobalAddress
from repro.core.frames import MISSING, FrameState, Microframe


def make(nparams=2, targets=()):
    return Microframe(GlobalAddress(1, 7), thread_id=3, program=9,
                      nparams=nparams, targets=targets)


class TestFiringRule:
    def test_zero_param_frame_born_executable(self):
        frame = make(nparams=0)
        assert frame.state is FrameState.EXECUTABLE
        assert frame.executable

    def test_incomplete_until_last_parameter(self):
        frame = make(nparams=3)
        assert not frame.apply_parameter(0, "a")
        assert not frame.apply_parameter(2, "c")
        assert not frame.executable
        assert frame.apply_parameter(1, "b")
        assert frame.executable
        assert frame.arguments() == ["a", "b", "c"]

    def test_double_fill_rejected(self):
        frame = make()
        frame.apply_parameter(0, 1)
        with pytest.raises(FrameStateError):
            frame.apply_parameter(0, 2)

    def test_out_of_range_slot_rejected(self):
        frame = make(nparams=2)
        with pytest.raises(FrameStateError):
            frame.apply_parameter(2, "x")
        with pytest.raises(FrameStateError):
            frame.apply_parameter(-1, "x")

    def test_arguments_before_complete_rejected(self):
        frame = make()
        frame.apply_parameter(0, 1)
        with pytest.raises(FrameStateError):
            frame.arguments()

    def test_none_is_a_valid_parameter_value(self):
        frame = make(nparams=1)
        assert frame.apply_parameter(0, None)
        assert frame.arguments() == [None]

    def test_consume_lifecycle(self):
        frame = make(nparams=1)
        frame.apply_parameter(0, "v")
        frame.consume()
        assert frame.state is FrameState.CONSUMED
        with pytest.raises(FrameStateError):
            frame.consume()
        with pytest.raises(FrameStateError):
            frame.apply_parameter(0, "again")

    def test_consume_incomplete_rejected(self):
        with pytest.raises(FrameStateError):
            make().consume()

    def test_negative_nparams_rejected(self):
        with pytest.raises(FrameStateError):
            make(nparams=-1)


class TestWire:
    def test_roundtrip_partial(self):
        frame = make(nparams=3, targets=[(GlobalAddress(2, 2), 1)])
        frame.apply_parameter(1, {"nested": [1, 2]})
        frame.priority = 5.0
        frame.critical = True
        clone = Microframe.from_wire(frame.to_wire())
        assert clone.frame_id == frame.frame_id
        assert clone.thread_id == frame.thread_id
        assert clone.program == frame.program
        assert clone.missing_count == 2
        assert clone.params[1] == {"nested": [1, 2]}
        assert clone.params[0] is MISSING
        assert clone.targets == [(GlobalAddress(2, 2), 1)]
        assert clone.priority == 5.0
        assert clone.critical

    def test_roundtrip_survives_codec(self):
        from repro.serde import dumps, loads
        frame = make(nparams=2)
        frame.apply_parameter(0, "x")
        clone = Microframe.from_wire(loads(dumps(frame.to_wire())))
        assert clone.params[0] == "x"
        assert clone.missing_count == 1

    def test_malformed_wire_rejected(self):
        from repro.common.errors import SerializationError
        with pytest.raises(SerializationError):
            Microframe.from_wire({"id": GlobalAddress(0, 1)})


@settings(max_examples=100)
@given(st.integers(min_value=0, max_value=8), st.randoms())
def test_firing_exactly_once_property(nparams, rng):
    """A frame reports executable exactly when its last slot fills,
    regardless of fill order."""
    frame = make(nparams=nparams)
    slots = list(range(nparams))
    rng.shuffle(slots)
    fired = 0
    for slot in slots:
        if frame.apply_parameter(slot, slot):
            fired += 1
    if nparams == 0:
        assert frame.executable
    else:
        assert fired == 1
        assert frame.executable
        assert frame.arguments() == list(range(nparams))
