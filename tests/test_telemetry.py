"""Tests for the in-run telemetry plane: the metrics sampler and the
``sdvm-metrics/1`` schema, the online health detectors, the per-site
flight recorder, wall-clock parity on the live runtime, and the bench
trace-dir retention helper.

The two acceptance scenarios from the chaos side live here too: a
partition plan that stalls a checkpoint wave must trip the wave-stall
detector, and a crash plan must leave a flight-recorder dump holding the
crashed site's final events.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.apps import build_primes_program, first_n_primes
from repro.chaos import FaultPlan, run_plan
from repro.common.config import SDVMConfig, TelemetryConfig
from repro.common.errors import SDVMError
from repro.common.stats import Histogram
from repro.site.simcluster import SimCluster
from repro.trace import (
    DETECTORS,
    FlightRecorder,
    HealthMonitor,
    METRICS_SCHEMA,
    MetricsLog,
    SAMPLE_FIELDS,
    analyze_log,
    render_top,
    validate_metrics,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "chaos_corpus")


def telemetry_config(**overrides):
    base = dict(metrics_enabled=True, metrics_interval=0.05)
    base.update(overrides)
    return TelemetryConfig(**base)


def run_primes_cluster(telemetry, nsites=4, seed=0):
    cluster = SimCluster(
        nsites=nsites,
        config=SDVMConfig(seed=seed, telemetry=telemetry))
    handle = cluster.submit(build_primes_program(),
                            args=(40, 6, 400.0, 4000.0))
    cluster.run()
    assert handle.result == first_n_primes(40)
    return cluster


def sample_row(**overrides):
    """A healthy baseline row; tests override the fields under study."""
    row = {name: 0 for name in SAMPLE_FIELDS}
    row.update(t=0.0, site=0, alive=1, busy_frac=0.5, queue=1,
               in_flight=1, msgs_sent=2, msgs_recv=2, wave_age=0.0)
    row.update(overrides)
    return row


# ---------------------------------------------------------------------------
# the sampler + schema


class TestMetricsSampler:
    def test_sim_run_samples_every_site_every_tick(self):
        cluster = run_primes_cluster(telemetry_config())
        log = cluster.metrics
        assert log.sites() == [0, 1, 2, 3]
        ticks = list(log.ticks())
        assert len(ticks) >= 3
        for t, rows in ticks:
            assert len(rows) == 4
            assert all(row["t"] == t for row in rows)
        validate_metrics(log.header(), log.rows)

    def test_counters_are_interval_deltas_not_cumulative(self):
        cluster = run_primes_cluster(telemetry_config())
        log = cluster.metrics
        # cumulative counters would sum to far more than the run total;
        # deltas reconstruct to at most it (the run ends mid-interval,
        # so the final partial interval is legitimately unsampled)
        for index, site in enumerate(cluster.sites):
            total = site.scheduling_manager.stats.get("steals_in").count
            deltas = [row["steals_in"] for row in log.rows
                      if row["site"] == site.site_id]
            assert all(delta >= 0 for delta in deltas)
            assert sum(deltas) <= total
        assert all(0.0 <= row["busy_frac"] <= 1.0 for row in log.rows)

    def test_metrics_off_builds_no_telemetry_objects(self):
        cluster = run_primes_cluster(TelemetryConfig())
        assert cluster.metrics is None
        assert cluster.health is None
        assert cluster.flight_recorder is None

    def test_metrics_off_runs_are_bit_identical(self):
        from repro.chaos import journal_fingerprint
        prints = []
        for _ in range(2):
            cluster = SimCluster(nsites=4, config=SDVMConfig(trace=True))
            cluster.submit(build_primes_program(),
                           args=(40, 6, 400.0, 4000.0))
            cluster.run()
            prints.append(journal_fingerprint(cluster.tracer))
        assert prints[0] == prints[1]

    def test_flight_recorder_does_not_change_the_journal(self):
        from repro.chaos import journal_fingerprint
        prints = []
        for flight in (False, True):
            cluster = SimCluster(
                nsites=4,
                config=SDVMConfig(trace=True,
                                  telemetry=TelemetryConfig(
                                      flight_recorder=flight)))
            cluster.submit(build_primes_program(),
                           args=(40, 6, 400.0, 4000.0))
            cluster.run()
            prints.append(journal_fingerprint(cluster.tracer))
        assert prints[0] == prints[1]

    def test_jsonl_round_trip(self, tmp_path):
        cluster = run_primes_cluster(telemetry_config())
        path = str(tmp_path / "run.metrics.jsonl")
        count = cluster.metrics.write_jsonl(path)
        reloaded = MetricsLog.load(path)
        assert len(reloaded.rows) == count == len(cluster.metrics.rows)
        assert reloaded.interval == cluster.metrics.interval
        assert reloaded.rows == cluster.metrics.rows
        with open(path, encoding="utf-8") as fh:
            header = json.loads(fh.readline())
        assert header["schema"] == METRICS_SCHEMA
        assert header["fields"] == list(SAMPLE_FIELDS)


class TestMetricsValidation:
    def header(self):
        return MetricsLog(interval=0.05).header()

    def test_rejects_wrong_schema_tag(self):
        header = self.header()
        header["schema"] = "sdvm-metrics/0"
        with pytest.raises(SDVMError, match="schema"):
            validate_metrics(header, [])

    def test_rejects_bad_interval(self):
        header = self.header()
        header["interval"] = 0
        with pytest.raises(SDVMError, match="interval"):
            validate_metrics(header, [])

    def test_rejects_field_list_mismatch(self):
        header = self.header()
        header["fields"] = header["fields"][:-1]
        with pytest.raises(SDVMError, match="field list"):
            validate_metrics(header, [])

    def test_rejects_missing_and_extra_row_keys(self):
        row = sample_row()
        del row["queue"]
        row["bogus"] = 1
        with pytest.raises(SDVMError, match="keys mismatch"):
            validate_metrics(self.header(), [row])

    def test_rejects_non_numeric_and_negative_counts(self):
        with pytest.raises(SDVMError, match="non-numeric"):
            validate_metrics(self.header(), [sample_row(queue="three")])
        with pytest.raises(SDVMError, match="non-negative"):
            validate_metrics(self.header(), [sample_row(queue=-1)])
        with pytest.raises(SDVMError, match="non-negative"):
            validate_metrics(self.header(), [sample_row(steals_in=1.5)])

    def test_rejects_time_going_backwards(self):
        rows = [sample_row(t=0.10), sample_row(t=0.05)]
        with pytest.raises(SDVMError, match="backwards"):
            validate_metrics(self.header(), rows)

    def test_rejects_empty_and_non_jsonl_documents(self):
        with pytest.raises(SDVMError, match="empty"):
            MetricsLog.from_lines([])
        with pytest.raises(SDVMError, match="JSONL"):
            MetricsLog.from_lines(["not json at all\n"])

    def test_render_top_rejects_unknown_key(self):
        log = MetricsLog(interval=0.05)
        log.append(sample_row())
        with pytest.raises(SDVMError, match="unknown metrics field"):
            render_top(log, key="bogus")


# ---------------------------------------------------------------------------
# Histogram.percentile (the generalized-quantile satellite)


class TestHistogramPercentile:
    def test_percentile_is_conservative_upper_bound(self):
        hist = Histogram()
        for value in (0.001,) * 90 + (0.5,) * 10:
            hist.observe(value)
        # the true p50 is 0.001; the reported bound may round up to the
        # bucket edge but never under-reports
        assert hist.percentile(0.50) >= 0.001
        assert hist.percentile(0.50) < 0.5
        # the tail lands in the 0.5 bucket, clamped to the observed max
        assert 0.5 <= hist.percentile(0.99) <= hist.max

    def test_percentile_empty_and_extremes(self):
        hist = Histogram()
        assert hist.percentile(0.5) == 0.0
        hist.observe(3.0)
        assert hist.percentile(0.0) <= hist.percentile(1.0) == 3.0

    def test_percentile_clamps_to_observed_max(self):
        hist = Histogram()
        hist.observe(250.0)  # beyond the last bucket bound (100 s)
        assert hist.percentile(0.5) == 250.0

    def test_p50_p95_delegate_to_percentile(self):
        hist = Histogram()
        for value in (0.01, 0.02, 0.04, 5.0):
            hist.observe(value)
        assert hist.p50 == hist.percentile(0.50)
        assert hist.p95 == hist.percentile(0.95)


# ---------------------------------------------------------------------------
# the detectors, on synthetic rows


class TestHealthDetectors:
    def monitor(self, **overrides):
        defaults = dict(metrics_enabled=True, metrics_interval=0.05,
                        stall_intervals=3, idle_backlog_min=4)
        defaults.update(overrides)
        return HealthMonitor(TelemetryConfig(**defaults))

    def feed(self, monitor, tick_rows, dt=0.05):
        for index, rows in enumerate(tick_rows):
            t = (index + 1) * dt
            for row in rows:
                row["t"] = t
            monitor.observe(t, rows)

    def test_detector_names_are_stable(self):
        assert DETECTORS == ("idle_stall", "steal_storm", "wave_stall",
                             "recovery_wedged", "partition_suspect",
                             "sdc_mismatch")

    def test_idle_stall_fires_once_per_episode(self):
        monitor = self.monitor()
        idle = lambda: sample_row(site=0, queue=0, in_flight=0,  # noqa: E731
                                  busy_frac=0.0)
        busy_peer = lambda: sample_row(site=1, queue=9)  # noqa: E731
        # 5 stalled ticks: fires at the 3rd, not again at the 4th/5th
        self.feed(monitor, [[idle(), busy_peer()] for _ in range(5)])
        firings = [d for d in monitor.detections
                   if d.detector == "idle_stall"]
        assert len(firings) == 1
        assert firings[0].site == 0
        # clears, then stalls again: a second episode fires
        self.feed(monitor, [[sample_row(site=0, queue=2), busy_peer()]])
        self.feed(monitor, [[idle(), busy_peer()] for _ in range(3)])
        assert len([d for d in monitor.detections
                    if d.detector == "idle_stall"]) == 2

    def test_idle_without_cluster_backlog_is_fine(self):
        monitor = self.monitor()
        rows = lambda: [sample_row(site=0, queue=0, in_flight=0,  # noqa: E731
                                   busy_frac=0.0),
                        sample_row(site=1, queue=1)]
        self.feed(monitor, [rows() for _ in range(6)])
        assert monitor.ok

    def test_steal_storm_fires_on_fruitless_starved_begging(self):
        monitor = self.monitor()
        beggar = lambda: sample_row(site=0, queue=0, in_flight=0,  # noqa: E731
                                    busy_frac=0.0, help_sent=6,
                                    steals_in=0)
        hoarder = lambda: sample_row(site=1, queue=20)  # noqa: E731
        self.feed(monitor, [[beggar(), hoarder()] for _ in range(3)])
        assert [d.detector for d in monitor.detections
                if d.site == 0].count("steal_storm") == 1

    def test_busy_begging_is_not_a_storm(self):
        # healthy runs beg constantly while busy — must stay quiet
        monitor = self.monitor()
        beggar = lambda: sample_row(site=0, busy_frac=0.8,  # noqa: E731
                                    help_sent=10, steals_in=0)
        hoarder = lambda: sample_row(site=1, queue=20)  # noqa: E731
        self.feed(monitor, [[beggar(), hoarder()] for _ in range(6)])
        assert monitor.ok

    def test_begging_into_a_workless_cluster_is_not_a_storm(self):
        # the serial tail phase: everyone begs, nobody has work
        monitor = self.monitor()
        beggar = lambda site: sample_row(site=site, queue=0,  # noqa: E731
                                         in_flight=0, busy_frac=0.0,
                                         help_sent=8, steals_in=0)
        self.feed(monitor, [[beggar(0), beggar(1)] for _ in range(6)])
        assert all(d.detector != "steal_storm" for d in monitor.detections)

    def test_wave_stall_fires_and_rearms_after_commit(self):
        monitor = self.monitor(wave_stall_intervals=4)
        threshold = 4 * 0.05
        self.feed(monitor, [[sample_row(site=0, wave_age=threshold + 0.01)]])
        self.feed(monitor, [[sample_row(site=0, wave_age=threshold + 0.06)]])
        assert [d.detector for d in monitor.detections] == ["wave_stall"]
        # the wave commits (age back to 0), then a new wave stalls
        self.feed(monitor, [[sample_row(site=0, wave_age=0.0)]])
        self.feed(monitor, [[sample_row(site=0, wave_age=threshold + 0.01)]])
        assert [d.detector for d in monitor.detections] == ["wave_stall",
                                                            "wave_stall"]

    def test_recovery_wedged_needs_a_long_streak(self):
        monitor = self.monitor(recovery_wedged_intervals=4)
        recovering = lambda: sample_row(site=2, recovering=1)  # noqa: E731
        self.feed(monitor, [[recovering()] for _ in range(3)])
        assert monitor.ok
        self.feed(monitor, [[recovering()]])
        assert [d.detector for d in monitor.detections] == [
            "recovery_wedged"]

    def test_partition_suspect_fires_for_one_sided_traffic(self):
        monitor = self.monitor()
        deaf = lambda: sample_row(site=0, msgs_sent=5, msgs_recv=0)  # noqa: E731
        chatty = lambda: sample_row(site=1, msgs_sent=5, msgs_recv=5)  # noqa: E731
        self.feed(monitor, [[deaf(), chatty()] for _ in range(3)])
        assert [d.detector for d in monitor.detections] == [
            "partition_suspect"]

    def test_detections_emit_health_events_into_the_sink(self):
        events = []
        monitor = HealthMonitor(
            TelemetryConfig(metrics_enabled=True, metrics_interval=0.05,
                            stall_intervals=1, wave_stall_intervals=1),
            emit=lambda *args: events.append(args))
        monitor.observe(0.05, [sample_row(site=3, wave_age=1.0)])
        assert len(events) == 1
        ts, site, kind, detector, _detail = events[0]
        assert (site, kind, detector) == (3, "health", "wave_stall")

    def test_verdict_counts_and_percentiles(self):
        monitor = self.monitor()
        self.feed(monitor, [[sample_row(site=0, queue=q)]
                            for q in (0, 1, 2, 50)])
        verdict = monitor.verdict()
        assert verdict["ok"] and verdict["ticks"] == 4
        assert set(verdict["by_detector"]) == set(DETECTORS)
        assert verdict["queue_p90"] <= 50.0
        assert "OK" in monitor.render()

    def test_analyze_log_uses_the_log_interval(self):
        log = MetricsLog(interval=0.5)
        threshold = TelemetryConfig().wave_stall_intervals * 0.5
        log.append(sample_row(t=0.5, wave_age=threshold - 0.1))
        monitor = analyze_log(log)
        assert monitor.ok  # under the log-interval threshold
        log.append(sample_row(t=1.0, wave_age=threshold + 0.1))
        assert not analyze_log(log).ok


# ---------------------------------------------------------------------------
# the flight recorder


class TestFlightRecorder:
    def test_ring_is_bounded_and_ordered(self):
        recorder = FlightRecorder(ring_depth=4)
        for i in range(10):
            recorder.emit(float(i), 0, "msg_send", 1, 0, "STEAL_REQ", i)
        recent = recorder.recent(0)
        assert len(recent) == 4
        assert [event.ts for event in recent] == [6.0, 7.0, 8.0, 9.0]

    def test_tees_to_inner_tracer(self):
        from repro.trace import Tracer
        inner = Tracer()
        recorder = FlightRecorder(ring_depth=2, inner=inner)
        for i in range(5):
            recorder.emit(float(i), 1, "exec_begin", i, i, 0)
        assert len(recorder.recent(1)) == 2
        assert len(inner) == 5  # the full journal is not ring-bounded

    def test_record_crash_freezes_first_wins(self):
        recorder = FlightRecorder(ring_depth=8)
        recorder.emit(1.0, 2, "exec_begin", 7, 7, 0)
        dump = recorder.record_crash(2, 1.5)
        assert dump["reason"] == "crash" and dump["at"] == 1.5
        assert [e["kind"] for e in dump["events"]] == ["exec_begin"]
        recorder.emit(2.0, 2, "exec_begin", 8, 8, 0)
        assert recorder.record_crash(2, 2.5, "late") is None
        assert recorder.dumps[2]["at"] == 1.5  # evidence not overwritten

    def test_dump_all_skips_already_frozen_sites(self):
        recorder = FlightRecorder()
        recorder.emit(0.1, 0, "msg_send", 1, 0, "X", 1)
        recorder.emit(0.2, 1, "msg_send", 1, 0, "X", 1)
        recorder.record_crash(0, 0.15)
        assert recorder.dump_all(0.3, "invariant_violation") == 1
        assert recorder.dumps[0]["reason"] == "crash"
        assert recorder.dumps[1]["reason"] == "invariant_violation"

    def test_write_dumps_to_disk(self, tmp_path):
        recorder = FlightRecorder()
        recorder.emit(0.1, 3, "msg_send", 1, 0, "X", 1)
        recorder.record_crash(3, 0.2)
        paths = recorder.write(str(tmp_path))
        assert [os.path.basename(p) for p in paths] == [
            "flight_site3.json"]
        with open(paths[0], encoding="utf-8") as fh:
            assert json.load(fh)["site"] == 3

    def test_flight_only_mode_keeps_rings_without_full_tracing(self):
        config = SDVMConfig(  # trace stays off
            telemetry=TelemetryConfig(flight_recorder=True,
                                      flight_ring_depth=32))
        cluster = SimCluster(nsites=2, config=config)
        cluster.submit(build_primes_program(), args=(20, 4, 400.0, 4000.0))
        cluster.run()
        assert cluster.tracer is None
        recorder = cluster.flight_recorder
        assert recorder is not None and recorder.sites()
        assert all(len(recorder.recent(site)) <= 32
                   for site in recorder.sites())


# ---------------------------------------------------------------------------
# the chaos acceptance scenarios


class TestChaosTelemetry:
    def test_wave_stall_plan_trips_the_detector(self):
        plan = FaultPlan.load(os.path.join(CORPUS_DIR, "wave_stall.json"))
        result = run_plan(plan, telemetry=TelemetryConfig(
            metrics_enabled=True, metrics_interval=0.02,
            flight_recorder=True))
        assert result.ok  # the partition heals; the run itself is clean
        health = result.cluster.health
        stalls = [d for d in health.detections
                  if d.detector == "wave_stall"]
        assert stalls, f"no wave_stall among {health.detections}"
        # the stall is seen while the partition holds the wave open
        assert all(plan.faults[0].start < d.t for d in stalls)
        assert not health.ok

    def test_crash_plan_leaves_a_flight_dump(self):
        plan = FaultPlan.load(
            os.path.join(CORPUS_DIR, "crash_during_wave.json"))
        result = run_plan(plan)  # chaos_config arms the recorder
        assert result.ok
        recorder = result.cluster.flight_recorder
        crashed = plan.faults[0].site
        dump = recorder.dumps.get(crashed)
        assert dump is not None and dump["reason"] == "crash"
        assert dump["at"] == pytest.approx(plan.faults[0].at, abs=1e-6)
        assert dump["events"], "ring was empty at crash time"
        # the evidence is the lead-up, never post-mortem noise
        assert all(event["ts"] <= dump["at"] for event in dump["events"])
        # sites that did not crash are not frozen
        assert set(recorder.dumps) == {crashed}

    def test_invariant_violation_freezes_every_ring(self):
        from repro.chaos.invariants import InvariantChecker
        config = SDVMConfig(
            telemetry=TelemetryConfig(flight_recorder=True))
        cluster = SimCluster(nsites=2, config=config)
        handle = cluster.submit(build_primes_program(),
                                args=(20, 4, 400.0, 4000.0))
        cluster.run()
        assert handle.result == first_n_primes(20)
        # lie about the expected result to force a violation
        checker = InvariantChecker(cluster, expect_complete=True,
                                   expected_results=[["wrong"]])
        violations = checker.check()
        assert violations
        assert cluster.flight_recorder.dumps
        assert all(d["reason"] == "invariant_violation"
                   for d in cluster.flight_recorder.dumps.values())


# ---------------------------------------------------------------------------
# live runtime parity


class TestLiveTelemetry:
    def test_live_kernel_wall_clock_metrics(self):
        from repro.runtime.live_cluster import LiveCluster
        from tests.test_live_runtime import fanout_program
        config = SDVMConfig(
            telemetry=TelemetryConfig(metrics_enabled=True,
                                      metrics_interval=0.01,
                                      flight_recorder=True))
        with LiveCluster(nsites=2, config=config) as cluster:
            assert cluster.run(fanout_program(), args=(6,)) == sum(
                i * i for i in range(6))
            wall = cluster.wall_clock_metrics()
            assert wall["wall_seconds"] > 0
            assert wall["events_executed"] > 0
            assert wall["events_per_sec"] > 0
            import time
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and not cluster.metrics.rows:
                time.sleep(0.02)
            rows = list(cluster.metrics.rows)
            assert rows, "live sampler thread produced no rows"
            validate_metrics(cluster.metrics.header(), rows)
        # shutdown joins the sampler thread
        assert not cluster._sampler_thread.is_alive()


# ---------------------------------------------------------------------------
# bench trace-dir retention


class TestTraceDirRetention:
    def make_run(self, dirpath, stem, mtime):
        for suffix in (".trace.json", ".stats.txt"):
            path = os.path.join(dirpath, stem + suffix)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("{}")
            os.utime(path, (mtime, mtime))

    def test_prunes_oldest_run_groups_whole(self, tmp_path):
        from repro.bench.harness import _prune_trace_dir
        for index in range(5):
            self.make_run(str(tmp_path), f"run{index}", 1000.0 + index)
        removed = _prune_trace_dir(str(tmp_path), keep=2)
        assert sorted(os.path.basename(p) for p in removed) == [
            "run0.stats.txt", "run0.trace.json",
            "run1.stats.txt", "run1.trace.json",
            "run2.stats.txt", "run2.trace.json"]
        survivors = sorted(os.listdir(str(tmp_path)))
        assert survivors == ["run3.stats.txt", "run3.trace.json",
                             "run4.stats.txt", "run4.trace.json"]

    def test_under_limit_and_disabled_are_no_ops(self, tmp_path):
        from repro.bench.harness import _prune_trace_dir
        self.make_run(str(tmp_path), "only", 1000.0)
        assert _prune_trace_dir(str(tmp_path), keep=5) == []
        assert _prune_trace_dir(str(tmp_path), keep=0) == []
        assert _prune_trace_dir(str(tmp_path / "missing"), keep=2) == []
        assert len(os.listdir(str(tmp_path))) == 2
