"""Tests for the program builder / partitioning API."""

from __future__ import annotations

import pytest

from repro.common.errors import ProgramError
from repro.core.program import ProgramBuilder, microthread_source_from_function


def build_two_thread_program():
    prog = ProgramBuilder("demo", description="test program")

    @prog.microthread(work=5, creates=("worker",))
    def main(ctx, n):
        ctx.exit_program(n)

    @prog.microthread(work=3)
    def worker(ctx, a, b, c):
        ctx.send_to_targets(a + b + c)

    return prog.build()


class TestBuilder:
    def test_basic_build(self):
        app = build_two_thread_program()
        assert app.entry == "main"
        assert app.threads["main"].nparams == 1
        assert app.threads["worker"].nparams == 3
        assert app.threads["main"].creates == ("worker",)
        assert app.threads["main"].thread_id != app.threads["worker"].thread_id

    def test_first_registered_is_entry(self):
        app = build_two_thread_program()
        assert app.entry_thread.name == "main"

    def test_explicit_entry_overrides(self):
        prog = ProgramBuilder("p")

        @prog.microthread
        def helper(ctx):
            pass

        @prog.microthread(entry=True)
        def main(ctx):
            pass

        assert prog.build().entry == "main"

    def test_duplicate_name_rejected(self):
        prog = ProgramBuilder("p")
        prog.add_source("t", "def t(ctx):\n    pass\n", nparams=0)
        with pytest.raises(ProgramError):
            prog.add_source("t", "def t(ctx):\n    pass\n", nparams=0)

    def test_two_entries_rejected(self):
        prog = ProgramBuilder("p")
        prog.add_source("a", "def a(ctx):\n    pass\n", nparams=0,
                        entry=True)
        with pytest.raises(ProgramError):
            prog.add_source("b", "def b(ctx):\n    pass\n", nparams=0,
                            entry=True)

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            ProgramBuilder("p").build()

    def test_unknown_creates_rejected(self):
        prog = ProgramBuilder("p")
        prog.add_source("a", "def a(ctx):\n    pass\n", nparams=0,
                        creates=("ghost",))
        with pytest.raises(ProgramError):
            prog.build()

    def test_missing_ctx_parameter_rejected(self):
        prog = ProgramBuilder("p")
        with pytest.raises(ProgramError):
            @prog.microthread
            def bad(x, y):
                pass

    def test_variadic_microthread(self):
        prog = ProgramBuilder("p")

        @prog.microthread
        def main(ctx):
            pass

        @prog.microthread
        def collector(ctx, state, *results):
            pass

        app = prog.build()
        assert app.threads["collector"].nparams == -1

    def test_variadic_entry_rejected(self):
        prog = ProgramBuilder("p")
        with pytest.raises(ProgramError):
            @prog.microthread(entry=True)
            def main(ctx, *args):
                pass

    def test_empty_name_rejected(self):
        with pytest.raises(ProgramError):
            ProgramBuilder("")


class TestProgram:
    def test_thread_table(self):
        app = build_two_thread_program()
        table = app.thread_table()
        assert table["worker"] == (app.threads["worker"].thread_id, 3)

    def test_thread_by_id(self):
        app = build_two_thread_program()
        tid = app.threads["worker"].thread_id
        assert app.thread_by_id(tid).name == "worker"
        with pytest.raises(ProgramError):
            app.thread_by_id(999)

    def test_with_program_id_rebinds_all(self):
        app = build_two_thread_program().with_program_id(77)
        assert all(src.program == 77 for src in app.threads.values())

    def test_metadata_wire(self):
        meta = build_two_thread_program().metadata_wire()
        assert meta["entry"] == "main"
        assert len(meta["threads"]) == 2


class TestSourceExtraction:
    def test_strips_decorators(self):
        prog = ProgramBuilder("p")

        @prog.microthread(work=1)
        def sample(ctx):
            pass

        source = prog.build().threads["sample"].source
        assert source.startswith("def sample(ctx):")
        assert "@" not in source

    def test_source_is_compilable_standalone(self):
        app = build_two_thread_program()
        from repro.core.threads import compile_microthread
        for src in app.threads.values():
            compile_microthread(src, "test-platform")

    def test_lambda_rejected(self):
        with pytest.raises(ProgramError):
            microthread_source_from_function(eval("lambda ctx: None"))
