"""Tests for network topologies and routing latency."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.net.topology import Topology


class TestFactories:
    def test_full_mesh_direct(self):
        topo = Topology.full_mesh(4, latency=1e-3)
        assert topo.path_latency(0, 3) == pytest.approx(1e-3)
        assert topo.hop_count(0, 3) == 1

    def test_switched_lan_two_hops(self):
        topo = Topology.switched_lan(4, latency=1e-3)
        assert topo.path_latency(0, 3) == pytest.approx(2e-3)
        assert topo.hop_count(0, 3) == 2

    def test_star_routes_through_hub(self):
        topo = Topology.star(5, latency=1e-3)
        assert topo.path_latency(1, 4) == pytest.approx(2e-3)
        assert topo.path_latency(0, 4) == pytest.approx(1e-3)

    def test_ring_shortest_way_around(self):
        topo = Topology.ring(6, latency=1.0)
        assert topo.path_latency(0, 1) == pytest.approx(1.0)
        assert topo.path_latency(0, 3) == pytest.approx(3.0)
        assert topo.path_latency(0, 5) == pytest.approx(1.0)

    def test_line_additive(self):
        topo = Topology.line(5, latency=1.0)
        assert topo.path_latency(0, 4) == pytest.approx(4.0)

    def test_wan_coupled_asymmetry(self):
        topo = Topology.wan_coupled(2, 2, lan_latency=1e-4,
                                    wan_latency=1e-2)
        local = topo.path_latency(0, 1)
        remote = topo.path_latency(0, 2)
        assert local == pytest.approx(2e-4)
        assert remote == pytest.approx(2e-4 + 1e-2)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigError):
            Topology.ring(1)
        with pytest.raises(ConfigError):
            Topology.star(0)


class TestMutation:
    def test_self_latency_zero(self):
        topo = Topology.full_mesh(3)
        assert topo.path_latency(1, 1) == 0.0

    def test_unreachable_is_inf(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        assert topo.path_latency(0, 1) == float("inf")

    def test_remove_node_disconnects(self):
        topo = Topology.line(3, latency=1.0)
        topo.remove_node(1)
        assert topo.path_latency(0, 2) == float("inf")

    def test_link_down_and_up(self):
        topo = Topology.full_mesh(3, latency=1.0)
        topo.set_link_state(0, 1, up=False)
        # reroute via node 2
        assert topo.path_latency(0, 1) == pytest.approx(2.0)
        topo.set_link_state(0, 1, up=True)
        assert topo.path_latency(0, 1) == pytest.approx(1.0)

    def test_cache_invalidated_on_new_link(self):
        topo = Topology.line(3, latency=1.0)
        assert topo.path_latency(0, 2) == pytest.approx(2.0)
        topo.add_link(0, 2, 0.5)
        assert topo.path_latency(0, 2) == pytest.approx(0.5)

    def test_negative_latency_rejected(self):
        topo = Topology()
        with pytest.raises(ConfigError):
            topo.add_link(0, 1, -1.0)

    def test_self_link_rejected(self):
        topo = Topology()
        with pytest.raises(ConfigError):
            topo.add_link(0, 0, 1.0)


def test_against_networkx_reference():
    """Cross-check Dijkstra against networkx on a random graph."""
    import networkx as nx
    import random

    rng = random.Random(42)
    topo = Topology()
    graph = nx.Graph()
    nodes = list(range(12))
    for node in nodes:
        topo.add_node(node)
        graph.add_node(node)
    for _ in range(30):
        a, b = rng.sample(nodes, 2)
        w = rng.uniform(0.1, 2.0)
        topo.add_link(a, b, w)
        graph.add_edge(a, b, weight=w)
    for src in nodes:
        lengths = nx.single_source_dijkstra_path_length(graph, src)
        for dst in nodes:
            expected = lengths.get(dst, float("inf"))
            assert topo.path_latency(src, dst) == pytest.approx(expected)
