"""Tests for length-prefixed stream framing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.serde.framing import MAX_FRAME_SIZE, FrameDecoder, frame


class TestFrame:
    def test_simple_roundtrip(self):
        decoder = FrameDecoder()
        assert list(decoder.feed(frame(b"hello"))) == [b"hello"]

    def test_empty_payload(self):
        decoder = FrameDecoder()
        assert list(decoder.feed(frame(b""))) == [b""]

    def test_multiple_frames_one_feed(self):
        decoder = FrameDecoder()
        data = frame(b"a") + frame(b"bb") + frame(b"ccc")
        assert list(decoder.feed(data)) == [b"a", b"bb", b"ccc"]

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        data = frame(b"payload one") + frame(b"payload two")
        out = []
        for i in range(len(data)):
            out.extend(decoder.feed(data[i:i + 1]))
        assert out == [b"payload one", b"payload two"]
        assert decoder.pending_bytes == 0

    def test_partial_then_rest(self):
        decoder = FrameDecoder()
        data = frame(b"split me")
        assert list(decoder.feed(data[:3])) == []
        assert decoder.pending_bytes == 3
        assert list(decoder.feed(data[3:])) == [b"split me"]

    def test_oversize_frame_rejected_on_send(self):
        with pytest.raises(SerializationError):
            frame(b"x" * (MAX_FRAME_SIZE + 1))

    def test_oversize_length_prefix_rejected_on_receive(self):
        decoder = FrameDecoder()
        bad = (MAX_FRAME_SIZE + 1).to_bytes(4, "big")
        with pytest.raises(SerializationError):
            list(decoder.feed(bad))


@settings(max_examples=100)
@given(st.lists(st.binary(max_size=200), max_size=10),
       st.integers(min_value=1, max_value=64))
def test_chunked_reassembly_property(payloads, chunk):
    stream = b"".join(frame(p) for p in payloads)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[i:i + chunk]))
    assert out == payloads
    assert decoder.pending_bytes == 0
