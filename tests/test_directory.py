"""Tests for the consistent-hash sharded attraction-memory directory.

Covers the ShardMap itself (determinism, stability under membership
churn), the DIR_UPDATE protocol (epoch fencing, rebalancing on join and
departure), and the regression the sharded design was built against:
losing the ownership record when the creating site dies.
"""

from __future__ import annotations

import pytest

from repro.common.errors import MemoryFault
from repro.common.ids import GlobalAddress, ManagerId
from repro.memory.directory import ShardMap
from repro.messages import MsgType, SDMessage
from repro.site.simcluster import SimCluster


# ---------------------------------------------------------------------------
# ShardMap unit tests

def _addrs(n, site=0):
    return [GlobalAddress(site, i + 1) for i in range(n)]


class TestShardMap:
    def test_deterministic_and_order_independent(self):
        a = ShardMap([0, 1, 2, 3])
        b = ShardMap([3, 1, 0, 2])
        for addr in _addrs(200):
            assert a.shard_for(addr) == b.shard_for(addr)

    def test_covers_all_members(self):
        smap = ShardMap(range(8))
        hit = {smap.shard_for(addr) for addr in _addrs(2000)}
        assert hit == set(range(8))

    def test_empty_map_has_no_shard(self):
        assert ShardMap().shard_for(GlobalAddress(0, 1)) is None

    def test_join_moves_bounded_fraction(self):
        """Adding one site to 16 must remap roughly 1/17 of the keys,
        not reshuffle the world — the consistent-hashing property."""
        before = ShardMap(range(16))
        addrs = _addrs(3000)
        old = {addr: before.shard_for(addr) for addr in addrs}
        before.add_site(16)
        moved = sum(1 for addr in addrs if before.shard_for(addr) != old[addr])
        assert 0 < moved < len(addrs) * 0.25

    def test_leave_only_remaps_departed_sites_keys(self):
        smap = ShardMap(range(16))
        addrs = _addrs(3000)
        old = {addr: smap.shard_for(addr) for addr in addrs}
        smap.remove_site(5)
        for addr in addrs:
            new = smap.shard_for(addr)
            assert new != 5
            if old[addr] != 5:
                assert new == old[addr]

    def test_add_remove_round_trip_restores_mapping(self):
        smap = ShardMap(range(8))
        addrs = _addrs(500)
        old = {addr: smap.shard_for(addr) for addr in addrs}
        smap.add_site(99)
        smap.remove_site(99)
        assert all(smap.shard_for(addr) == old[addr] for addr in addrs)


# ---------------------------------------------------------------------------
# DIR_UPDATE protocol

@pytest.fixture
def trio(fast_config):
    cluster = SimCluster(nsites=3, config=fast_config)
    cluster.sim.run(until=0.2)
    return cluster, cluster.sites[0], cluster.sites[1], cluster.sites[2]


def _dir_shard(cluster, addr):
    """The site object every member agrees is the directory shard."""
    shard = cluster.sites[0].cluster_manager.dir_site_for(addr)
    return cluster.site_by_logical(shard)


class TestDirUpdate:
    def test_alloc_seeds_directory_shard(self, trio):
        cluster, a, _b, _c = trio
        addr = a.attraction_memory.alloc_object("v")
        cluster.sim.run(until=0.4)
        shard = _dir_shard(cluster, addr)
        assert shard.attraction_memory.dir_owner(addr) == a.site_id

    def test_migration_updates_directory_shard(self, trio):
        cluster, a, b, _c = trio
        addr = a.attraction_memory.alloc_object("v")
        cluster.sim.run(until=0.4)
        got = []
        b.attraction_memory.live_read(addr, lambda v, e=None: got.append(v))
        cluster.sim.run(until=0.8)
        assert got == ["v"]
        assert addr in b.attraction_memory.objects
        assert addr not in a.attraction_memory.objects
        shard = _dir_shard(cluster, addr)
        assert shard.attraction_memory.dir_owner(addr) == b.site_id

    def test_stale_epoch_update_is_dropped(self, trio):
        cluster, a, b, _c = trio
        addr = a.attraction_memory.alloc_object("v")
        cluster.sim.run(until=0.4)
        shard = _dir_shard(cluster, addr)
        shard.epoch = 3  # as if a rollback recovery happened here
        stale = SDMessage(
            type=MsgType.DIR_UPDATE,
            src_site=b.site_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=shard.site_id, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"addr": addr, "owner": b.site_id,
                     "version": 99, "epoch": 2},
        )
        b.message_manager.send(stale)
        cluster.sim.run(until=0.8)
        assert shard.attraction_memory.dir_owner(addr) == a.site_id
        assert shard.attraction_memory.stats.get(
            "stale_dir_updates_dropped").count >= 1

    def test_version_fencing_keeps_newest_owner(self, trio):
        """A reordered DIR_UPDATE from an older hop in the ownership chain
        must not overwrite the newer entry."""
        cluster, a, b, c = trio
        addr = a.attraction_memory.alloc_object("v")
        cluster.sim.run(until=0.4)
        shard = _dir_shard(cluster, addr)
        mem = shard.attraction_memory
        mem._apply_dir_entry(addr, c.site_id, 5, 0)
        mem._apply_dir_entry(addr, b.site_id, 3, 0)  # late, older version
        assert mem.dir_owner(addr) == c.site_id
        mem._apply_dir_entry(addr, b.site_id, 6, 0)
        assert mem.dir_owner(addr) == b.site_id

    def test_departure_rehomes_directory_entries(self, trio):
        """When a site dies, survivors republish ownership so reads keep
        resolving via the re-hashed shard ring."""
        cluster, a, b, c = trio
        addr = a.attraction_memory.alloc_object("v")
        cluster.sim.run(until=0.4)
        # migrate ownership to b via the real message protocol
        got = []
        b.attraction_memory.live_read(addr, lambda v, e=None: got.append(v))
        cluster.sim.run(until=0.8)
        assert got == ["v"]
        a.crash()
        for survivor in (b, c):
            survivor.cluster_manager.mark_dead(a.site_id, left=False)
        cluster.sim.run(until=1.2)
        shard = _dir_shard(cluster, addr)
        assert shard.site_id != a.site_id
        assert shard.attraction_memory.dir_owner(addr) == b.site_id


class TestDeadCreatorRegression:
    """The bug the sharded directory replaces: the per-creator ``home_dir``
    lost ownership updates when the creating site died, so a third site
    could never find a migrated object again."""

    def test_read_survives_creator_crash(self, trio):
        cluster, a, b, c = trio
        addr = a.attraction_memory.alloc_object("survivor")
        cluster.sim.run(until=0.4)
        got = []
        b.attraction_memory.live_read(addr, lambda v, e=None: got.append(v))
        cluster.sim.run(until=0.8)
        assert got == ["survivor"]
        # the creator dies abruptly; the survivors learn of it
        a.crash()
        for survivor in (b, c):
            survivor.cluster_manager.mark_dead(a.site_id, left=False)
        cluster.sim.run(until=1.2)
        # a third site must still be able to locate the object
        result = []
        c.attraction_memory.live_read(
            addr, lambda value, error=None: result.append((value, error)))
        cluster.sim.run(until=3.0)
        assert result and result[0][0] == "survivor", (
            f"read after creator crash failed: {result}")
        assert addr in c.attraction_memory.objects
