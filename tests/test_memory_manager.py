"""Unit tests for the attraction memory: result routing, buffering,
migration accounting, relocation export/adopt, and the live protocol
handlers driven directly through messages.
"""

from __future__ import annotations

import pytest

from repro.common.errors import MemoryFault
from repro.common.ids import GlobalAddress, ManagerId
from repro.core.frames import Microframe
from repro.messages import MsgType, SDMessage
from repro.site.simcluster import SimCluster


@pytest.fixture
def pair(fast_config):
    cluster = SimCluster(nsites=2, config=fast_config)
    cluster.sim.run(until=0.2)
    return cluster, cluster.sites[0], cluster.sites[1]


def dir_shard_of(cluster, addr):
    """The site holding ``addr``'s directory shard entry."""
    shard = cluster.sites[0].cluster_manager.dir_site_for(addr)
    return next(s for s in cluster.sites if s.site_id == shard)


def register_program(site, name="t"):
    """Minimal program so frames have an active program id."""
    from repro.core.program import ProgramBuilder
    prog = ProgramBuilder(name)

    @prog.microthread
    def main(ctx, a, b):
        ctx.exit_program(a + b)

    from repro.common.ids import make_program_id
    pid = make_program_id(site.site_id, 77)
    site.program_manager.register_local(prog.build(), pid)
    return pid, prog.build().threads["main"].thread_id


class TestFramesAndResults:
    def test_zero_param_frame_goes_straight_to_scheduler(self, pair):
        _cluster, a, _b = pair
        pid, tid = register_program(a)
        frame = Microframe(a.attraction_memory.alloc_address(), tid, pid, 0)
        before = len(a.scheduling_manager.executable) + len(
            a.scheduling_manager.ready)
        a.attraction_memory.register_frame(frame)
        after = (len(a.scheduling_manager.executable)
                 + len(a.scheduling_manager.ready)
                 + len(a.scheduling_manager._pending_code))
        assert after > before or a.processing_manager.in_flight > 0

    def test_local_result_completes_frame(self, pair):
        _cluster, a, _b = pair
        pid, tid = register_program(a)
        frame = Microframe(a.attraction_memory.alloc_address(), tid, pid, 2)
        a.attraction_memory.register_frame(frame)
        a.attraction_memory.apply_result(frame.frame_id, 0, 1, pid)
        assert frame.missing_count == 1
        a.attraction_memory.apply_result(frame.frame_id, 1, 2, pid)
        assert frame.executable
        assert frame.frame_id not in a.attraction_memory.frames

    def test_remote_result_travels(self, pair):
        cluster, a, b = pair
        pid, tid = register_program(a)
        cluster.sim.run(until=0.4)  # let b learn the program
        frame = Microframe(a.attraction_memory.alloc_address(), tid, pid, 2)
        a.attraction_memory.register_frame(frame)
        b.attraction_memory.apply_result(frame.frame_id, 0, "x", pid)
        cluster.sim.run(until=0.6)
        assert frame.params[0] == "x"
        assert b.attraction_memory.stats.get("results_sent").count == 1

    def test_early_result_buffered_until_frame_registers(self, pair):
        _cluster, a, _b = pair
        pid, tid = register_program(a)
        addr = a.attraction_memory.alloc_address()
        a.attraction_memory.apply_result(addr, 0, "early", pid)
        assert a.attraction_memory.stats.get("results_buffered").count == 1
        frame = Microframe(addr, tid, pid, 2)
        a.attraction_memory.register_frame(frame)
        assert frame.params[0] == "early"

    def test_result_for_terminated_program_dropped(self, pair):
        _cluster, a, _b = pair
        pid, _tid = register_program(a)
        a.program_manager.get(pid).terminated = True
        addr = a.attraction_memory.alloc_address()
        a.attraction_memory.apply_result(addr, 0, "late", pid)
        assert a.attraction_memory.stats.get(
            "results_dropped_terminated").count == 1

    def test_drop_program_clears_frames_and_buffers(self, pair):
        _cluster, a, _b = pair
        pid, tid = register_program(a)
        frame = Microframe(a.attraction_memory.alloc_address(), tid, pid, 2)
        a.attraction_memory.register_frame(frame)
        a.attraction_memory.apply_result(
            a.attraction_memory.alloc_address(), 0, 1, pid)
        a.attraction_memory.drop_program(pid)
        assert not a.attraction_memory.frames
        assert not a.attraction_memory._pending_results


class TestObjects:
    def test_alloc_and_local_read(self, pair):
        _cluster, a, _b = pair
        addr = a.attraction_memory.alloc_object({"k": 1})
        value, latency = a.attraction_memory.sim_read(addr)
        assert value == {"k": 1}
        assert latency == 0.0

    def test_remote_read_migrates_and_charges_latency(self, pair):
        cluster, a, b = pair
        addr = a.attraction_memory.alloc_object([1, 2, 3])
        value, latency = b.attraction_memory.sim_read(addr)
        assert value == [1, 2, 3]
        assert latency > 0.0
        # ownership moved to b; the directory shard learns of it once the
        # DIR_UPDATE message lands
        assert addr in b.attraction_memory.objects
        assert addr not in a.attraction_memory.objects
        cluster.sim.run(until=0.5)
        assert dir_shard_of(cluster, addr).attraction_memory.dir_owner(
            addr) == b.site_id
        # second read is local
        _value, second = b.attraction_memory.sim_read(addr)
        assert second == 0.0

    def test_unknown_address_faults(self, pair):
        _cluster, a, _b = pair
        with pytest.raises(MemoryFault):
            a.attraction_memory.sim_read(GlobalAddress(0, 987654))

    def test_write_migrates_ownership(self, pair):
        _cluster, a, b = pair
        addr = a.attraction_memory.alloc_object(1)
        latency = b.attraction_memory.sim_write(addr, 2)
        assert latency > 0.0
        assert b.attraction_memory.objects[addr] == 2
        value, _lat = b.attraction_memory.sim_read(addr)
        assert value == 2


class TestLiveProtocolHandlers:
    """Drive the MEM_READ message protocol inside the sim harness."""

    def test_mem_read_serves_and_migrates(self, pair):
        cluster, a, b = pair
        addr = a.attraction_memory.alloc_object("payload")
        got = []
        b.attraction_memory.live_read(addr, lambda v, e=None: got.append((v, e)))
        cluster.sim.run(until=0.5)
        assert got == [("payload", None)]
        # b adopted ownership and published it to the directory shard
        assert addr in b.attraction_memory.objects
        assert dir_shard_of(cluster, addr).attraction_memory.dir_owner(
            addr) == b.site_id

    def test_mem_read_redirect_chain(self, pair):
        cluster, a, b = pair
        addr = a.attraction_memory.alloc_object("wander")
        # move it to b first
        b.attraction_memory.live_read(addr, lambda v, e=None: None)
        cluster.sim.run(until=0.4)
        # now ask a (the homesite, no longer the owner): expect a redirect
        got = []
        a.attraction_memory.live_read(addr, lambda v, e=None: got.append(v))
        cluster.sim.run(until=0.8)
        assert got == ["wander"]

    def test_mem_read_not_found(self, pair):
        cluster, a, b = pair
        got = []
        b.attraction_memory.live_read(
            GlobalAddress(a.site_id, 424242),
            lambda v, e=None: got.append(type(e).__name__ if e else v))
        cluster.sim.run(until=0.5)
        assert got == ["MemoryFault"]

    def test_frame_transfer_message(self, pair):
        cluster, a, b = pair
        pid, tid = register_program(a)
        frame = Microframe(a.attraction_memory.alloc_address(), tid, pid, 2)
        frame.apply_parameter(0, 5)
        msg = SDMessage(
            type=MsgType.FRAME_TRANSFER,
            src_site=a.site_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=b.site_id, dst_manager=ManagerId.ATTRACTION_MEMORY,
            program=pid,
            payload={"frame": frame.to_wire(),
                     "program_info": a.program_manager.get(pid).to_wire()},
        )
        a.message_manager.send(msg)
        cluster.sim.run(until=0.5)
        assert b.attraction_memory.stats.get("frames_adopted").count == 1
        assert b.program_manager.knows(pid)


class TestRelocation:
    def test_export_adopt_roundtrip(self, pair):
        cluster, a, b = pair
        pid, tid = register_program(a)
        frame = Microframe(a.attraction_memory.alloc_address(), tid, pid, 2)
        frame.apply_parameter(1, "kept")
        a.attraction_memory.register_frame(frame)
        obj = a.attraction_memory.alloc_object([9])
        state = a.attraction_memory.export_state()
        # codec-roundtrip the state like the real relocation message does
        from repro.serde import dumps, loads
        state = loads(dumps(state))
        b.attraction_memory.adopt_state(state)
        assert obj in b.attraction_memory.objects
        adopted = b.attraction_memory.frames[frame.frame_id]
        assert adopted.params[1] == "kept"

    def test_export_checkpoint_is_nondraining(self, pair):
        _cluster, a, _b = pair
        pid, tid = register_program(a)
        frame = Microframe(a.attraction_memory.alloc_address(), tid, pid, 2)
        a.attraction_memory.register_frame(frame)
        snapshot = a.attraction_memory.export_checkpoint()
        assert frame.frame_id in a.attraction_memory.frames  # still there
        assert len(snapshot["frames"]) >= 1
