"""Focused tests for the crash manager: checkpoint waves, coordinator
selection, rollback mechanics, and epoch fencing.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CheckpointConfig,
    ClusterConfig,
    CostModel,
    SchedulingConfig,
    SDVMConfig,
)
from repro.apps import build_primes_program, first_n_primes
from repro.site.simcluster import SimCluster


def config(ckpt_interval=0.1, heartbeats=True):
    return SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-4),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0),
        cluster=ClusterConfig(heartbeats_enabled=heartbeats,
                              heartbeat_interval=0.03,
                              heartbeat_timeout=0.12),
        checkpoint=CheckpointConfig(enabled=True, interval=ckpt_interval),
    )


class TestCheckpointWaves:
    def test_coordinator_is_lowest_alive(self):
        cluster = SimCluster(nsites=3, config=config())
        cluster.sim.run(until=0.5)
        assert cluster.sites[0].crash_manager.is_coordinator()
        assert not cluster.sites[1].crash_manager.is_coordinator()
        cluster.sites[0].crash()
        cluster.sim.run(until=1.0)
        assert cluster.sites[1].crash_manager.is_coordinator()

    def test_no_waves_without_programs(self):
        cluster = SimCluster(nsites=2, config=config())
        cluster.sim.run(until=1.0)
        assert cluster.sites[0].crash_manager.committed_wave == -1

    def test_waves_commit_during_program(self):
        cluster = SimCluster(nsites=3, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        coordinator = cluster.sites[0].crash_manager
        assert coordinator.committed_wave >= 1
        # the committed snapshot covers every alive site
        assert len(coordinator.committed) == 3

    def test_sites_resume_after_commit(self):
        cluster = SimCluster(nsites=2, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        assert not any(site.paused for site in cluster.sites)

    def test_checkpoint_overhead_scales_with_interval(self):
        durations = {}
        for interval in (0.05, 1.0):
            cluster = SimCluster(nsites=2, config=config(interval))
            handle = cluster.submit(build_primes_program(),
                                    args=(40, 6, 400.0, 4000.0))
            cluster.run(progress_timeout=120.0)
            durations[interval] = handle.duration
        assert durations[0.05] > durations[1.0]


class TestWaveAbort:
    """Regression: a participant dying between CHECKPOINT_ACK and
    CHECKPOINT_STATE used to wedge the wave forever — ``_states_pending``
    never drained, so no commit arrived and every paused site stayed
    paused.  The coordinator now aborts the in-flight wave and fences the
    stale traffic with the bumped wave id."""

    def _mid_wave_cluster(self):
        """A joined 3-site cluster with a wave stuck in the state phase."""
        cluster = SimCluster(nsites=3, config=config())
        cluster.sim.run(until=0.5)
        coordinator = cluster.sites[0]
        cm = coordinator.crash_manager
        assert cm.is_coordinator()
        cm.start_checkpoint()
        wave = cm._wave
        alive = [r.logical for r in
                 coordinator.cluster_manager.sites.values() if r.alive]
        for logical in alive:
            cm._on_ack(wave, logical)
        assert not cm._acks_pending
        assert cm._states_pending  # snapshot phase still outstanding
        return cluster, cm, wave

    def test_participant_death_aborts_wave_and_resumes(self):
        cluster, cm, wave = self._mid_wave_cluster()
        victim = cluster.sites[2]
        victim_logical = victim.site_id
        victim.crash()
        cluster.sites[0].cluster_manager.mark_dead(victim_logical,
                                                   left=False)
        assert cm.stats.get("waves_aborted").count == 1
        assert not cm._acks_pending and not cm._states_pending
        # a stale CHECKPOINT_STATE from the aborted wave is fenced out
        cm._on_state(wave, victim_logical, {"stale": True})
        assert cm.committed_wave == -1
        assert cm._collected == {}
        # without a committed checkpoint there is no recovery wave, so the
        # abort path itself must unpause the survivors
        cluster.sim.run(until=1.0)
        survivors = [s for s in cluster.sites if s.running]
        assert survivors and all(not s.paused for s in survivors)
        observed = sum(
            s.crash_manager.stats.get("waves_aborted_observed").count
            for s in survivors)
        assert observed == len(survivors)
        # the abort-resume broadcast must not masquerade as a commit
        assert all(s.crash_manager.stats.get("waves_committed").count == 0
                   for s in survivors)

    def test_abort_is_noop_without_inflight_wave(self):
        cluster = SimCluster(nsites=3, config=config())
        cluster.sim.run(until=0.5)
        cm = cluster.sites[0].crash_manager
        assert not cm._abort_wave("nothing in flight")
        assert cm.stats.get("waves_aborted").count == 0

    def test_next_wave_commits_after_abort(self):
        cluster, cm, _wave = self._mid_wave_cluster()
        coordinator = cluster.sites[0]
        victim = cluster.sites[2]
        victim.crash()
        coordinator.cluster_manager.mark_dead(victim.site_id, left=False)
        cm.start_checkpoint()
        wave2 = cm._wave
        alive = [r.logical for r in
                 coordinator.cluster_manager.sites.values() if r.alive]
        assert victim.site_id not in alive
        for logical in alive:
            cm._on_ack(wave2, logical)
        for logical in alive:
            cm._on_state(wave2, logical, {"site": logical})
        assert cm.committed_wave == wave2
        assert set(cm.committed) == set(alive)
        assert cm.stats.get("checkpoints_committed").count == 1


class TestRecovery:
    def test_epoch_increments_on_recovery(self):
        cluster = SimCluster(nsites=3, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 800.0, 8000.0))
        cluster.crash_site(2, at=0.5)
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        assert cluster.sites[0].epoch >= 1

    def test_multiple_crashes_survived(self):
        cluster = SimCluster(nsites=4, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 2000.0, 20000.0))
        cluster.crash_site(3, at=0.5)
        cluster.crash_site(2, at=1.1)
        cluster.run(progress_timeout=180.0)
        assert handle.result == first_n_primes(40)
        assert cluster.sites[0].crash_manager.stats.get(
            "recoveries").count >= 2

    def test_crash_of_non_coordinator_site_detected_by_all(self):
        cluster = SimCluster(nsites=3, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 800.0, 8000.0))
        victim_index = 1

        def victim_logical():
            return cluster.sites[victim_index].site_id

        cluster.sim.run(until=0.4)
        logical = victim_logical()
        cluster.sites[victim_index].crash()
        cluster.run(progress_timeout=180.0)
        assert handle.result == first_n_primes(40)
        survivors = [cluster.sites[0], cluster.sites[2]]
        for site in survivors:
            assert not site.cluster_manager.sites[logical].alive

    def test_result_exact_despite_rollback_reexecution(self):
        """Rollback re-executes work (at-least-once); the dataflow model
        still yields the exact prime list, not duplicates."""
        cluster = SimCluster(nsites=4, config=config(ckpt_interval=0.2))
        handle = cluster.submit(build_primes_program(),
                                args=(60, 8, 400.0, 4000.0))
        cluster.crash_site(3, at=1.0)
        cluster.run(progress_timeout=180.0)
        result = handle.result
        assert result == first_n_primes(60)
        assert len(result) == len(set(result))


class TestHardening:
    """Regressions for the crash-recovery hardening sweep (found and
    pinned down by the chaos fuzzer; the corpus plans in
    ``tests/chaos_corpus/`` replay the same bugs end to end)."""

    def test_second_crash_during_recovery_is_queued_and_drained(self):
        """S1: a crash detected while a recovery is in flight used to
        start an overlapping recovery that clobbered the first one's
        state distribution.  It must be queued and handled serially."""
        cluster = SimCluster(nsites=4, config=config(ckpt_interval=0.1))
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 2000.0, 20000.0))
        # both failures land inside one liveness check tick, so the
        # second is observed while the first recovery is still running
        cluster.crash_site(3, at=0.5)
        cluster.crash_site(2, at=0.5001)
        cluster.run(progress_timeout=180.0)
        assert handle.result == first_n_primes(40)
        cm = cluster.sites[0].crash_manager
        assert cm.stats.get("crashes_queued").count >= 1
        assert cm.stats.get("recoveries").count >= 2
        assert not cm._recovering and not cm._crash_queue

    def test_coordinator_crash_successor_recovers_from_replica(self):
        """S2: when the checkpoint coordinator itself dies, the successor
        used to find no committed snapshot and declare the program lost.
        Snapshot replication gives it the state to roll back from."""
        cluster = SimCluster(nsites=3, config=config(ckpt_interval=0.1))
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 800.0, 8000.0),
                                site_index=1)
        cluster.sim.run(until=0.45)
        assert cluster.sites[0].crash_manager.committed_wave >= 1
        cluster.sites[0].crash()
        cluster.run(progress_timeout=180.0)
        assert handle.result == first_n_primes(40)
        successor = cluster.sites[1].crash_manager
        assert successor.stats.get("replicas_adopted").count >= 1
        assert successor.stats.get("recoveries_completed").count >= 1

    def test_duplicate_state_after_commit_does_not_recommit(self):
        """A re-delivered CHECKPOINT_STATE must not re-enter the commit
        path (the chaos duplicate_delivery plan caught a double commit
        of the same wave)."""
        cluster = SimCluster(nsites=3, config=config())
        cluster.submit(build_primes_program(), args=(40, 6, 800.0, 8000.0))
        cluster.sim.run(until=0.35)
        cm = cluster.sites[0].crash_manager
        assert cm.committed_wave >= 1
        committed_before = cm.stats.get("checkpoints_committed").count
        wave_before = cm.committed_wave
        cm._on_state(cm._wave, cluster.sites[1].site_id, {"dup": True})
        assert cm.stats.get("checkpoints_committed").count == committed_before
        assert cm.committed_wave == wave_before

    def test_duplicate_ack_after_drain_is_ignored(self):
        cluster = SimCluster(nsites=3, config=config())
        cluster.submit(build_primes_program(), args=(40, 6, 800.0, 8000.0))
        cluster.sim.run(until=0.35)
        cm = cluster.sites[0].crash_manager
        assert cm.committed_wave >= 1
        states_before = set(cm._states_pending)
        cm._on_ack(cm._wave, cluster.sites[1].site_id)
        assert set(cm._states_pending) == states_before

    def test_stale_replica_from_old_coordinator_is_ignored(self):
        """After succession the old coordinator's lower-numbered replicas
        must not roll the successor's committed snapshot backwards."""
        cluster = SimCluster(nsites=3, config=config())
        cluster.submit(build_primes_program(), args=(40, 6, 800.0, 8000.0))
        cluster.sim.run(until=0.35)
        backup = cluster.sites[1].crash_manager
        assert backup.committed_wave >= 1
        wave_before = backup.committed_wave
        src = backup.committed_src
        backup._on_replica(wave_before - 1, [[0, {"stale": True}]], src)
        assert backup.committed_wave == wave_before
        assert backup.stats.get("stale_replicas_ignored").count >= 1
