"""Focused tests for the crash manager: checkpoint waves, coordinator
selection, rollback mechanics, and epoch fencing.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CheckpointConfig,
    ClusterConfig,
    CostModel,
    SchedulingConfig,
    SDVMConfig,
)
from repro.apps import build_primes_program, first_n_primes
from repro.site.simcluster import SimCluster


def config(ckpt_interval=0.1, heartbeats=True):
    return SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-4),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0),
        cluster=ClusterConfig(heartbeats_enabled=heartbeats,
                              heartbeat_interval=0.03,
                              heartbeat_timeout=0.12),
        checkpoint=CheckpointConfig(enabled=True, interval=ckpt_interval),
    )


class TestCheckpointWaves:
    def test_coordinator_is_lowest_alive(self):
        cluster = SimCluster(nsites=3, config=config())
        cluster.sim.run(until=0.5)
        assert cluster.sites[0].crash_manager.is_coordinator()
        assert not cluster.sites[1].crash_manager.is_coordinator()
        cluster.sites[0].crash()
        cluster.sim.run(until=1.0)
        assert cluster.sites[1].crash_manager.is_coordinator()

    def test_no_waves_without_programs(self):
        cluster = SimCluster(nsites=2, config=config())
        cluster.sim.run(until=1.0)
        assert cluster.sites[0].crash_manager.committed_wave == -1

    def test_waves_commit_during_program(self):
        cluster = SimCluster(nsites=3, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        coordinator = cluster.sites[0].crash_manager
        assert coordinator.committed_wave >= 1
        # the committed snapshot covers every alive site
        assert len(coordinator.committed) == 3

    def test_sites_resume_after_commit(self):
        cluster = SimCluster(nsites=2, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 400.0, 4000.0))
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        assert not any(site.paused for site in cluster.sites)

    def test_checkpoint_overhead_scales_with_interval(self):
        durations = {}
        for interval in (0.05, 1.0):
            cluster = SimCluster(nsites=2, config=config(interval))
            handle = cluster.submit(build_primes_program(),
                                    args=(40, 6, 400.0, 4000.0))
            cluster.run(progress_timeout=120.0)
            durations[interval] = handle.duration
        assert durations[0.05] > durations[1.0]


class TestRecovery:
    def test_epoch_increments_on_recovery(self):
        cluster = SimCluster(nsites=3, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 800.0, 8000.0))
        cluster.crash_site(2, at=0.5)
        cluster.run(progress_timeout=120.0)
        assert handle.result == first_n_primes(40)
        assert cluster.sites[0].epoch >= 1

    def test_multiple_crashes_survived(self):
        cluster = SimCluster(nsites=4, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 2000.0, 20000.0))
        cluster.crash_site(3, at=0.5)
        cluster.crash_site(2, at=1.1)
        cluster.run(progress_timeout=180.0)
        assert handle.result == first_n_primes(40)
        assert cluster.sites[0].crash_manager.stats.get(
            "recoveries").count >= 2

    def test_crash_of_non_coordinator_site_detected_by_all(self):
        cluster = SimCluster(nsites=3, config=config())
        handle = cluster.submit(build_primes_program(),
                                args=(40, 6, 800.0, 8000.0))
        victim_index = 1

        def victim_logical():
            return cluster.sites[victim_index].site_id

        cluster.sim.run(until=0.4)
        logical = victim_logical()
        cluster.sites[victim_index].crash()
        cluster.run(progress_timeout=180.0)
        assert handle.result == first_n_primes(40)
        survivors = [cluster.sites[0], cluster.sites[2]]
        for site in survivors:
            assert not site.cluster_manager.sites[logical].alive

    def test_result_exact_despite_rollback_reexecution(self):
        """Rollback re-executes work (at-least-once); the dataflow model
        still yields the exact prime list, not duplicates."""
        cluster = SimCluster(nsites=4, config=config(ckpt_interval=0.2))
        handle = cluster.submit(build_primes_program(),
                                args=(60, 8, 400.0, 4000.0))
        cluster.crash_site(3, at=1.0)
        cluster.run(progress_timeout=180.0)
        result = handle.result
        assert result == first_n_primes(60)
        assert len(result) == len(set(result))
