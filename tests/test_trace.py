"""Tests for the journal + timeline tooling."""

from __future__ import annotations

import pytest

from repro.apps import build_primes_program, first_n_primes
from repro.trace import Timeline, TraceEvent
from repro.site.simcluster import SimCluster


@pytest.fixture
def traced_cluster(fast_config):
    config = fast_config.with_(journal=True)
    cluster = SimCluster(nsites=3, config=config)
    handle = cluster.submit(build_primes_program(),
                            args=(25, 6, 400.0, 4000.0))
    cluster.run(progress_timeout=120.0)
    assert handle.result == first_n_primes(25)
    return cluster


class TestJournal:
    def test_disabled_by_default(self, fast_config):
        cluster = SimCluster(nsites=1, config=fast_config)
        cluster.submit(build_primes_program(), args=(5, 2, 100.0, 1000.0))
        cluster.run(progress_timeout=60.0)
        assert cluster.sites[0].journal == []

    def test_events_recorded(self, traced_cluster):
        journal = traced_cluster.sites[0].journal
        kinds = {kind for _t, kind, _d in journal}
        assert "exec_start" in kinds
        assert "exec_end" in kinds

    def test_start_end_balanced(self, traced_cluster):
        """Ends may trail starts by at most the in-flight executions the
        simulation stopped on (the run halts the instant the result lands)."""
        for site in traced_cluster.sites:
            starts = sum(1 for _t, k, _d in site.journal
                         if k == "exec_start")
            ends = sum(1 for _t, k, _d in site.journal if k == "exec_end")
            slack = site.site_config.max_parallel + 2
            assert ends <= starts <= ends + slack


class TestTimeline:
    def test_busy_fractions_sane(self, traced_cluster):
        timeline = Timeline.from_cluster(traced_cluster)
        fractions = [timeline.busy_fraction(i) for i in timeline.sites()]
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert max(fractions) > 0.3  # somebody actually worked

    def test_steals_visible(self, traced_cluster):
        timeline = Timeline.from_cluster(traced_cluster)
        assert len(timeline.steals()) > 0

    def test_render_shape(self, traced_cluster):
        timeline = Timeline.from_cluster(traced_cluster)
        art = timeline.render(width=40)
        lines = art.splitlines()
        assert len(lines) == 1 + len(timeline.sites())
        assert all("|" in line for line in lines[1:])
        assert "#" in art

    def test_summary_counts_match_stats(self, traced_cluster):
        timeline = Timeline.from_cluster(traced_cluster)
        summary = timeline.summary()
        total_execs = sum(
            s.processing_manager.stats.get("executions").count
            for s in traced_cluster.sites)
        # sum the executions column back out of the text
        parsed = sum(int(line.split()[2])
                     for line in summary.splitlines()[1:])
        assert parsed == total_execs

    def test_empty_timeline(self):
        timeline = Timeline([], horizon=1.0)
        assert "no journal events" in timeline.render()

    def test_interval_merge(self):
        merged = Timeline._merge([(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)])
        assert merged == [(0.0, 2.0), (3.0, 4.0)]

    def test_open_interval_runs_to_horizon(self):
        events = [TraceEvent(0.5, 0, "exec_start", {"frame": 1})]
        timeline = Timeline(events, horizon=2.0)
        assert timeline.busy_fraction(0) == pytest.approx(0.75)
