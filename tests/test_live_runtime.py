"""Tests for the live runtime: reactor kernel, threads, sockets,
blocking contexts, and multiprocess deployment.
"""

from __future__ import annotations

import time

import pytest

from repro.common.config import CostModel, SDVMConfig, SecurityConfig, SiteConfig
from repro.common.errors import SDVMError
from repro.core.program import ProgramBuilder
from repro.runtime.live_cluster import LiveCluster

CFG = SDVMConfig(cost=CostModel(compile_fixed_cost=1e-4))


def fanout_program():
    prog = ProgramBuilder("fanout")

    @prog.microthread(creates=("worker", "collect"))
    def main(ctx, n):
        ctx.charge(5)
        collector = ctx.create_frame("collect", nparams=n)
        for i in range(n):
            w = ctx.create_frame("worker", targets=[(collector, i)])
            ctx.send_result(w, 0, i)

    @prog.microthread
    def worker(ctx, i):
        ctx.charge(10)
        ctx.send_to_targets(i * i)

    @prog.microthread
    def collect(ctx, *values):
        ctx.output("collected")
        ctx.exit_program(sum(values))

    return prog.build()


def memory_program():
    prog = ProgramBuilder("memory")

    @prog.microthread(creates=("reader",))
    def main(ctx):
        ctx.charge(1)
        addr = ctx.malloc({"value": 99})
        reader = ctx.create_frame("reader")
        ctx.send_result(reader, 0, addr)

    @prog.microthread
    def reader(ctx, addr):
        ctx.charge(1)
        data = ctx.read(addr)
        ctx.write(addr, {"value": 100})
        ctx.exit_program(data["value"])

    return prog.build()


def file_program():
    prog = ProgramBuilder("files")

    @prog.microthread(creates=("reader",))
    def main(ctx):
        ctx.charge(1)
        fh = ctx.open_file("shared.txt", "rw")
        ctx.file_write(fh, b"cluster file")
        reader = ctx.create_frame("reader")
        ctx.send_result(reader, 0, fh)

    @prog.microthread
    def reader(ctx, fh):
        ctx.charge(1)
        # may run on another site: access reroutes to the file's site
        data = ctx.file_read(fh, -1, offset=0)
        ctx.file_close(fh)
        ctx.exit_program(data)

    return prog.build()


class TestInProc:
    def test_single_site(self):
        with LiveCluster(nsites=1, config=CFG) as cluster:
            assert cluster.run(fanout_program(), args=(5,)) == 30

    def test_three_sites(self):
        with LiveCluster(nsites=3, config=CFG) as cluster:
            expected = sum(i * i for i in range(20))
            assert cluster.run(fanout_program(), args=(20,),
                               timeout=20) == expected

    def test_output_routed(self):
        with LiveCluster(nsites=2, config=CFG) as cluster:
            handle = cluster.submit(fanout_program(), args=(4,))
            handle.wait(15)
            assert handle.output() == ["collected"]

    def test_failure_propagates(self):
        prog = ProgramBuilder("boom")

        @prog.microthread
        def main(ctx):
            raise RuntimeError("live failure")

        with LiveCluster(nsites=1, config=CFG) as cluster:
            handle = cluster.submit(prog.build())
            with pytest.raises(SDVMError, match="failed"):
                handle.wait(15)

    def test_blocking_memory_protocol(self):
        with LiveCluster(nsites=2, config=CFG) as cluster:
            assert cluster.run(memory_program(), timeout=15) == 99

    def test_file_protocol(self):
        with LiveCluster(nsites=2, config=CFG) as cluster:
            assert cluster.run(file_program(), timeout=15) == b"cluster file"

    def test_two_programs_concurrently(self):
        with LiveCluster(nsites=3, config=CFG) as cluster:
            h1 = cluster.submit(fanout_program(), args=(6,))
            h2 = cluster.submit(fanout_program(), args=(9,), site_index=1)
            assert h1.wait(20) == sum(i * i for i in range(6))
            assert h2.wait(20) == sum(i * i for i in range(9))

    def test_join_at_runtime(self):
        with LiveCluster(nsites=1, config=CFG) as cluster:
            cluster.add_site()
            assert cluster.run(fanout_program(), args=(10,),
                               timeout=20) == sum(i * i for i in range(10))
            assert len(cluster.sites) == 2

    def test_orderly_sign_off(self):
        with LiveCluster(nsites=3, config=CFG) as cluster:
            cluster.run(fanout_program(), args=(5,), timeout=15)
            cluster.sign_off_site(2)
            # remaining sites still serve programs
            assert cluster.run(fanout_program(), args=(5,),
                               timeout=15) == 30

    def test_encrypted_cluster(self):
        config = SDVMConfig(
            cost=CostModel(compile_fixed_cost=1e-4),
            security=SecurityConfig(enabled=True, cluster_password="pw"))
        with LiveCluster(nsites=2, config=config) as cluster:
            assert cluster.run(fanout_program(), args=(6,),
                               timeout=15) == sum(i * i for i in range(6))

    def test_heterogeneous_platforms(self):
        with LiveCluster(
                site_configs=[SiteConfig(platform="plat-a"),
                              SiteConfig(platform="plat-b")],
                config=CFG) as cluster:
            assert cluster.run(fanout_program(), args=(12,),
                               timeout=20) == sum(i * i for i in range(12))


class TestTcp:
    def test_fanout_over_sockets(self):
        with LiveCluster(nsites=3, config=CFG,
                         transport="tcp") as cluster:
            expected = sum(i * i for i in range(15))
            assert cluster.run(fanout_program(), args=(15,),
                               timeout=30) == expected

    def test_memory_over_sockets(self):
        with LiveCluster(nsites=2, config=CFG,
                         transport="tcp") as cluster:
            assert cluster.run(memory_program(), timeout=20) == 99


@pytest.mark.slow
class TestMultiprocess:
    def test_worker_processes_join_and_compute(self):
        from repro.runtime.multiproc import (
            spawn_workers, stop_workers, wait_for_cluster_size)
        with LiveCluster(nsites=1, config=CFG,
                         transport="tcp") as cluster:
            addr = cluster.sites[0].kernel.local_physical()
            workers = spawn_workers(2, addr, CFG)
            try:
                assert wait_for_cluster_size(cluster.sites[0], 3,
                                             timeout=20)
                expected = sum(i * i for i in range(24))
                assert cluster.run(fanout_program(), args=(24,),
                                   timeout=40) == expected
            finally:
                stop_workers(workers)
