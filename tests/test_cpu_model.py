"""Tests for the processor-sharing CPU model."""

from __future__ import annotations

import pytest

from repro.common.errors import SDVMError
from repro.sim.engine import Simulator
from repro.site.kernel import CpuModel


@pytest.fixture
def cpu(sim):
    return CpuModel(sim, speed=1.0)


class TestSingleJob:
    def test_completes_after_cost(self, sim, cpu):
        done = []
        cpu.run(2.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_zero_cost_fires_immediately(self, sim, cpu):
        done = []
        cpu.run(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_rejected(self, cpu):
        with pytest.raises(SDVMError):
            cpu.run(-1.0, lambda: None)

    def test_busy_accounting(self, sim, cpu):
        cpu.run(3.0, lambda: None, overhead=False)
        sim.run()
        assert cpu.busy_total == pytest.approx(3.0)
        assert cpu.overhead_total == pytest.approx(0.0)

    def test_overhead_accounting(self, sim, cpu):
        cpu.charge(1.0, overhead=True)
        sim.run()
        assert cpu.overhead_total == pytest.approx(1.0)


class TestSharing:
    def test_two_equal_jobs_share(self, sim, cpu):
        """Two 1-second jobs admitted together both finish at t=2."""
        done = []
        cpu.run(1.0, lambda: done.append(("a", sim.now)))
        cpu.run(1.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done[0][1] == pytest.approx(2.0)
        assert done[1][1] == pytest.approx(2.0)
        # admission order breaks the tie
        assert [name for name, _t in done] == ["a", "b"]

    def test_short_job_not_stuck_behind_long(self, sim, cpu):
        """A tiny job alongside a huge one finishes in ~2x its own time —
        the property that keeps critical-path microthreads responsive."""
        done = []
        cpu.run(100.0, lambda: done.append(("long", sim.now)))
        cpu.run(0.001, lambda: done.append(("short", sim.now)))
        sim.run()
        assert done[0][0] == "short"
        assert done[0][1] == pytest.approx(0.002, rel=1e-6)
        assert done[1][1] == pytest.approx(100.001, rel=1e-6)

    def test_staggered_admission(self, sim, cpu):
        """Job B admitted halfway through A: A has 0.5 left, shares with B
        (1.0): A finishes at 1.5, B at 2.0."""
        done = []
        cpu.run(1.0, lambda: done.append(("a", sim.now)))
        sim.schedule(0.5, lambda: cpu.run(
            1.0, lambda: done.append(("b", sim.now))))
        sim.run()
        assert dict(done)["a"] == pytest.approx(1.5)
        assert dict(done)["b"] == pytest.approx(2.0)

    def test_throughput_conserved(self, sim, cpu):
        """N jobs of total work W all complete by exactly W."""
        done = []
        for i in range(10):
            cpu.run(0.5, lambda i=i: done.append(sim.now))
        sim.run()
        assert max(done) == pytest.approx(5.0)
        assert cpu.busy_total == pytest.approx(5.0)

    def test_utilization(self, sim, cpu):
        cpu.run(1.0, lambda: None)
        sim.run(until=4.0)
        assert cpu.utilization() == pytest.approx(0.25)

    def test_active_jobs(self, sim, cpu):
        cpu.run(1.0, lambda: None)
        cpu.run(1.0, lambda: None)
        assert cpu.active_jobs == 2
        sim.run()
        assert cpu.active_jobs == 0

    def test_stale_wakeup_rearms_without_advancing(self, sim, cpu):
        """Admitting work pushes the completion later; the armed event is
        left in place and its stale fire must not change accounting."""
        done = []
        cpu.run(1.0, lambda: done.append(("a", sim.now)))
        # admitted just before the original t=1.0 target: the old event
        # fires stale at 1.0 and must re-arm, not complete anything
        sim.schedule(0.9, lambda: cpu.run(
            1.0, lambda: done.append(("b", sim.now))))
        sim.run()
        # a: 0.9 done at admission, 0.1 left shared with b -> +0.2 -> 1.1
        # b: then runs alone 0.9 -> 2.0
        assert dict(done)["a"] == pytest.approx(1.1)
        assert dict(done)["b"] == pytest.approx(2.0)
        assert cpu.busy_total == pytest.approx(2.0)
        assert cpu.active_jobs == 0

    def test_many_admissions_single_event_churn(self, sim, cpu):
        """A burst of admissions while one event is armed still completes
        every job at the processor-sharing times."""
        done = []
        for i in range(8):
            sim.schedule(i * 0.01, lambda i=i: cpu.run(
                0.5, lambda i=i: done.append(i)))
        sim.run()
        assert sorted(done) == list(range(8))
        assert cpu.busy_total == pytest.approx(8 * 0.5)
        # total elapsed = total work (one CPU, always busy)
        assert sim.now == pytest.approx(0.07 + 0.5 * 8 - 0.07)

    def test_determinism(self):
        def run_once():
            sim = Simulator(seed=1)
            cpu = CpuModel(sim, 1.0)
            done = []
            for i in range(20):
                sim.schedule(i * 0.1, lambda i=i: cpu.run(
                    0.3 + (i % 3) * 0.2, lambda i=i: done.append(
                        (i, round(sim.now, 12)))))
            sim.run()
            return done

        assert run_once() == run_once()


class _ReferenceCpuModel:
    """Brute-force per-job-decay processor sharing — the oracle.

    This is the pre-optimization CpuModel: every ``_advance`` walks the
    whole job list subtracting the shared slice from each job's stored
    remaining time (O(jobs) per event).  The production model replaced
    the walk with batched virtual-service accounting; this copy stays
    behind as the semantic reference the property test below pins the
    O(1) model against.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self.slowdown = 1.0
        self._jobs: list = []  # [remaining, seq, fn, args, overhead]
        self._seq = 0
        self._last_update = 0.0
        self._completion_event = None
        self._target_time = None
        self.busy_total = 0.0
        self.overhead_total = 0.0

    def _advance(self) -> None:
        now = self._sim.now
        dt = now - self._last_update
        self._last_update = now
        n = len(self._jobs)
        if n == 0 or dt <= 0.0:
            return
        share = dt / n
        self.busy_total += dt
        for job in self._jobs:
            job[0] -= share
            if job[4]:
                self.overhead_total += share

    def _reschedule(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._jobs:
            self._target_time = None
            return
        shortest = min(job[0] for job in self._jobs)
        if shortest < 0.0:
            shortest = 0.0
        target = self._sim.now + shortest * len(self._jobs)
        self._target_time = target
        self._completion_event = self._sim.schedule_at(
            target, self._complete)

    def _complete(self) -> None:
        self._completion_event = None
        if self._target_time is None:
            return
        self._advance()
        finished = [job for job in self._jobs if job[0] <= 1e-12]
        if finished:
            finished.sort(key=lambda job: job[1])
            self._jobs = [job for job in self._jobs if job[0] > 1e-12]
            for job in finished:
                if job[2] is not None:
                    job[2](*job[3])
        self._reschedule()

    def run(self, seconds, fn, *args, overhead=True):
        seconds *= self.slowdown
        if seconds == 0.0:
            if fn is not None:
                self._sim.schedule(0.0, fn, *args)
            return
        self._advance()
        self._jobs.append([seconds, self._seq, fn, args, overhead])
        self._seq += 1
        self._reschedule()


def _random_script(seed: int, nops: int = 60):
    """A randomized admission script: (time, duration, overhead, slowdown).

    Mixes long and short jobs, zero-cost posts, overhead/compute flags,
    and occasional mid-run slowdown changes — the full surface of the
    model's public API.
    """
    import random as _random

    rng = _random.Random(seed)
    script = []
    t = 0.0
    for _ in range(nops):
        t += rng.expovariate(10.0)
        kind = rng.random()
        if kind < 0.08:
            script.append(("slowdown", t, rng.choice([1.0, 2.0, 5.0])))
        elif kind < 0.16:
            script.append(("admit", t, 0.0, True))
        else:
            duration = rng.choice([rng.uniform(1e-5, 1e-3),
                                   rng.uniform(1e-3, 0.2),
                                   rng.uniform(0.2, 2.0)])
            script.append(("admit", t, duration, rng.random() < 0.5))
    return script


def _play(model_factory, script):
    """Run a script against a fresh sim + model; return the evidence."""
    sim = Simulator(seed=0)
    model = model_factory(sim)
    completions = []

    def admit(label, duration, overhead):
        model.run(duration, lambda: completions.append((label, sim.now)),
                  overhead=overhead)

    label = 0
    for op in script:
        if op[0] == "slowdown":
            _, t, factor = op
            sim.schedule_at(t, lambda f=factor: setattr(
                model, "slowdown", f))
        else:
            _, t, duration, overhead = op
            sim.schedule_at(t, admit, label, duration, overhead)
            label += 1
    sim.run()
    return completions, model.busy_total, model.overhead_total


class TestVirtualServiceEquivalence:
    """Pin the O(1) virtual-service model to the brute-force oracle."""

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_model(self, seed):
        script = _random_script(seed)
        got, got_busy, got_overhead = _play(
            lambda sim: CpuModel(sim, 1.0), script)
        want, want_busy, want_overhead = _play(_ReferenceCpuModel, script)

        assert len(got) == len(want)
        # identical completion ORDER — the semantics schedulers observe
        assert [label for label, _t in got] == [label for label, _t in want]
        # completion times match to float-accumulation noise; the two
        # models intentionally differ in float trajectory
        for (_la, ta), (_lb, tb) in zip(got, want):
            assert ta == pytest.approx(tb, rel=1e-9, abs=1e-9)
        assert got_busy == pytest.approx(want_busy, rel=1e-9, abs=1e-9)
        assert got_overhead == pytest.approx(want_overhead,
                                             rel=1e-9, abs=1e-9)

    def test_long_run_float_error_bounded(self):
        """The service counter re-zeroes at idle, so a long run of many
        busy periods stays accurate to the end."""
        sim = Simulator(seed=0)
        cpu = CpuModel(sim, 1.0)
        done = []
        # 200 well-separated busy periods: counter resets between each
        for i in range(200):
            sim.schedule_at(i * 10.0, lambda: cpu.run(
                1.0, lambda: done.append(sim.now)))
        sim.run()
        assert len(done) == 200
        for i, t in enumerate(done):
            assert t == pytest.approx(i * 10.0 + 1.0, abs=1e-9)
        assert cpu.busy_total == pytest.approx(200.0, rel=1e-12)
