"""Tests for the processor-sharing CPU model."""

from __future__ import annotations

import pytest

from repro.common.errors import SDVMError
from repro.sim.engine import Simulator
from repro.site.kernel import CpuModel


@pytest.fixture
def cpu(sim):
    return CpuModel(sim, speed=1.0)


class TestSingleJob:
    def test_completes_after_cost(self, sim, cpu):
        done = []
        cpu.run(2.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_zero_cost_fires_immediately(self, sim, cpu):
        done = []
        cpu.run(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_rejected(self, cpu):
        with pytest.raises(SDVMError):
            cpu.run(-1.0, lambda: None)

    def test_busy_accounting(self, sim, cpu):
        cpu.run(3.0, lambda: None, overhead=False)
        sim.run()
        assert cpu.busy_total == pytest.approx(3.0)
        assert cpu.overhead_total == pytest.approx(0.0)

    def test_overhead_accounting(self, sim, cpu):
        cpu.charge(1.0, overhead=True)
        sim.run()
        assert cpu.overhead_total == pytest.approx(1.0)


class TestSharing:
    def test_two_equal_jobs_share(self, sim, cpu):
        """Two 1-second jobs admitted together both finish at t=2."""
        done = []
        cpu.run(1.0, lambda: done.append(("a", sim.now)))
        cpu.run(1.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done[0][1] == pytest.approx(2.0)
        assert done[1][1] == pytest.approx(2.0)
        # admission order breaks the tie
        assert [name for name, _t in done] == ["a", "b"]

    def test_short_job_not_stuck_behind_long(self, sim, cpu):
        """A tiny job alongside a huge one finishes in ~2x its own time —
        the property that keeps critical-path microthreads responsive."""
        done = []
        cpu.run(100.0, lambda: done.append(("long", sim.now)))
        cpu.run(0.001, lambda: done.append(("short", sim.now)))
        sim.run()
        assert done[0][0] == "short"
        assert done[0][1] == pytest.approx(0.002, rel=1e-6)
        assert done[1][1] == pytest.approx(100.001, rel=1e-6)

    def test_staggered_admission(self, sim, cpu):
        """Job B admitted halfway through A: A has 0.5 left, shares with B
        (1.0): A finishes at 1.5, B at 2.0."""
        done = []
        cpu.run(1.0, lambda: done.append(("a", sim.now)))
        sim.schedule(0.5, lambda: cpu.run(
            1.0, lambda: done.append(("b", sim.now))))
        sim.run()
        assert dict(done)["a"] == pytest.approx(1.5)
        assert dict(done)["b"] == pytest.approx(2.0)

    def test_throughput_conserved(self, sim, cpu):
        """N jobs of total work W all complete by exactly W."""
        done = []
        for i in range(10):
            cpu.run(0.5, lambda i=i: done.append(sim.now))
        sim.run()
        assert max(done) == pytest.approx(5.0)
        assert cpu.busy_total == pytest.approx(5.0)

    def test_utilization(self, sim, cpu):
        cpu.run(1.0, lambda: None)
        sim.run(until=4.0)
        assert cpu.utilization() == pytest.approx(0.25)

    def test_active_jobs(self, sim, cpu):
        cpu.run(1.0, lambda: None)
        cpu.run(1.0, lambda: None)
        assert cpu.active_jobs == 2
        sim.run()
        assert cpu.active_jobs == 0

    def test_stale_wakeup_rearms_without_advancing(self, sim, cpu):
        """Admitting work pushes the completion later; the armed event is
        left in place and its stale fire must not change accounting."""
        done = []
        cpu.run(1.0, lambda: done.append(("a", sim.now)))
        # admitted just before the original t=1.0 target: the old event
        # fires stale at 1.0 and must re-arm, not complete anything
        sim.schedule(0.9, lambda: cpu.run(
            1.0, lambda: done.append(("b", sim.now))))
        sim.run()
        # a: 0.9 done at admission, 0.1 left shared with b -> +0.2 -> 1.1
        # b: then runs alone 0.9 -> 2.0
        assert dict(done)["a"] == pytest.approx(1.1)
        assert dict(done)["b"] == pytest.approx(2.0)
        assert cpu.busy_total == pytest.approx(2.0)
        assert cpu.active_jobs == 0

    def test_many_admissions_single_event_churn(self, sim, cpu):
        """A burst of admissions while one event is armed still completes
        every job at the processor-sharing times."""
        done = []
        for i in range(8):
            sim.schedule(i * 0.01, lambda i=i: cpu.run(
                0.5, lambda i=i: done.append(i)))
        sim.run()
        assert sorted(done) == list(range(8))
        assert cpu.busy_total == pytest.approx(8 * 0.5)
        # total elapsed = total work (one CPU, always busy)
        assert sim.now == pytest.approx(0.07 + 0.5 * 8 - 0.07)

    def test_determinism(self):
        def run_once():
            sim = Simulator(seed=1)
            cpu = CpuModel(sim, 1.0)
            done = []
            for i in range(20):
                sim.schedule(i * 0.1, lambda i=i: cpu.run(
                    0.3 + (i % 3) * 0.2, lambda i=i: done.append(
                        (i, round(sim.now, 12)))))
            sim.run()
            return done

        assert run_once() == run_once()
