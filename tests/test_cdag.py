"""Tests for CDAG construction, critical-path analysis, and hints."""

from __future__ import annotations

import pytest

from repro.cdag import CDAG, derive_hints
from repro.core.program import ProgramBuilder


def diamond_program():
    """main -> {fast, slow} -> sink, slow side much heavier."""
    prog = ProgramBuilder("diamond")

    @prog.microthread(work=1, creates=("fast", "slow"))
    def main(ctx):
        pass

    @prog.microthread(work=5, creates=("sink",))
    def fast(ctx, x):
        pass

    @prog.microthread(work=500, creates=("sink",))
    def slow(ctx, x):
        pass

    @prog.microthread(work=1)
    def sink(ctx, a, b):
        pass

    return prog.build()


def looping_program():
    """Collector recreates itself — a cycle (loop of unknown length)."""
    prog = ProgramBuilder("loop")

    @prog.microthread(work=1, creates=("step",))
    def main(ctx):
        pass

    @prog.microthread(work=10, creates=("step", "leaf"))
    def step(ctx, s):
        pass

    @prog.microthread(work=3)
    def leaf(ctx, x):
        pass

    return prog.build()


class TestGraph:
    def test_nodes_and_edges(self):
        cdag = CDAG.from_program(diamond_program())
        assert set(cdag.nodes) == {"main", "fast", "slow", "sink"}
        assert cdag.node("main").fan_out == 2
        assert cdag.node("sink").fan_in == 2
        assert cdag.node("main").fan_in == 0

    def test_downstream_work(self):
        cdag = CDAG.from_program(diamond_program())
        assert cdag.node("sink").downstream_work == pytest.approx(1.0)
        assert cdag.node("slow").downstream_work == pytest.approx(501.0)
        assert cdag.node("fast").downstream_work == pytest.approx(6.0)
        assert cdag.node("main").downstream_work == pytest.approx(502.0)

    def test_critical_path_follows_heavy_branch(self):
        cdag = CDAG.from_program(diamond_program())
        assert cdag.node("slow").on_critical_path
        assert not cdag.node("fast").on_critical_path
        assert cdag.critical_path()[0] == "main"

    def test_cycle_collapsed(self):
        cdag = CDAG.from_program(looping_program())
        # step is in a self-loop; its SCC work = 10, plus leaf 3
        assert cdag.node("step").downstream_work == pytest.approx(13.0)
        assert cdag.node("main").downstream_work == pytest.approx(14.0)
        assert cdag.node("step").on_critical_path

    def test_networkx_export(self):
        graph = CDAG.from_program(diamond_program()).to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        assert graph.nodes["slow"]["critical"]

    def test_unknown_node_rejected(self):
        cdag = CDAG.from_program(diamond_program())
        from repro.common.errors import ProgramError
        with pytest.raises(ProgramError):
            cdag.node("ghost")

    def test_primes_app_collect_is_critical(self):
        from repro.apps import build_primes_program
        cdag = CDAG.from_program(build_primes_program())
        assert cdag.node("collect").on_critical_path


class TestHints:
    def test_priorities_normalized(self):
        policy = derive_hints(diamond_program())
        assert policy.priority_of("main") == pytest.approx(100.0)
        assert policy.priority_of("slow") > policy.priority_of("fast")
        assert 0.0 <= policy.priority_of("sink") <= 100.0

    def test_critical_flags(self):
        policy = derive_hints(diamond_program())
        assert policy.is_critical("main")
        assert policy.is_critical("slow")
        assert not policy.is_critical("fast")
        assert not policy.is_critical("sink")  # leaf

    def test_unknown_name_defaults(self):
        policy = derive_hints(diamond_program())
        assert policy.priority_of("ghost") == 0.0
        assert not policy.is_critical("ghost")
