"""Tests for the multicore sweep orchestrator (repro.bench.sweep)."""

from __future__ import annotations

import io
import json

import pytest

from repro.bench.sweep import (
    SWEEP_SCHEMA,
    make_point,
    point_label,
    run_point,
    run_sweep,
    stable_row,
    write_sweep_json,
)
from repro.common.errors import SDVMError

#: tiny workloads — every sweep in this file finishes in well under a
#: second per point
_TREESUM = dict(leaves=32, scale=200.0)


def _points():
    return [make_point("treesum", nsites=1, seed=0, **_TREESUM),
            make_point("treesum", nsites=2, seed=0, **_TREESUM)]


class TestPoints:
    def test_unknown_app_rejected(self):
        with pytest.raises(SDVMError):
            make_point("quicksort")

    def test_unknown_param_rejected(self):
        with pytest.raises(SDVMError):
            make_point("treesum", sieve=3)

    def test_label_stable(self):
        point = make_point("treesum", nsites=8, seed=3, leaves=64,
                           gossip_interval=0.01)
        assert point_label(point) == "treesum/l64/s8/seed3/g0.01"

    def test_primes_label(self):
        assert point_label(make_point("primes", nsites=2, p=20,
                                      width=4)) == "primes/p20w4/s2/seed0"


class TestRunPoint:
    def test_ok_row_shape(self):
        row = run_point(make_point("treesum", nsites=2, **_TREESUM))
        assert row["status"] == "ok"
        assert row["error"] is None
        assert row["virtual_duration"] > 0
        assert row["events"] > 0
        assert len(row["fingerprint"]) == 64
        assert row["metrics"]
        assert row["meta"]["wall_seconds"] >= 0

    def test_failed_run_isolated(self):
        """A broken point lands in its row; siblings still complete."""
        bad = make_point("treesum", nsites=1, leaves=32, scale=-5.0)
        report = run_sweep([_points()[0], bad], workers=1)
        assert report["ok"] is False
        statuses = [row["status"] for row in report["rows"]]
        assert statuses == ["ok", "error"]
        assert "SDVMError" in report["rows"][1]["error"]
        assert report["failures"] == [point_label(bad)]

    def test_deterministic_row(self):
        point = make_point("treesum", nsites=2, **_TREESUM)
        assert stable_row(run_point(point)) == stable_row(run_point(point))


class TestRunSweep:
    def test_worker_count_independence(self):
        """Same configs -> same stable rows on 1 worker and on N."""
        seq = run_sweep(_points(), workers=1)
        par = run_sweep(_points(), workers=2)
        assert [stable_row(r) for r in seq["rows"]] == \
            [stable_row(r) for r in par["rows"]]
        assert seq["ok"] and par["ok"]

    def test_selfcheck_passes_on_deterministic_runs(self):
        report = run_sweep(_points(), workers=2, selfcheck=True)
        assert report["ok"] is True
        assert report["determinism"] == {"checked": 2, "mismatches": []}

    def test_schema_and_report_shape(self, tmp_path):
        report = run_sweep(_points()[:1], workers=1)
        assert report["schema"] == SWEEP_SCHEMA
        assert report["points"] == 1
        path = write_sweep_json(str(tmp_path / "sweep.json"), report)
        loaded = json.loads(open(path, encoding="utf-8").read())
        assert loaded["schema"] == SWEEP_SCHEMA
        assert loaded["rows"][0]["fingerprint"] == \
            report["rows"][0]["fingerprint"]

    def test_invalid_point_rejected(self):
        with pytest.raises(SDVMError):
            run_sweep([{"nsites": 2}], workers=1)


class TestSweepCli:
    def _main(self, argv):
        from repro.cli import main
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_round_trip_ok(self, tmp_path):
        out_path = str(tmp_path / "report.json")
        code, text = self._main(
            ["sweep", "--sites", "1,2", "--seeds", "0",
             "--leaves", "32", "--scale", "200", "--workers", "2",
             "--selfcheck", "--out", out_path])
        assert code == 0, text
        assert "sweep ok" in text
        report = json.loads(open(out_path, encoding="utf-8").read())
        assert report["ok"] is True
        assert len(report["rows"]) == 2

    def test_failure_exits_1(self):
        code, text = self._main(
            ["sweep", "--sites", "1", "--seeds", "0",
             "--leaves", "32", "--scale", "-5"])
        assert code == 1
        assert "FAIL" in text

    def test_bad_app_exits_2(self):
        code, text = self._main(["sweep", "--app", "quicksort"])
        assert code == 2
        assert "unknown sweep app" in text

    def test_bad_seed_spec_exits_2(self):
        code, text = self._main(["sweep", "--seeds", "x,y"])
        assert code == 2

    def test_seed_range_spec(self, tmp_path):
        out_path = str(tmp_path / "report.json")
        code, _text = self._main(
            ["sweep", "--sites", "1", "--seeds", "0:2",
             "--leaves", "32", "--scale", "200", "--out", out_path])
        assert code == 0
        report = json.loads(open(out_path, encoding="utf-8").read())
        labels = [row["label"] for row in report["rows"]]
        assert labels == ["treesum/l32/s1/seed0", "treesum/l32/s1/seed1"]
