"""Unit + property tests for the wire codec."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.common.ids import FileHandle, GlobalAddress
from repro.serde import dumps, encoded_size, loads, measured_size
from repro.serde.codec import (MAX_DECODE_DEPTH, read_uvarint, write_uvarint,
                               zigzag)


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 127, 128, -128, 2**62, -(2**62),
        2**63 - 1, -(2**63), 2**100, -(2**100), 0.0, -0.0, 1.5, -1.5,
        float("inf"), float("-inf"), 1e-300, "", "ascii", "üñïçödé",
        "line\nbreak", b"", b"\x00\xff" * 10,
    ])
    def test_roundtrip(self, value):
        assert loads(dumps(value)) == value

    def test_nan_roundtrip(self):
        result = loads(dumps(float("nan")))
        assert math.isnan(result)

    def test_bool_is_not_int(self):
        assert loads(dumps(True)) is True
        assert loads(dumps(1)) == 1
        assert not isinstance(loads(dumps(1)), bool)

    def test_big_int_precision(self):
        value = 12345678901234567890123456789012345678901234567890
        assert loads(dumps(value)) == value
        assert loads(dumps(-value)) == -value


class TestContainers:
    @pytest.mark.parametrize("value", [
        [], [1, 2, 3], [1, [2, [3, [4]]]], (), (1, "a"), ((),),
        {}, {"a": 1}, {1: "x", "y": 2}, {(1, 2): [3, 4]},
        set(), {1, 2, 3}, frozenset({1}) and {1},
        [None, True, 1.5, "s", b"b", (1,), {2: 3}, {4}],
    ])
    def test_roundtrip(self, value):
        assert loads(dumps(value)) == value

    def test_tuple_list_distinct(self):
        assert loads(dumps((1, 2))) == (1, 2)
        assert loads(dumps([1, 2])) == [1, 2]
        assert isinstance(loads(dumps((1, 2))), tuple)
        assert isinstance(loads(dumps([1, 2])), list)

    def test_dict_preserves_insertion_order(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(loads(dumps(value))) == ["z", "a", "m"]

    def test_set_encoding_deterministic(self):
        assert dumps({3, 1, 2}) == dumps({2, 3, 1})


class TestDomainTypes:
    def test_global_address(self):
        addr = GlobalAddress(17, 123456)
        assert loads(dumps(addr)) == addr

    def test_file_handle(self):
        handle = FileHandle(3, 99)
        assert loads(dumps(handle)) == handle

    def test_nested_addresses(self):
        value = {"chain": [GlobalAddress(0, 1), GlobalAddress(2, 3)],
                 "fh": FileHandle(1, 1)}
        assert loads(dumps(value)) == value


class TestErrors:
    def test_unserializable_type_rejected(self):
        with pytest.raises(SerializationError):
            dumps(object())

    def test_function_rejected(self):
        with pytest.raises(SerializationError):
            dumps(lambda: None)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SerializationError):
            loads(dumps(1) + b"x")

    def test_truncated_rejected(self):
        data = dumps("hello world")
        with pytest.raises(SerializationError):
            loads(data[:-1])

    def test_empty_rejected(self):
        with pytest.raises(SerializationError):
            loads(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            loads(b"\x7f")

    def test_bad_utf8_rejected(self):
        with pytest.raises(SerializationError):
            loads(b"S\x02\xff\xfe")


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63])
    def test_roundtrip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, pos = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            write_uvarint(bytearray(), -1)

    def test_truncated_varint(self):
        with pytest.raises(SerializationError):
            read_uvarint(b"\x80", 0)


def test_encoded_size_matches():
    value = {"key": [1, 2, 3], "other": "text"}
    assert encoded_size(value) == len(dumps(value))


# ---------------------------------------------------------------------------
# property-based round-trips

wire_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=40)
    | st.binary(max_size=40)
    | st.builds(GlobalAddress,
                st.integers(min_value=0, max_value=2**20),
                st.integers(min_value=0, max_value=2**30))
    | st.builds(FileHandle,
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=1000)),
    lambda children: (
        st.lists(children, max_size=4)
        | st.tuples(children, children)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
    ),
    max_leaves=25,
)


@settings(max_examples=200)
@given(wire_values)
def test_roundtrip_property(value):
    assert loads(dumps(value)) == value


@settings(max_examples=100)
@given(wire_values)
def test_encoding_deterministic_property(value):
    assert dumps(value) == dumps(value)


@settings(max_examples=100)
@given(st.integers())
def test_int_roundtrip_property(value):
    assert loads(dumps(value)) == value


# ---------------------------------------------------------------------------
# size accounting, input safety, and robustness against corrupt wire data


class TestMeasuredSize:
    @pytest.mark.parametrize("value", [
        None, True, 0, -1, 127, 128, 2**62, -(2**63), 2**100, -(2**100),
        1.5, float("nan"), "", "ascii", "üñïçödé", b"", b"\x00" * 200,
        [], [1, [2, [3]]], (1, "a"), {}, {"k": [1.5, None]},
        {(1, 2): b"x"}, set(), {1, "a", 2.5},
        GlobalAddress(17, 123456), FileHandle(3, 99),
    ])
    def test_matches_dumps(self, value):
        assert measured_size(value) == len(dumps(value))

    def test_rejects_like_dumps(self):
        with pytest.raises(SerializationError):
            measured_size(object())

    @settings(max_examples=200)
    @given(wire_values)
    def test_matches_dumps_property(self, value):
        assert measured_size(value) == len(dumps(value))


class TestInputSafety:
    def test_zigzag_out_of_range_raises(self):
        # a silent wrong value here would corrupt wire sizes undetected
        with pytest.raises(SerializationError):
            zigzag(2**63)
        with pytest.raises(SerializationError):
            zigzag(-(2**63) - 1)
        assert zigzag(2**63 - 1) == (2**64 - 2)
        assert zigzag(-(2**63)) == (2**64 - 1)

    def test_decode_depth_guard(self):
        # deeper than MAX_DECODE_DEPTH must fail with SerializationError,
        # not blow the interpreter's recursion limit
        data = dumps("leaf")
        for _ in range(MAX_DECODE_DEPTH + 10):
            data = b"L\x01" + data  # list-of-one wrapper
        with pytest.raises(SerializationError):
            loads(data)

    def test_within_depth_limit_roundtrips(self):
        value = "leaf"
        for _ in range(MAX_DECODE_DEPTH - 2):
            value = [value]
        assert loads(dumps(value)) == value

    def test_loads_accepts_memoryview_and_bytearray(self):
        value = {"nested": [1, 2.5, "s", b"b", (None, True)]}
        data = dumps(value)
        assert loads(memoryview(data)) == value
        assert loads(bytearray(data)) == value
        # a sliced view too (zero-copy framing path)
        padded = b"xx" + data + b"yy"
        assert loads(memoryview(padded)[2:-2]) == value


@settings(max_examples=150)
@given(wire_values)
def test_truncation_never_escapes_serialization_error(value):
    """Every strict prefix of a valid encoding must raise SerializationError
    — never IndexError/struct.error/RecursionError or a silent value."""
    data = dumps(value)
    for cut in range(len(data)):
        with pytest.raises(SerializationError):
            loads(data[:cut])


@settings(max_examples=150)
@given(wire_values, st.data())
def test_corruption_is_contained(value, data_strategy):
    """Flipping one byte either still decodes (to something) or raises
    SerializationError; no other exception type may escape."""
    data = bytearray(dumps(value))
    index = data_strategy.draw(
        st.integers(min_value=0, max_value=len(data) - 1))
    flip = data_strategy.draw(st.integers(min_value=1, max_value=255))
    data[index] ^= flip
    try:
        loads(bytes(data))
    except SerializationError:
        pass
