"""Unit tests for the live kernel's reactor, timers, and transports."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import SDVMError
from repro.net.inproc import InProcHub, InProcTransport
from repro.runtime.live_kernel import LiveKernel


@pytest.fixture
def kernel():
    hub = InProcHub()
    k = LiveKernel(lambda recv: InProcTransport(hub, "unit", recv),
                   name="unit")
    yield k
    k.shutdown()


class TestReactor:
    def test_post_runs_on_reactor(self, kernel):
        done = threading.Event()
        seen = {}

        def task():
            seen["on_reactor"] = kernel.on_reactor()
            done.set()

        kernel.post(task)
        assert done.wait(2.0)
        assert seen["on_reactor"] is True

    def test_post_preserves_order(self, kernel):
        order = []
        done = threading.Event()
        for i in range(100):
            kernel.post(order.append, i)
        kernel.post(lambda: done.set())
        assert done.wait(2.0)
        assert order == list(range(100))

    def test_reactor_call_returns_value(self, kernel):
        assert kernel.reactor_call(lambda: 41 + 1) == 42

    def test_reactor_call_propagates_exception(self, kernel):
        def boom():
            raise ValueError("from reactor")

        with pytest.raises(ValueError, match="from reactor"):
            kernel.reactor_call(boom)

    def test_reactor_call_reentrant(self, kernel):
        """Calling reactor_call from the reactor runs inline (no deadlock)."""
        def outer():
            return kernel.reactor_call(lambda: "inner")

        assert kernel.reactor_call(outer) == "inner"

    def test_exception_does_not_kill_reactor(self, kernel):
        kernel.post(lambda: 1 / 0)
        assert kernel.reactor_call(lambda: "alive") == "alive"


class TestTimers:
    def test_call_later_fires(self, kernel):
        done = threading.Event()
        kernel.call_later(0.02, done.set)
        assert done.wait(2.0)

    def test_cancel_prevents_firing(self, kernel):
        fired = threading.Event()
        handle = kernel.call_later(0.05, fired.set)
        kernel.cancel(handle)
        assert not fired.wait(0.2)

    def test_timers_fire_in_order(self, kernel):
        order = []
        done = threading.Event()
        kernel.call_later(0.06, lambda: (order.append("late"), done.set()))
        kernel.call_later(0.02, order.append, "early")
        assert done.wait(2.0)
        assert order == ["early", "late"]

    def test_now_is_monotonic(self, kernel):
        a = kernel.now
        time.sleep(0.01)
        assert kernel.now > a


class TestTransportLifecycle:
    def test_send_after_shutdown_fails(self):
        hub = InProcHub()
        k = LiveKernel(lambda recv: InProcTransport(hub, "x", recv))
        k.shutdown()
        assert not k.transport_send("nowhere", b"data")

    def test_shutdown_idempotent(self, kernel):
        kernel.shutdown()
        kernel.shutdown()

    def test_receive_posts_to_reactor(self):
        hub = InProcHub()
        received = []
        done = threading.Event()
        k1 = LiveKernel(lambda recv: InProcTransport(hub, "a", recv),
                        name="a")
        k2 = LiveKernel(lambda recv: InProcTransport(hub, "b", recv),
                        name="b")
        try:
            k2.attach_receiver(
                lambda data: (received.append(data), done.set()))
            assert k1.transport_send("b", b"ping")
            assert done.wait(2.0)
            assert received == [b"ping"]
        finally:
            k1.shutdown()
            k2.shutdown()


class TestTcpTransportDirect:
    def test_roundtrip_and_reuse(self):
        from repro.net.tcp import TcpTransport
        got = []
        done = threading.Event()

        def receiver(data):
            got.append(data)
            if len(got) == 3:
                done.set()

        server = TcpTransport(receiver)
        client = TcpTransport(lambda d: None)
        try:
            for i in range(3):
                assert client.send(server.local_address(), bytes([i]) * 10)
            assert done.wait(3.0)
            assert got == [bytes([i]) * 10 for i in range(3)]
            # the connection cache held: one connect served all frames
            assert client.stats.get("connects").count == 1
        finally:
            client.close()
            server.close()

    def test_send_to_dead_endpoint_dead_letters(self):
        """Sends to an unreachable peer are queued for retry; once the
        budget is spent they are dead-lettered and the peer reported."""
        from repro.common.config import LiveTransportConfig
        from repro.net.tcp import TcpTransport
        down = threading.Event()
        client = TcpTransport(lambda d: None, config=LiveTransportConfig(
            connect_timeout=0.3, retry_budget=3, backoff_initial=0.01,
            backoff_max=0.05, heartbeat_misses=2))
        client.on_peer_down = lambda addr: down.set()
        try:
            assert client.send("127.0.0.1:1", b"x")  # accepted for retry
            assert down.wait(5.0)
            deadline = time.monotonic() + 5.0
            while (client.stats.get("dead_letters").total < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert client.stats.get("dead_letters").total >= 1
        finally:
            client.close()

    def test_bad_address_rejected(self):
        from repro.net.tcp import TcpTransport
        from repro.common.errors import AddressError
        client = TcpTransport(lambda d: None)
        try:
            with pytest.raises(AddressError):
                client.send("not-an-address", b"x")
        finally:
            client.close()
