"""The live runtime: real threads, real sockets, real compilation.

Implemented in:

* :mod:`repro.runtime.live_kernel` — a reactor-thread kernel satisfying the
  :class:`~repro.site.kernel.Kernel` contract with wall-clock time;
* :mod:`repro.runtime.live_proc` — the processing manager running
  microthreads on worker threads with a blocking execution context;
* :mod:`repro.runtime.live_cluster` — facade for in-process (thread) live
  clusters over :class:`~repro.net.inproc.InProcTransport` or real TCP;
* :mod:`repro.runtime.daemon_main` — entry point to run one SDVM site as an
  OS process (used by the multiprocess examples).
"""

__all__ = ["LiveKernel", "LiveCluster"]


def __getattr__(name: str):  # lazy: keep `import repro` light and avoid
    if name == "LiveKernel":  # pulling threads in for sim-only users
        from repro.runtime.live_kernel import LiveKernel
        return LiveKernel
    if name == "LiveCluster":
        from repro.runtime.live_cluster import LiveCluster
        return LiveCluster
    raise AttributeError(name)
