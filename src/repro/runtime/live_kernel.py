"""The live kernel: a reactor thread per site, wall-clock time, real I/O.

Every site daemon is an actor: all manager state is touched only from the
site's reactor thread.  Socket reader threads and worker threads communicate
with the managers exclusively by posting closures onto the reactor queue.
``call_later`` uses one timer thread per site with a heap of deadlines
(cheaper than a ``threading.Timer`` per timeout).
"""

from __future__ import annotations

import heapq
import itertools
import queue
import random
import threading
import time
from typing import Any, Callable, Optional, Tuple

from repro.common.errors import SDVMError
from repro.net.base import Transport
from repro.site.kernel import Kernel


class _TimerHandle:
    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False


class LiveKernel(Kernel):
    mode = "live"

    def __init__(self, make_transport: Callable[[Callable[[bytes], None]],
                                                Transport],
                 seed: int = 0, name: str = "site",
                 tracer: Optional[Any] = None) -> None:
        """``make_transport`` builds the endpoint given a receive callback
        (which may fire on arbitrary threads — it posts to the reactor)."""
        self.rng = random.Random(seed ^ hash(name) & 0xFFFF)
        #: shared structured journal; appends are atomic under CPython, so
        #: the per-site reactor threads need no extra locking
        self.tracer = tracer
        self._queue: "queue.SimpleQueue[Optional[Tuple[Callable, tuple]]]" = (
            queue.SimpleQueue())
        #: wall-clock accounting (parity with SimCluster.wall_clock_metrics):
        #: reactor items processed since construction, and when we started
        self.events_processed = 0
        self.started_at = time.monotonic()
        self._stopping = threading.Event()
        self._receiver: Optional[Callable[[bytes], None]] = None
        self._peer_watcher: Optional[Callable[[str], None]] = None
        self.transport = make_transport(self._on_raw)
        # reliable transports report suspected-dead peers; route those onto
        # the reactor like any other network event
        if hasattr(self.transport, "on_peer_down"):
            self.transport.on_peer_down = self._on_peer_down
        # timer machinery
        self._timer_heap: list = []
        self._timer_lock = threading.Lock()
        self._timer_wakeup = threading.Event()
        self._timer_seq = itertools.count()
        self._reactor = threading.Thread(target=self._reactor_loop,
                                         name=f"sdvm-reactor-{name}",
                                         daemon=True)
        self._timer_thread = threading.Thread(target=self._timer_loop,
                                              name=f"sdvm-timer-{name}",
                                              daemon=True)
        self._reactor.start()
        self._timer_thread.start()

    # ------------------------------------------------------------------
    # reactor

    def _reactor_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, args = item
            self.events_processed += 1
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 — keep the reactor alive
                import traceback
                traceback.print_exc()

    def attach_receiver(self, receiver: Callable[[bytes], None]) -> None:
        """Daemon wires the message manager's deliver_raw here."""
        self._receiver = receiver

    def _on_raw(self, data: bytes) -> None:
        # called on socket reader threads
        receiver = self._receiver
        if receiver is not None and not self._stopping.is_set():
            self.post(receiver, data)

    def attach_peer_watcher(self, watcher: Callable[[str], None]) -> None:
        """Daemon wires the cluster manager's transport-suspicion hook here;
        ``watcher(physical_addr)`` runs on the reactor."""
        self._peer_watcher = watcher

    def _on_peer_down(self, physical: str) -> None:
        # called on transport writer threads
        watcher = self._peer_watcher
        if watcher is not None and not self._stopping.is_set():
            self.post(watcher, physical)

    def wall_clock_metrics(self) -> dict:
        """Uptime + reactor throughput (the live twin of
        :meth:`repro.site.simcluster.SimCluster.wall_clock_metrics`).

        Informational only — wall-clock figures are machine- and
        load-dependent, so they never participate in gated metrics.
        """
        uptime = time.monotonic() - self.started_at
        events = self.events_processed
        return {
            "wall_seconds": uptime,
            "events_executed": float(events),
            "events_per_sec": events / uptime if uptime > 0 else 0.0,
        }

    def transport_stats(self) -> dict:
        """Snapshot of the transport's counters ({} if it keeps none)."""
        stats = getattr(self.transport, "stats", None)
        return stats.as_dict() if stats is not None else {}

    def post(self, fn: Callable[..., None], *args: Any) -> None:
        if not self._stopping.is_set():
            self._queue.put((fn, args))

    def on_reactor(self) -> bool:
        return threading.current_thread() is self._reactor

    def reactor_call(self, fn: Callable[[], Any],
                     timeout: float = 10.0) -> Any:
        """Run ``fn`` on the reactor and return its result (blocking).

        Used by worker threads for context operations that need manager
        state (allocations, reads).  Calling from the reactor itself runs
        inline.
        """
        if self.on_reactor():
            return fn()
        done = threading.Event()
        box: list = [None, None]

        def runner() -> None:
            try:
                box[0] = fn()
            except Exception as exc:  # noqa: BLE001 — propagate to caller
                box[1] = exc
            finally:
                done.set()

        self.post(runner)
        if not done.wait(timeout):
            raise SDVMError("reactor call timed out")
        if box[1] is not None:
            raise box[1]
        return box[0]

    # ------------------------------------------------------------------
    # timers

    def _timer_loop(self) -> None:
        while not self._stopping.is_set():
            with self._timer_lock:
                now = time.monotonic()
                wait = None
                while self._timer_heap:
                    deadline, _seq, handle, fn, args = self._timer_heap[0]
                    if handle.cancelled:
                        heapq.heappop(self._timer_heap)
                        continue
                    if deadline <= now:
                        heapq.heappop(self._timer_heap)
                        self.post(fn, *args)
                        continue
                    wait = deadline - now
                    break
            self._timer_wakeup.wait(timeout=wait if wait is not None else 0.2)
            self._timer_wakeup.clear()

    @property
    def now(self) -> float:
        return time.monotonic()

    def call_later(self, delay: float, fn: Callable[..., None],
                   *args: Any) -> _TimerHandle:
        handle = _TimerHandle()
        deadline = time.monotonic() + max(delay, 0.0)
        with self._timer_lock:
            heapq.heappush(self._timer_heap,
                           (deadline, next(self._timer_seq), handle, fn,
                            args))
        self._timer_wakeup.set()
        return handle

    def cancel(self, handle: Any) -> None:
        if isinstance(handle, _TimerHandle):
            handle.cancelled = True

    # ------------------------------------------------------------------
    # CPU model: real time passes by itself

    def cpu_charge(self, seconds: float) -> None:
        pass

    def cpu_run(self, seconds: float, fn: Callable[..., None],
                *args: Any) -> None:
        fn(*args)

    # ------------------------------------------------------------------
    def transport_send(self, dst_physical: str, data: bytes) -> bool:
        return self.transport.send(dst_physical, data)

    def local_physical(self) -> str:
        return self.transport.local_address()

    def shutdown(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        self.transport.close()
        self._queue.put(None)
        self._timer_wakeup.set()
        if not self.on_reactor():
            self._reactor.join(timeout=2.0)
