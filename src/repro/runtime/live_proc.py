"""Live processing manager + blocking execution context.

Microthreads run on real worker threads; every interaction with manager
state happens via the site's reactor.  Side effects are buffered and
dispatched at completion on the reactor (same semantics as the sim kernel);
global-memory reads are real blocking round trips through the attraction
memory's message protocol.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.errors import MemoryFault, ProgramError, SDVMError
from repro.common.ids import FileHandle, GlobalAddress, ManagerId
from repro.core.context import Effect, ExecutionContext
from repro.core.frames import Microframe
from repro.core.threads import CompiledMicrothread
from repro.site.manager_base import Manager
from repro.trace.causal import exec_node

#: how long a blocking context operation may wait for the cluster
OP_TIMEOUT = 10.0


class LiveExecutionContext(ExecutionContext):
    """Blocking context used by worker threads under the live kernel."""

    def __init__(self, frame: Microframe, site,  # noqa: ANN001
                 thread_table: Dict[str, Tuple[int, int]]) -> None:
        super().__init__(frame, thread_table, site.site_id,
                         site.kernel.now, seed=site.config.seed)
        self._site = site
        self.effects: list = []
        self.wait_time = 0.0

    def _emit(self, effect: Effect) -> None:
        self.effects.append(effect)

    # -- blocking plumbing ------------------------------------------------
    def _await(self, starter: Callable[[Callable[..., None]], None]) -> Any:
        """Run ``starter(cb)`` on the reactor; block until cb fires."""
        done = threading.Event()
        box: list = [None, None]

        def cb(value: Any = None, error: Optional[Exception] = None) -> None:
            box[0] = value
            box[1] = error
            done.set()

        started = self._site.kernel.now
        self._site.kernel.post(starter, cb)
        if not done.wait(OP_TIMEOUT):
            raise MemoryFault("context operation timed out")
        self.wait_time += self._site.kernel.now - started
        if box[1] is not None:
            raise box[1]
        return box[0]

    # -- primitives --------------------------------------------------------
    def _op_alloc_frame_address(self) -> GlobalAddress:
        return self._site.kernel.reactor_call(
            self._site.attraction_memory.alloc_address)

    def _op_malloc(self, value: Any) -> GlobalAddress:
        return self._site.kernel.reactor_call(
            lambda: self._site.attraction_memory.alloc_object(value))

    def _op_read(self, address: GlobalAddress) -> Any:
        return self._await(
            lambda cb: self._site.attraction_memory.live_read(address, cb))

    def _op_file_open(self, path: str, mode: str) -> FileHandle:
        return self._await(
            lambda cb: self._site.io_manager.live_open(path, mode, cb))

    def _op_file_read(self, handle: FileHandle, size: int) -> bytes:
        return self._await(
            lambda cb: self._site.io_manager.live_read(handle, size, cb))

    def _op_file_write(self, handle: FileHandle, data: bytes) -> int:
        return self._await(
            lambda cb: self._site.io_manager.live_write(handle, data, cb))

    def _op_file_seek(self, handle: FileHandle, offset: int) -> None:
        self._await(
            lambda cb: self._site.io_manager.live_seek(handle, offset, cb))

    def _op_file_close(self, handle: FileHandle) -> None:
        self._await(
            lambda cb: self._site.io_manager.live_close(handle, cb))


class LiveProcessingManager(Manager):
    manager_id = ManagerId.PROCESSING

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        self.in_flight = 0
        self.waiting = 0  # parity with the sim manager's interface
        self._outstanding_requests = 0
        self.work_done = 0.0

    @property
    def max_parallel(self) -> int:
        return self.site.site_config.max_parallel

    # ------------------------------------------------------------------
    def kick(self) -> None:
        if self.site.paused:
            return
        while (self.in_flight + self._outstanding_requests
               < self.max_parallel):
            self._outstanding_requests += 1
            self.site.scheduling_manager.pm_request_work()

    def can_overcommit(self) -> bool:
        return self.in_flight < self.max_parallel + 1

    def on_start(self) -> None:
        self.kick()

    def receive_work(self, frame: Microframe,
                     compiled: CompiledMicrothread,
                     requested: bool = True) -> None:
        if requested:
            self._outstanding_requests = max(
                0, self._outstanding_requests - 1)
        if not self.site.program_manager.is_active(frame.program):
            self.stats.inc("stale_work_dropped")
            self.kick()
            return
        self.in_flight += 1
        info = self.site.program_manager.get(frame.program)
        ctx = LiveExecutionContext(frame, self.site, info.thread_table())
        epoch = self.site.epoch
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "exec_begin",
                    frame.frame_id.pack(), compiled.name,
                    frame.cause_node, frame.cause_origin)
        worker = threading.Thread(
            target=self._worker, args=(frame, compiled, ctx, epoch),
            name=f"sdvm-exec-{self.local_id}", daemon=True)
        worker.start()

    # -- worker thread ------------------------------------------------------
    def _worker(self, frame: Microframe, compiled: CompiledMicrothread,
                ctx: LiveExecutionContext, epoch: int) -> None:
        error: Optional[str] = None
        try:
            compiled.entry(ctx, *frame.arguments())
        except Exception:  # noqa: BLE001 — user code
            error = traceback.format_exc(limit=3)
        self.kernel.post(self._complete, frame, ctx, epoch, error)

    # -- back on the reactor --------------------------------------------------
    def _complete(self, frame: Microframe, ctx: LiveExecutionContext,
                  epoch: int, error: Optional[str]) -> None:
        tr = self.tracer
        if error is not None:
            self.stats.inc("microthread_errors")
            self.log("microthread raised:\n%s", error)
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "exec_end",
                        frame.frame_id.pack(), 0.0)
            self._finish_slot()
            self.site.program_manager.local_exit(
                frame.program, None, failed=True, failure=error)
            return
        if epoch != self.site.epoch:
            self.stats.inc("stale_epoch_discarded")
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "exec_end",
                        frame.frame_id.pack(), 0.0)
            self._finish_slot()
            return
        site = self.site
        prev_node, prev_origin = site.cause_node, site.cause_origin
        if tr is not None:
            # completion runs on the reactor, so the same single-threaded
            # set/restore discipline as the sim manager applies
            site.cause_node = exec_node(frame.frame_id.pack())
            site.cause_origin = (frame.cause_origin
                                 if frame.cause_origin >= 0 else self.local_id)
        try:
            self.site.dispatch_effects(frame, ctx.effects)
            frame.consume()
            self.stats.inc("executions")
            self.stats.add("work_units", ctx.charged_work)
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "exec_end",
                        frame.frame_id.pack(), ctx.charged_work)
            self.work_done += ctx.charged_work
            self.site.program_manager.record_execution(frame.program,
                                                       ctx.charged_work)
            self._finish_slot()
        finally:
            if tr is not None:
                site.cause_node, site.cause_origin = prev_node, prev_origin

    def _finish_slot(self) -> None:
        self.in_flight = max(0, self.in_flight - 1)
        if not self.site.running:
            return
        self.site.crash_manager.maybe_ack_drained()
        self.kick()

    def current_load(self) -> float:
        return float(self.in_flight)

    def status(self) -> dict:
        base = super().status()
        base["in_flight"] = self.in_flight
        return base
