"""LiveCluster — run a real SDVM cluster with threads and (optionally) TCP.

Each site runs the exact same manager stack as the simulation, but on a
:class:`~repro.runtime.live_kernel.LiveKernel`: reactor thread, worker
threads for microthreads, real wall-clock timers, and either in-process
queue transport or real loopback TCP sockets.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.common.config import SDVMConfig, SiteConfig
from repro.common.errors import SDVMError
from repro.core.program import SDVMProgram
from repro.net.inproc import InProcHub, InProcTransport
from repro.net.tcp import TcpTransport
from repro.program.manager import ProgramInfo
from repro.runtime.live_kernel import LiveKernel
from repro.site.daemon import SDVMSite

#: default seconds to wait for cluster formation / program completion
JOIN_TIMEOUT = 10.0


@dataclass
class LiveHandle:
    """Tracks one submitted program on a live cluster."""

    program: SDVMProgram
    pid: int = -1
    result: Any = None
    failed: bool = False
    failure: str = ""
    _event: threading.Event = field(default_factory=threading.Event)
    _frontend: Optional[SDVMSite] = None

    def wait(self, timeout: float = JOIN_TIMEOUT) -> Any:
        """Block until the program's result reaches the frontend."""
        if not self._event.wait(timeout):
            raise SDVMError(
                f"program {self.program.name!r} did not finish within "
                f"{timeout}s")
        if self.failed:
            raise SDVMError(
                f"program {self.program.name!r} failed: {self.failure}")
        return self.result

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def output(self) -> List[str]:
        if self._frontend is None:
            return []
        kernel: LiveKernel = self._frontend.kernel  # type: ignore[assignment]
        return kernel.reactor_call(
            lambda: self._frontend.io_manager.output_lines(self.pid))


class LiveCluster:
    """Build and drive an in-process live cluster.

    ``transport='inproc'`` wires sites with queue loopback (fast, used by
    tests); ``transport='tcp'`` gives every site a real listening socket on
    127.0.0.1 and messages travel through the kernel's TCP stack.
    """

    def __init__(self, nsites: int = 2,
                 config: Optional[SDVMConfig] = None,
                 site_configs: Optional[Sequence[SiteConfig]] = None,
                 transport: str = "inproc") -> None:
        self.config = config or SDVMConfig()
        self._hub = InProcHub() if transport == "inproc" else None
        #: one structured tracer shared by every site (config.trace);
        #: list appends are atomic under CPython so reactor threads can
        #: emit concurrently without locking
        self.tracer = None
        if self.config.trace:
            from repro.trace import Tracer
            self.tracer = Tracer()
        #: bounded per-site event rings, frozen on crash (telemetry);
        #: tees into the full tracer when both are on
        self.flight_recorder = None
        telemetry = self.config.telemetry
        if telemetry.flight_recorder:
            from repro.trace import FlightRecorder
            self.flight_recorder = FlightRecorder(
                telemetry.flight_ring_depth, inner=self.tracer)
        self._kernel_tracer = self.flight_recorder or self.tracer
        #: in-run telemetry (wall-clock sampler thread + health detectors)
        self.metrics = None
        self.health = None
        self._sampler = None
        self._sampler_stop: Optional[threading.Event] = None
        self._sampler_thread: Optional[threading.Thread] = None
        self.sites: List[SDVMSite] = []
        self.handles: List[LiveHandle] = []

        configs = (list(site_configs) if site_configs is not None
                   else [SiteConfig(name=f"site{i}") for i in range(nsites)])
        for index, site_config in enumerate(configs):
            self.sites.append(self._build_site(index, site_config,
                                               transport))
        first = self.sites[0]
        first.kernel.reactor_call(first.bootstrap)  # type: ignore[attr-defined]
        bootstrap_addr = first.kernel.local_physical()
        for site in self.sites[1:]:
            site.kernel.reactor_call(  # type: ignore[attr-defined]
                lambda s=site: s.join(bootstrap_addr))
        self._wait_formed()
        if telemetry.metrics_enabled:
            self._start_sampler(telemetry)

    def _build_site(self, index: int, site_config: SiteConfig,
                    transport: str) -> SDVMSite:
        if transport == "inproc":
            def make_transport(receiver, index=index):  # noqa: ANN001
                return InProcTransport(self._hub, f"site-{index}", receiver)
        elif transport == "tcp":
            def make_transport(receiver):  # noqa: ANN001
                return TcpTransport(receiver,
                                    config=self.config.live_transport)
        else:
            raise SDVMError(f"unknown transport {transport!r}")
        kernel = LiveKernel(make_transport, seed=self.config.seed,
                            name=f"{site_config.name or index}",
                            tracer=self._kernel_tracer)
        return SDVMSite(kernel, self.config, site_config)

    # ------------------------------------------------------------------
    # telemetry: a wall-clock sampler thread (the live twin of
    # SimCluster's virtual-time timer)

    def _start_sampler(self, telemetry) -> None:  # noqa: ANN001
        from repro.trace import HealthMonitor, MetricsSampler
        sink = self._kernel_tracer
        self.health = HealthMonitor(
            telemetry, emit=sink.emit if sink is not None else None)
        self._sampler = MetricsSampler(self, telemetry,
                                       monitor=self.health, mode="live")
        self.metrics = self._sampler.log
        self._sampler_stop = threading.Event()

        def loop(start: float = time.monotonic()) -> None:
            # Samples read manager counters from outside the reactor
            # threads: plain int/float reads, each atomic under CPython.
            # A row may mix values from adjacent instants — fine for
            # health monitoring, never used for gated metrics.
            while not self._sampler_stop.wait(self._sampler.interval):
                self._sampler.sample_once(time.monotonic() - start)

        self._sampler_thread = threading.Thread(
            target=loop, name="sdvm-metrics-sampler", daemon=True)
        self._sampler_thread.start()

    def wall_clock_metrics(self) -> dict:
        """Aggregate uptime/throughput over every site's live kernel."""
        per_site = [site.kernel.wall_clock_metrics()  # type: ignore[attr-defined]
                    for site in self.sites]
        wall = max((m["wall_seconds"] for m in per_site), default=0.0)
        events = sum(m["events_executed"] for m in per_site)
        return {
            "wall_seconds": wall,
            "events_executed": events,
            "events_per_sec": events / wall if wall > 0 else 0.0,
        }

    def _wait_formed(self, timeout: float = JOIN_TIMEOUT) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(site.running for site in self.sites):
                return
            time.sleep(0.005)
        raise SDVMError("cluster did not form in time")

    # ------------------------------------------------------------------
    def add_site(self, site_config: Optional[SiteConfig] = None,
                 transport: str = "inproc") -> SDVMSite:
        """Sign a new site on at runtime (§3.4)."""
        site = self._build_site(len(self.sites),
                                site_config or SiteConfig(
                                    name=f"site{len(self.sites)}"),
                                transport)
        self.sites.append(site)
        bootstrap_addr = self.sites[0].kernel.local_physical()
        site.kernel.reactor_call(  # type: ignore[attr-defined]
            lambda: site.join(bootstrap_addr))
        deadline = time.monotonic() + JOIN_TIMEOUT
        while time.monotonic() < deadline:
            if site.running:
                return site
            time.sleep(0.005)
        raise SDVMError("new site did not join in time")

    def submit(self, program: SDVMProgram, args: tuple = (),
               site_index: int = 0) -> LiveHandle:
        site = self.sites[site_index]
        handle = LiveHandle(program=program, _frontend=site)
        self.handles.append(handle)
        kernel: LiveKernel = site.kernel  # type: ignore[assignment]

        def do_submit() -> int:
            pid = site.submit_program(program, args)

            def on_done(done_pid: int, info: ProgramInfo) -> None:
                if done_pid != pid:
                    return
                handle.result = info.result
                handle.failed = info.failed
                handle.failure = info.failure
                handle._event.set()

            site.program_manager.on_program_done.append(on_done)
            return pid

        handle.pid = kernel.reactor_call(do_submit)
        return handle

    def run(self, program: SDVMProgram, args: tuple = (),
            timeout: float = JOIN_TIMEOUT) -> Any:
        """Submit, wait, and return the result (convenience)."""
        return self.submit(program, args).wait(timeout)

    # ------------------------------------------------------------------
    def sign_off_site(self, index: int,
                      timeout: float = JOIN_TIMEOUT) -> None:
        """Orderly departure of one site, blocking until it has stopped."""
        site = self.sites[index]
        site.kernel.reactor_call(site.sign_off)  # type: ignore[attr-defined]
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if site.stopped:
                return
            time.sleep(0.005)
        raise SDVMError(f"site {index} did not finish signing off")

    def crash_site(self, index: int) -> None:
        self.sites[index].crash()

    def cluster_report(self):  # noqa: ANN201 — repro.trace.ClusterReport
        """Cluster-wide merged stats + derived metrics (``repro stats``)."""
        from repro.trace import aggregate_cluster
        return aggregate_cluster(self)

    def write_chrome_trace(self, path: str) -> int:
        """Export the structured trace for chrome://tracing / Perfetto."""
        if self.tracer is None:
            raise SDVMError(
                "tracing is off — build the cluster with "
                "SDVMConfig(trace=True) to export a Chrome trace")
        from repro.trace import write_chrome_trace
        names = {site.site_id: (site.site_config.name
                                or f"site {site.site_id}")
                 for site in self.sites if site.site_id >= 0}
        return write_chrome_trace(self.tracer, path, site_names=names)

    def shutdown(self) -> None:
        """Stop every site (reverse order so heirs outlive leavers)."""
        if self._sampler_stop is not None:
            self._sampler_stop.set()
            if self._sampler_thread is not None:
                self._sampler_thread.join(timeout=2.0)
        for site in reversed(self.sites):
            if site.stopped:
                continue
            try:
                site.kernel.reactor_call(site.stop, timeout=2.0)  # type: ignore[attr-defined]
            except SDVMError:
                site.crash()

    def __enter__(self) -> "LiveCluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
