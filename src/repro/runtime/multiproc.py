"""Multiprocess deployment: one SDVM site daemon per OS process.

The paper's deployment model is "one daemon per machine"; on a single host
the closest equivalent is one daemon per *process*, connected by real TCP
sockets — which also buys true multi-core parallelism for CPU-bound Python
microthreads (each process has its own GIL).

Typical use (see ``examples/live_multiprocess.py``)::

    frontend = LiveCluster(nsites=1, transport="tcp")   # main process
    addr = frontend.sites[0].kernel.local_physical()
    workers = spawn_workers(3, addr, frontend.config)
    ...
    result = frontend.run(program, args)
    stop_workers(workers)
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional, Sequence

from repro.common.config import SDVMConfig, SiteConfig


def _worker_main(bootstrap_addr: str, config: SDVMConfig,
                 site_config: SiteConfig) -> None:
    """Entry point of a worker process: join the cluster and serve."""
    # imports inside so 'spawn' start method stays cheap in the parent
    from repro.net.tcp import TcpTransport
    from repro.runtime.live_kernel import LiveKernel
    from repro.site.daemon import SDVMSite

    kernel = LiveKernel(
        lambda receiver: TcpTransport(receiver,
                                      config=config.live_transport),
        seed=config.seed, name=site_config.name or "worker")
    site = SDVMSite(kernel, config, site_config)
    kernel.reactor_call(lambda: site.join(bootstrap_addr))
    try:
        while not site.stopped:
            time.sleep(0.05)
    except KeyboardInterrupt:
        pass
    finally:
        if not site.stopped:
            site.crash()


def spawn_workers(count: int, bootstrap_addr: str, config: SDVMConfig,
                  site_configs: Optional[Sequence[SiteConfig]] = None,
                  ) -> List[multiprocessing.Process]:
    """Start ``count`` worker site daemons as child processes.

    Each signs on to the cluster at ``bootstrap_addr``.  The caller should
    give the cluster a moment to form (workers announce themselves via the
    normal sign-on protocol) before submitting work.
    """
    configs = (list(site_configs) if site_configs is not None
               else [SiteConfig(name=f"worker{i}") for i in range(count)])
    processes = []
    for site_config in configs[:count]:
        process = multiprocessing.Process(
            target=_worker_main,
            args=(bootstrap_addr, config, site_config),
            daemon=True,
            name=f"sdvm-{site_config.name}",
        )
        process.start()
        processes.append(process)
    return processes


def stop_workers(processes: List[multiprocessing.Process],
                 timeout: float = 2.0) -> None:
    """Terminate worker processes (the crash-style exit; for an orderly
    departure send them a SHUTDOWN message via the cluster first)."""
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=timeout)


def wait_for_cluster_size(site, expected: int,  # noqa: ANN001
                          timeout: float = 10.0) -> bool:
    """Block until ``site`` knows ``expected`` alive cluster members."""
    kernel = site.kernel
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = kernel.reactor_call(
            lambda: sum(1 for r in site.cluster_manager.sites.values()
                        if r.alive))
        if alive >= expected:
            return True
        time.sleep(0.02)
    return False
