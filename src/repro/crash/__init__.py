"""Crash management (paper §2.2, §6, ref [4]).

"As the SDVM has an automatic backup and recovery mechanism (which uses
checkpointing), even crashes of individual sites may be overcome without
loss of data."

Implemented as a coordinated checkpoint protocol (see DESIGN.md,
"Simplifications"): the coordinator (lowest alive logical id) periodically
runs a wave — pause intake, drain in-flight executions, let in-flight
messages settle, snapshot every site, commit.  On a crash (heartbeat
timeout, detected by the cluster manager) the coordinator rolls every
survivor back to the last committed wave, adopts the dead site's shard, and
resumes; execution epochs fence off effects from pre-recovery executions.
"""

from repro.crash.manager import CrashManager

__all__ = ["CrashManager"]
