"""The crash manager: checkpoint waves, crash detection hooks, recovery."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.common.ids import ManagerId
from repro.messages import MsgType, SDMessage, make_reply
from repro.site.manager_base import Manager

#: attempts per RECOVER_BEGIN/STATE/DONE before giving up on a target;
#: each attempt waits one settle delay for the RECOVER_ACK
_RECOVER_RETRIES = 5


class CrashManager(Manager):
    manager_id = ManagerId.CRASH

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        self._timer = None
        # --- coordinator state ------------------------------------------
        self._wave = 0
        self._acks_pending: Set[int] = set()
        self._states_pending: Set[int] = set()
        self._collected: Dict[int, dict] = {}
        #: last committed snapshot: {site logical: state}, and its wave id
        self.committed_wave = -1
        self.committed: Dict[int, dict] = {}
        #: which coordinator produced ``committed`` (-1: none yet) — used
        #: to fence stale CHECKPOINT_REPLICA duplicates without rejecting
        #: a successor coordinator's restarted wave numbering
        self.committed_src = -1
        self._recovering = False
        #: crashes observed while a recovery is in flight; drained one at
        #: a time so recoveries never interleave
        self._crash_queue: List[int] = []
        #: bumped per recovery — fences the settle-delay continuation
        #: timers of an older recovery
        self._recover_seq = 0
        #: (epoch, shard) pairs already adopted (duplicate-delivery fence)
        self._recover_shards_applied: Set[tuple] = set()
        #: (wave, coordinator) while waiting for local executions to drain
        self._pending_ack: Optional[tuple] = None
        #: participant: highest committed/aborted wave seen per coordinator
        #: (fences a CHECKPOINT_BEGIN that a smaller, faster COMMIT overtook
        #: on the wire — pausing for a finished wave would wedge the site)
        self._finished_waves: Dict[int, int] = {}
        #: when the in-flight wave started (coordinator, for wave_seconds)
        self._wave_started_at = 0.0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.config.checkpoint.enabled

    def is_coordinator(self) -> bool:
        """Lowest alive *reliable* site coordinates (§2.2: the reliable
        core intercepts crashes of unsafe sites); if the whole cluster is
        unreliable, fall back to the lowest alive site."""
        records = [r for r in self.site.cluster_manager.sites.values()
                   if r.alive]
        if not records:
            return False
        reliable = [r.logical for r in records if r.reliable]
        pool = reliable if reliable else [r.logical for r in records]
        return self.local_id == min(pool)

    def _settle_delay(self) -> float:
        # long enough for every pre-pause message to land
        return 6.0 * self.config.network.latency + 2e-3

    # ------------------------------------------------------------------
    # periodic checkpoint waves (coordinator only)

    def on_start(self) -> None:
        if self.enabled:
            self._schedule_wave()

    def _schedule_wave(self) -> None:
        self._timer = self.kernel.call_later(self.config.checkpoint.interval,
                                             self._wave_tick)

    def _wave_tick(self) -> None:
        self._timer = None
        if not self.site.running:
            return
        if (self.is_coordinator() and not self._recovering
                and self.site.program_manager.has_active_programs()
                and not self._wave_blocking()):
            self.start_checkpoint()
        self._schedule_wave()

    def _wave_blocking(self) -> bool:
        """True while the in-flight wave should hold off the next one.

        Collecting n snapshot messages is O(n) wire time, so past a
        couple hundred sites a wave outlives the tick interval — naively
        restarting every tick would supersede it forever and no
        checkpoint would EVER commit (then the first real crash fails
        every program for want of a checkpoint).  A wave stuck past the
        grace window (e.g. a participant left mid-wave without a crash
        being declared) must not wedge checkpointing either, so an aged
        wave stops blocking and the next tick supersedes it.
        """
        if not self._acks_pending and not self._states_pending:
            return False
        age = self.kernel.now - self._wave_started_at
        return age < 5.0 * self.config.checkpoint.interval

    def open_wave_age(self, now: float) -> float:
        """Seconds the coordinator's current wave has been awaiting
        ACKs/STATEs; 0.0 when no wave is open here.

        The telemetry sampler's wave-stall observable: a healthy wave
        closes within milliseconds, so a growing age is the in-run
        signature of the never-committing-wave bug class that
        :meth:`_wave_blocking`'s grace window papers over post-hoc.
        """
        if self._acks_pending or self._states_pending:
            return now - self._wave_started_at
        return 0.0

    def start_checkpoint(self) -> None:
        """Coordinator: begin a checkpoint wave across all alive sites."""
        self._wave += 1
        alive = [r.logical for r in self.site.cluster_manager.sites.values()
                 if r.alive]
        self._acks_pending = set(alive)
        self._states_pending = set(alive)
        self._collected = {}
        self._wave_started_at = self.kernel.now
        self.stats.inc("waves_started")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "wave_begin",
                    self._wave, len(alive))
        for logical in alive:
            self._send_ctrl(logical, MsgType.CHECKPOINT_BEGIN,
                            {"wave": self._wave, "phase": "pause"})

    def _send_ctrl(self, logical: int, mtype: MsgType,
                   payload: dict) -> None:
        if logical == self.local_id:
            self._handle_ctrl(mtype, dict(payload), self.local_id)
            return
        self.site.message_manager.send(SDMessage(
            type=mtype,
            src_site=self.local_id, src_manager=ManagerId.CRASH,
            dst_site=logical, dst_manager=ManagerId.CRASH,
            payload=payload,
        ))

    # ------------------------------------------------------------------
    # participant side

    def _on_pause(self, wave: int, coordinator: int) -> None:
        if wave <= self._finished_waves.get(coordinator, -1):
            # the wave already committed or aborted — its COMMIT overtook
            # this pause (message delay scales with size, and a commit is
            # smaller than a pause); obeying it now would pause us forever
            self.stats.inc("stale_pauses_ignored")
            return
        self.site.paused = True
        self._pending_ack = (wave, coordinator)
        self.maybe_ack_drained()

    def maybe_ack_drained(self) -> None:
        """Called by the processing manager as executions complete."""
        pending = self._pending_ack
        if pending is None or not self.site.paused:
            return
        if self.site.processing_manager.in_flight > 0:
            return
        wave, coordinator = pending
        self._pending_ack = None
        self._send_ctrl(coordinator, MsgType.CHECKPOINT_ACK, {"wave": wave})

    def _on_snapshot_request(self, wave: int, coordinator: int) -> None:
        from repro.serde import dumps, loads
        # deep-copy through the wire codec: frame parameters hold live
        # references to application values (e.g. a mutable state dict that
        # keeps evolving after the wave) — a by-reference snapshot would be
        # an inconsistent cut.  Remote shards get this copy for free when
        # the message encodes; the coordinator's own shard does not.
        state = loads(dumps(self.site.attraction_memory.export_checkpoint()))
        self._send_ctrl(coordinator, MsgType.CHECKPOINT_STATE,
                        {"wave": wave, "state": state,
                         "site": self.local_id})

    def _on_commit(self, wave: int, src: int, aborted: bool = False) -> None:
        if wave >= 0:
            self._finished_waves[src] = max(
                self._finished_waves.get(src, -1), wave)
        self.site.paused = False
        self._pending_ack = None
        if aborted:
            self.stats.inc("waves_aborted_observed")
        else:
            self.stats.inc("waves_committed")
        self.site.processing_manager.kick()
        self.site.scheduling_manager.kick()

    # ------------------------------------------------------------------
    # coordinator collection

    def _on_ack(self, wave: int, src: int) -> None:
        if wave != self._wave or src not in self._acks_pending:
            # stale wave, or a duplicate delivery of an ack already
            # counted — re-entering the empty-set branch would launch a
            # second snapshot round for the same wave
            return
        self._acks_pending.discard(src)
        if not self._acks_pending:
            self.kernel.call_later(self._settle_delay(),
                                   self._request_snapshots, wave)

    def _request_snapshots(self, wave: int) -> None:
        if wave != self._wave or not self.site.running:
            return
        for logical in list(self._states_pending):
            self._send_ctrl(logical, MsgType.CHECKPOINT_BEGIN,
                            {"wave": wave, "phase": "snapshot"})

    def _on_state(self, wave: int, src: int, state: dict) -> None:
        if wave != self._wave or src not in self._states_pending:
            # stale wave, or a duplicated snapshot arriving after the wave
            # committed — without this fence the duplicate re-commits the
            # same wave and re-broadcasts CHECKPOINT_COMMIT
            return
        self._collected[src] = state
        self._states_pending.discard(src)
        if not self._states_pending:
            self.committed_wave = wave
            self.committed = dict(self._collected)
            self.committed_src = self.local_id
            self.stats.inc("checkpoints_committed")
            self.stats.add("wave_seconds",
                           self.kernel.now - self._wave_started_at)
            tr = self.tracer
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "wave_commit",
                        wave, len(self.committed))
            for logical in list(self.committed):
                self._send_ctrl(logical, MsgType.CHECKPOINT_COMMIT,
                                {"wave": wave})
            self._replicate_snapshot(wave)

    # ------------------------------------------------------------------
    # snapshot replication (coordinator-crash survival)

    def _backup_sites(self) -> List[int]:
        """The next ``checkpoint.replicas`` coordinator-successors."""
        records = [r for r in self.site.cluster_manager.sites.values()
                   if r.alive and r.logical != self.local_id]
        reliable = [r for r in records if r.reliable]
        pool = reliable if reliable else records
        pool.sort(key=lambda r: r.logical)
        return [r.logical
                for r in pool[:max(0, self.config.checkpoint.replicas)]]

    def _replicate_snapshot(self, wave: int) -> None:
        """Copy the committed snapshot onto backup sites.

        Without this, the last good checkpoint dies with its coordinator
        and the succeeding coordinator (lowest alive site) could only
        declare the programs failed; with a replica it drives rollback
        recovery itself.  Shards travel as a (site, state) pair list —
        message payload dicts are keyed by strings on the wire.
        """
        shards = [[shard_site, state]
                  for shard_site, state in self.committed.items()]
        for logical in self._backup_sites():
            self._send_ctrl(logical, MsgType.CHECKPOINT_REPLICA,
                            {"wave": wave, "shards": shards})

    def _on_replica(self, wave: int, shards: list, src: int) -> None:
        if src == self.committed_src and wave <= self.committed_wave:
            # duplicate or out-of-order copy from the same coordinator; a
            # *new* coordinator restarts wave numbering, so only same-src
            # copies are comparable
            self.stats.inc("stale_replicas_ignored")
            return
        self.committed_wave = wave
        self.committed = {int(shard_site): state
                          for shard_site, state in shards}
        self.committed_src = src
        self.stats.inc("replicas_adopted")

    def _abort_wave(self, reason: str) -> Optional[int]:
        """Coordinator: cancel the in-flight checkpoint wave, if any.

        A participant that dies between CHECKPOINT_ACK and CHECKPOINT_STATE
        leaves ``_states_pending`` non-empty forever — the wave would never
        commit and every paused participant would stay wedged.  Bumping
        ``_wave`` fences all stale ACK/STATE traffic (both collectors guard
        on the current wave id); the pending sets are cleared so the next
        wave starts clean.  Returns the aborted wave id, or None if no
        wave was in flight.
        """
        if (not self._acks_pending and not self._states_pending
                and not self._collected):
            return None
        aborted = self._wave
        self.log("aborting checkpoint wave %d: %s", aborted, reason)
        self.stats.inc("waves_aborted")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "wave_abort",
                    aborted, reason)
        self._wave += 1
        self._acks_pending = set()
        self._states_pending = set()
        self._collected = {}
        return aborted

    def _resume_participants(self, wave: int) -> None:
        """Unpause every alive site after an aborted wave (no recovery).

        Carries the aborted wave id so participants can fence a
        CHECKPOINT_BEGIN pause of that wave that is still in flight.
        """
        for record in self.site.cluster_manager.sites.values():
            if record.alive:
                self._send_ctrl(record.logical, MsgType.CHECKPOINT_COMMIT,
                                {"wave": wave, "aborted": True})

    # ------------------------------------------------------------------
    # crash handling

    def on_site_dead(self, logical: int, orderly: bool) -> None:
        """Cluster manager reports a peer gone.

        Orderly sign-offs relocated their state already; real crashes
        trigger rollback recovery from the last committed checkpoint.
        """
        if orderly or not self.site.running:
            return
        self.log("suspecting site %d crashed; entering recovery path",
                 logical)
        self.stats.inc("crashes_observed")
        if not self.is_coordinator():
            return
        if self._recovering:
            # serialize: starting a second recovery now would interleave
            # RECOVER_BEGIN/STATE/DONE waves, and the first recovery's
            # finish timer would unpause survivors mid-rollback
            if logical not in self._crash_queue:
                self._crash_queue.append(logical)
                self.stats.inc("crashes_queued")
            return
        self._handle_crash(logical)

    def _handle_crash(self, logical: int) -> None:
        # a wave the dead site participated in can never finish — abort it
        # before recovery so stale ACK/STATE traffic is fenced out
        aborted = self._abort_wave(f"site {logical} died mid-wave")
        if self.committed_wave < 0:
            # §2.2: without a checkpoint, the damage cannot be undone
            self.log("site %d crashed with no committed checkpoint; "
                     "failing active programs", logical)
            for info in list(self.site.program_manager.programs.values()):
                if not info.terminated:
                    self.site.program_manager.local_exit(
                        info.pid, None, failed=True,
                        failure=f"site {logical} crashed; no checkpoint")
            if aborted is not None:
                # no recovery wave will unpause the survivors — do it here
                self._resume_participants(aborted)
            return
        self._start_recovery(dead=logical)

    def _start_recovery(self, dead: int) -> None:
        self._recovering = True
        self._recover_seq += 1
        self.stats.inc("recoveries")
        alive = [r.logical for r in self.site.cluster_manager.sites.values()
                 if r.alive]
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "recovery_begin",
                    self.site.epoch + 1, dead)
        # compute the new epoch once — handling our own RECOVER_BEGIN below
        # bumps self.site.epoch, so an inline read would skew later sends
        new_epoch = self.site.epoch + 1
        for logical in alive:
            self._send_recover(logical, MsgType.RECOVER_BEGIN,
                               {"epoch": new_epoch, "dead": dead,
                                "heir": self.local_id})
        self.kernel.call_later(self._settle_delay(),
                               self._distribute_snapshot, dead, set(alive),
                               self._recover_seq)

    def _send_recover(self, logical: int, mtype: MsgType, payload: dict,
                      attempt: int = 0) -> None:
        """Send recovery control with ack+retry.

        RECOVER_BEGIN/STATE/DONE are fire-and-forget no longer: under a
        lossy transport a single dropped RECOVER_DONE left the survivor
        paused forever.  Each send expects a RECOVER_ACK within one settle
        delay and is re-sent up to ``_RECOVER_RETRIES`` times; retries to
        a target that has since been marked dead are suppressed.
        """
        if logical == self.local_id:
            self._handle_ctrl(mtype, dict(payload), self.local_id)
            return
        if not self.site.running:
            return
        record = self.site.cluster_manager.sites.get(logical)
        if record is None or not record.alive:
            return
        msg = SDMessage(
            type=mtype,
            src_site=self.local_id, src_manager=ManagerId.CRASH,
            dst_site=logical, dst_manager=ManagerId.CRASH,
            payload=dict(payload),
        )

        def on_timeout() -> None:
            if attempt + 1 >= _RECOVER_RETRIES:
                self.stats.inc("recover_retries_exhausted")
                self.log("giving up on %s to site %d after %d attempts",
                         mtype.name, logical, attempt + 1)
                return
            self.stats.inc("recover_retries")
            self._send_recover(logical, mtype, payload, attempt + 1)

        self.site.message_manager.request(
            msg, on_reply=lambda reply: None,
            timeout=self._settle_delay(), on_timeout=on_timeout)

    def _on_recover_begin(self, payload: dict) -> bool:
        epoch = payload["epoch"]
        if epoch <= self.site.epoch:
            # duplicate delivery or a retry of a recovery we already
            # entered — re-applying would wipe restored state
            self.stats.inc("stale_recover_begin")
            return True
        self.site.epoch = epoch
        self.site.paused = True
        # forget any ack owed to a pre-recovery wave: the wave is dead, and
        # a drain-triggered stale ACK would confuse the next coordinator
        self._pending_ack = None
        dead = payload["dead"]
        heir = payload["heir"]
        # reset before recording the death: the membership hooks republish
        # owned directory state, and pre-rollback state must not leak into
        # the post-recovery directory
        self.site.reset_program_state()
        self.site.cluster_manager.note_record_dead(dead, heir)
        return True

    def _distribute_snapshot(self, dead: int, alive: Set[int],
                             seq: int) -> None:
        if seq != self._recover_seq or not self._recovering:
            return  # superseded by a newer recovery
        epoch = self.site.epoch  # our own RECOVER_BEGIN already bumped it
        for shard_site, state in self.committed.items():
            target = shard_site if shard_site in alive else self.local_id
            self._send_recover(target, MsgType.RECOVER_STATE,
                               {"state": state, "epoch": epoch,
                                "shard": shard_site})
        self.kernel.call_later(self._settle_delay(), self._finish_recovery,
                               alive, seq)

    def _finish_recovery(self, alive: Set[int], seq: int) -> None:
        if seq != self._recover_seq or not self._recovering:
            return
        self._recovering = False
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "recovery_done",
                    self.site.epoch)
        for logical in alive:
            self._send_recover(logical, MsgType.RECOVER_DONE,
                               {"epoch": self.site.epoch})
        self._drain_crash_queue()

    def _drain_crash_queue(self) -> None:
        """Start the next queued recovery, if any (serial execution)."""
        while self._crash_queue and not self._recovering:
            if not self.site.running or not self.is_coordinator():
                self._crash_queue.clear()
                return
            self._handle_crash(self._crash_queue.pop(0))

    def _on_recover_state(self, payload: dict) -> bool:
        epoch = payload.get("epoch", self.site.epoch)
        if epoch > self.site.epoch:
            # our RECOVER_BEGIN is still in flight (lost or delayed) —
            # withhold the ack so the coordinator keeps retrying until we
            # have actually entered the new epoch
            self.stats.inc("early_recover_state")
            return False
        if epoch < self.site.epoch:
            self.stats.inc("stale_recover_state")
            return True
        key = (epoch, payload.get("shard", -1))
        if key in self._recover_shards_applied:
            self.stats.inc("duplicate_recover_state")
            return True
        self._recover_shards_applied.add(key)
        self.site.attraction_memory.adopt_state(payload["state"])
        return True

    def _on_recover_done(self, payload: dict) -> bool:
        epoch = payload.get("epoch", self.site.epoch)
        if epoch > self.site.epoch:
            self.stats.inc("early_recover_done")
            return False
        if epoch < self.site.epoch:
            # DONE of an older recovery arriving late — unpausing now
            # would resume us in the middle of the newer one
            self.stats.inc("stale_recover_done")
            return True
        self.site.paused = False
        self.stats.inc("recoveries_completed")
        self.site.processing_manager.kick()
        self.site.scheduling_manager.kick()
        return True

    # ------------------------------------------------------------------
    #: control kinds that carry an ack+retry contract
    _RECOVER_CTRL = frozenset({MsgType.RECOVER_BEGIN, MsgType.RECOVER_STATE,
                               MsgType.RECOVER_DONE})

    def handle(self, msg: SDMessage) -> None:
        if msg.type == MsgType.RECOVER_ACK:
            # unsolicited ack (its request timed out first): the retry is
            # already in flight and will be deduped on arrival
            self.stats.inc("late_recover_acks")
            return
        ack = self._handle_ctrl(msg.type, msg.payload, msg.src_site)
        if (msg.type in self._RECOVER_CTRL and ack is not False
                and msg.src_site != self.local_id):
            self.site.message_manager.send(
                make_reply(msg, MsgType.RECOVER_ACK, {}))

    def _handle_ctrl(self, mtype: MsgType, payload: dict,
                     src: int) -> Optional[bool]:
        if mtype == MsgType.CHECKPOINT_BEGIN:
            if payload["phase"] == "pause":
                self._on_pause(payload["wave"], src)
            else:
                self._on_snapshot_request(payload["wave"], src)
        elif mtype == MsgType.CHECKPOINT_ACK:
            self._on_ack(payload["wave"], src)
        elif mtype == MsgType.CHECKPOINT_STATE:
            self._on_state(payload["wave"], payload["site"],
                           payload["state"])
        elif mtype == MsgType.CHECKPOINT_COMMIT:
            self._on_commit(payload["wave"], src,
                            payload.get("aborted", False))
        elif mtype == MsgType.CHECKPOINT_REPLICA:
            self._on_replica(payload["wave"], payload["shards"], src)
        elif mtype == MsgType.RECOVER_BEGIN:
            return self._on_recover_begin(payload)
        elif mtype == MsgType.RECOVER_STATE:
            return self._on_recover_state(payload)
        elif mtype == MsgType.RECOVER_DONE:
            return self._on_recover_done(payload)
        else:
            raise_unexpected = super().handle
            raise_unexpected(SDMessage(
                type=mtype, src_site=src, src_manager=ManagerId.CRASH,
                dst_site=self.local_id, dst_manager=ManagerId.CRASH))

    def on_stop(self) -> None:
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def status(self) -> dict:
        base = super().status()
        base["committed_wave"] = self.committed_wave
        base["recovering"] = self._recovering
        base["queued_crashes"] = len(self._crash_queue)
        return base
