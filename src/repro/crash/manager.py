"""The crash manager: checkpoint waves, crash detection hooks, recovery."""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.common.ids import ManagerId
from repro.messages import MsgType, SDMessage
from repro.site.manager_base import Manager


class CrashManager(Manager):
    manager_id = ManagerId.CRASH

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        self._timer = None
        # --- coordinator state ------------------------------------------
        self._wave = 0
        self._acks_pending: Set[int] = set()
        self._states_pending: Set[int] = set()
        self._collected: Dict[int, dict] = {}
        #: last committed snapshot: {site logical: state}, and its wave id
        self.committed_wave = -1
        self.committed: Dict[int, dict] = {}
        self._recovering = False
        #: (wave, coordinator) while waiting for local executions to drain
        self._pending_ack: Optional[tuple] = None
        #: participant: highest committed/aborted wave seen per coordinator
        #: (fences a CHECKPOINT_BEGIN that a smaller, faster COMMIT overtook
        #: on the wire — pausing for a finished wave would wedge the site)
        self._finished_waves: Dict[int, int] = {}
        #: when the in-flight wave started (coordinator, for wave_seconds)
        self._wave_started_at = 0.0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.config.checkpoint.enabled

    def is_coordinator(self) -> bool:
        """Lowest alive *reliable* site coordinates (§2.2: the reliable
        core intercepts crashes of unsafe sites); if the whole cluster is
        unreliable, fall back to the lowest alive site."""
        records = [r for r in self.site.cluster_manager.sites.values()
                   if r.alive]
        if not records:
            return False
        reliable = [r.logical for r in records if r.reliable]
        pool = reliable if reliable else [r.logical for r in records]
        return self.local_id == min(pool)

    def _settle_delay(self) -> float:
        # long enough for every pre-pause message to land
        return 6.0 * self.config.network.latency + 2e-3

    # ------------------------------------------------------------------
    # periodic checkpoint waves (coordinator only)

    def on_start(self) -> None:
        if self.enabled:
            self._schedule_wave()

    def _schedule_wave(self) -> None:
        self._timer = self.kernel.call_later(self.config.checkpoint.interval,
                                             self._wave_tick)

    def _wave_tick(self) -> None:
        self._timer = None
        if not self.site.running:
            return
        if (self.is_coordinator() and not self._recovering
                and self.site.program_manager.has_active_programs()):
            self.start_checkpoint()
        self._schedule_wave()

    def start_checkpoint(self) -> None:
        """Coordinator: begin a checkpoint wave across all alive sites."""
        self._wave += 1
        alive = [r.logical for r in self.site.cluster_manager.sites.values()
                 if r.alive]
        self._acks_pending = set(alive)
        self._states_pending = set(alive)
        self._collected = {}
        self._wave_started_at = self.kernel.now
        self.stats.inc("waves_started")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "wave_begin",
                    self._wave, len(alive))
        for logical in alive:
            self._send_ctrl(logical, MsgType.CHECKPOINT_BEGIN,
                            {"wave": self._wave, "phase": "pause"})

    def _send_ctrl(self, logical: int, mtype: MsgType,
                   payload: dict) -> None:
        if logical == self.local_id:
            self._handle_ctrl(mtype, dict(payload), self.local_id)
            return
        self.site.message_manager.send(SDMessage(
            type=mtype,
            src_site=self.local_id, src_manager=ManagerId.CRASH,
            dst_site=logical, dst_manager=ManagerId.CRASH,
            payload=payload,
        ))

    # ------------------------------------------------------------------
    # participant side

    def _on_pause(self, wave: int, coordinator: int) -> None:
        if wave <= self._finished_waves.get(coordinator, -1):
            # the wave already committed or aborted — its COMMIT overtook
            # this pause (message delay scales with size, and a commit is
            # smaller than a pause); obeying it now would pause us forever
            self.stats.inc("stale_pauses_ignored")
            return
        self.site.paused = True
        self._pending_ack = (wave, coordinator)
        self.maybe_ack_drained()

    def maybe_ack_drained(self) -> None:
        """Called by the processing manager as executions complete."""
        pending = self._pending_ack
        if pending is None or not self.site.paused:
            return
        if self.site.processing_manager.in_flight > 0:
            return
        wave, coordinator = pending
        self._pending_ack = None
        self._send_ctrl(coordinator, MsgType.CHECKPOINT_ACK, {"wave": wave})

    def _on_snapshot_request(self, wave: int, coordinator: int) -> None:
        from repro.serde import dumps, loads
        # deep-copy through the wire codec: frame parameters hold live
        # references to application values (e.g. a mutable state dict that
        # keeps evolving after the wave) — a by-reference snapshot would be
        # an inconsistent cut.  Remote shards get this copy for free when
        # the message encodes; the coordinator's own shard does not.
        state = loads(dumps(self.site.attraction_memory.export_checkpoint()))
        self._send_ctrl(coordinator, MsgType.CHECKPOINT_STATE,
                        {"wave": wave, "state": state,
                         "site": self.local_id})

    def _on_commit(self, wave: int, src: int, aborted: bool = False) -> None:
        if wave >= 0:
            self._finished_waves[src] = max(
                self._finished_waves.get(src, -1), wave)
        self.site.paused = False
        self._pending_ack = None
        if aborted:
            self.stats.inc("waves_aborted_observed")
        else:
            self.stats.inc("waves_committed")
        self.site.processing_manager.kick()
        self.site.scheduling_manager.kick()

    # ------------------------------------------------------------------
    # coordinator collection

    def _on_ack(self, wave: int, src: int) -> None:
        if wave != self._wave:
            return
        self._acks_pending.discard(src)
        if not self._acks_pending:
            self.kernel.call_later(self._settle_delay(),
                                   self._request_snapshots, wave)

    def _request_snapshots(self, wave: int) -> None:
        if wave != self._wave or not self.site.running:
            return
        for logical in list(self._states_pending):
            self._send_ctrl(logical, MsgType.CHECKPOINT_BEGIN,
                            {"wave": wave, "phase": "snapshot"})

    def _on_state(self, wave: int, src: int, state: dict) -> None:
        if wave != self._wave:
            return
        self._collected[src] = state
        self._states_pending.discard(src)
        if not self._states_pending:
            self.committed_wave = wave
            self.committed = dict(self._collected)
            self.stats.inc("checkpoints_committed")
            self.stats.add("wave_seconds",
                           self.kernel.now - self._wave_started_at)
            tr = self.tracer
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "wave_commit",
                        wave, len(self.committed))
            for logical in list(self.committed):
                self._send_ctrl(logical, MsgType.CHECKPOINT_COMMIT,
                                {"wave": wave})

    def _abort_wave(self, reason: str) -> Optional[int]:
        """Coordinator: cancel the in-flight checkpoint wave, if any.

        A participant that dies between CHECKPOINT_ACK and CHECKPOINT_STATE
        leaves ``_states_pending`` non-empty forever — the wave would never
        commit and every paused participant would stay wedged.  Bumping
        ``_wave`` fences all stale ACK/STATE traffic (both collectors guard
        on the current wave id); the pending sets are cleared so the next
        wave starts clean.  Returns the aborted wave id, or None if no
        wave was in flight.
        """
        if (not self._acks_pending and not self._states_pending
                and not self._collected):
            return None
        aborted = self._wave
        self.log("aborting checkpoint wave %d: %s", aborted, reason)
        self.stats.inc("waves_aborted")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "wave_abort",
                    aborted, reason)
        self._wave += 1
        self._acks_pending = set()
        self._states_pending = set()
        self._collected = {}
        return aborted

    def _resume_participants(self, wave: int) -> None:
        """Unpause every alive site after an aborted wave (no recovery).

        Carries the aborted wave id so participants can fence a
        CHECKPOINT_BEGIN pause of that wave that is still in flight.
        """
        for record in self.site.cluster_manager.sites.values():
            if record.alive:
                self._send_ctrl(record.logical, MsgType.CHECKPOINT_COMMIT,
                                {"wave": wave, "aborted": True})

    # ------------------------------------------------------------------
    # crash handling

    def on_site_dead(self, logical: int, orderly: bool) -> None:
        """Cluster manager reports a peer gone.

        Orderly sign-offs relocated their state already; real crashes
        trigger rollback recovery from the last committed checkpoint.
        """
        if orderly or not self.site.running:
            return
        self.log("suspecting site %d crashed; entering recovery path",
                 logical)
        self.stats.inc("crashes_observed")
        if not self.is_coordinator():
            return
        # a wave the dead site participated in can never finish — abort it
        # before recovery so stale ACK/STATE traffic is fenced out
        aborted = self._abort_wave(f"site {logical} died mid-wave")
        if self.committed_wave < 0:
            # §2.2: without a checkpoint, the damage cannot be undone
            self.log("site %d crashed with no committed checkpoint; "
                     "failing active programs", logical)
            for info in list(self.site.program_manager.programs.values()):
                if not info.terminated:
                    self.site.program_manager.local_exit(
                        info.pid, None, failed=True,
                        failure=f"site {logical} crashed; no checkpoint")
            if aborted is not None:
                # no recovery wave will unpause the survivors — do it here
                self._resume_participants(aborted)
            return
        self._start_recovery(dead=logical)

    def _start_recovery(self, dead: int) -> None:
        self._recovering = True
        self.stats.inc("recoveries")
        alive = [r.logical for r in self.site.cluster_manager.sites.values()
                 if r.alive]
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "recovery_begin",
                    self.site.epoch + 1, dead)
        # compute the new epoch once — handling our own RECOVER_BEGIN below
        # bumps self.site.epoch, so an inline read would skew later sends
        new_epoch = self.site.epoch + 1
        for logical in alive:
            self._send_ctrl(logical, MsgType.RECOVER_BEGIN,
                            {"epoch": new_epoch, "dead": dead,
                             "heir": self.local_id})
        self.kernel.call_later(self._settle_delay(),
                               self._distribute_snapshot, dead, set(alive))

    def _on_recover_begin(self, payload: dict) -> None:
        self.site.epoch = payload["epoch"]
        self.site.paused = True
        # forget any ack owed to a pre-recovery wave: the wave is dead, and
        # a drain-triggered stale ACK would confuse the next coordinator
        self._pending_ack = None
        dead = payload["dead"]
        heir = payload["heir"]
        record = self.site.cluster_manager.sites.get(dead)
        if record is not None:
            record.alive = False
            record.heir = heir
        self.site.reset_program_state()

    def _distribute_snapshot(self, dead: int, alive: Set[int]) -> None:
        for shard_site, state in self.committed.items():
            target = shard_site if shard_site in alive else self.local_id
            self._send_ctrl(target, MsgType.RECOVER_STATE, {"state": state})
        self.kernel.call_later(self._settle_delay(), self._finish_recovery,
                               alive)

    def _finish_recovery(self, alive: Set[int]) -> None:
        self._recovering = False
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "recovery_done",
                    self.site.epoch)
        for logical in alive:
            self._send_ctrl(logical, MsgType.RECOVER_DONE, {})

    def _on_recover_state(self, state: dict) -> None:
        self.site.attraction_memory.adopt_state(state)

    def _on_recover_done(self) -> None:
        self.site.paused = False
        self.stats.inc("recoveries_completed")
        self.site.processing_manager.kick()
        self.site.scheduling_manager.kick()

    # ------------------------------------------------------------------
    def handle(self, msg: SDMessage) -> None:
        self._handle_ctrl(msg.type, msg.payload, msg.src_site)

    def _handle_ctrl(self, mtype: MsgType, payload: dict, src: int) -> None:
        if mtype == MsgType.CHECKPOINT_BEGIN:
            if payload["phase"] == "pause":
                self._on_pause(payload["wave"], src)
            else:
                self._on_snapshot_request(payload["wave"], src)
        elif mtype == MsgType.CHECKPOINT_ACK:
            self._on_ack(payload["wave"], src)
        elif mtype == MsgType.CHECKPOINT_STATE:
            self._on_state(payload["wave"], payload["site"],
                           payload["state"])
        elif mtype == MsgType.CHECKPOINT_COMMIT:
            self._on_commit(payload["wave"], src,
                            payload.get("aborted", False))
        elif mtype == MsgType.RECOVER_BEGIN:
            self._on_recover_begin(payload)
        elif mtype == MsgType.RECOVER_STATE:
            self._on_recover_state(payload["state"])
        elif mtype == MsgType.RECOVER_DONE:
            self._on_recover_done()
        else:
            raise_unexpected = super().handle
            raise_unexpected(SDMessage(
                type=mtype, src_site=src, src_manager=ManagerId.CRASH,
                dst_site=self.local_id, dst_manager=ManagerId.CRASH))

    def on_stop(self) -> None:
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def status(self) -> dict:
        base = super().status()
        base["committed_wave"] = self.committed_wave
        base["recovering"] = self._recovering
        return base
