"""Command-line interface for the SDVM reproduction.

Usage (installed as a module)::

    python -m repro.cli apps                      # list bundled programs
    python -m repro.cli run primes --sites 8 --args 100 10
    python -m repro.cli run matmul --sites 4 --args 24 6 --trace
    python -m repro.cli run mergesort --sites 4 --args 2000 64 1 --invoice
    python -m repro.cli trace primes --sites 4 --out primes.json
    python -m repro.cli stats primes --sites 4
    python -m repro.cli blame primes --sites 8    # where did the time go?
    python -m repro.cli critical-path primes --sites 8
    python -m repro.cli run primes --metrics-json run.metrics.jsonl
    python -m repro.cli health run.metrics.jsonl  # stall detectors
    python -m repro.cli top run.metrics.jsonl --key busy_frac
    python -m repro.cli bench --check             # regression gate
    python -m repro.cli profile primes --sites 2  # cProfile hot spots
    python -m repro.cli profile --suite scaling --sites 256
    python -m repro.cli sweep --sites 1,8 --seeds 0:4 --workers 8
    python -m repro.cli table1 --p 100            # one Table-1 row

``run`` builds a simulated cluster, executes the program, prints its
frontend output, result summary, and (optionally) a timeline and invoice.
``trace`` exports a Chrome/Perfetto trace of the run; ``stats`` prints the
cluster-wide metrics report (derived steal/code-cache/checkpoint ratios).
``blame`` attributes every site-second of the run to a category (compute,
steal-wait, code-fetch, checkpoint-pause, message-latency, idle) from the
causal trace; ``critical-path`` walks the causal chain that determined
the end-to-end runtime.  ``bench`` runs the deterministic gate suites,
writes ``BENCH_<suite>.json`` artifacts, and with ``--check`` diffs them
against the committed baselines (non-zero exit on regression).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.config import (
    CostModel,
    SchedulingConfig,
    SDVMConfig,
    SecurityConfig,
    TelemetryConfig,
)
from repro.site.simcluster import SimCluster

#: bundled applications: name -> (builder, default args, arg docs)
APPS: Dict[str, tuple] = {
    "primes": ("repro.apps.primes", "build_primes_program",
               (100, 10, 400.0, 4000.0), "p width scale base"),
    "primes-rounds": ("repro.apps.primes_rounds",
                      "build_primes_rounds_program",
                      (100, 10, 400.0, 4000.0), "p width scale base"),
    "matmul": ("repro.apps.matmul", "build_matmul_program",
               (16, 4), "n block"),
    "mergesort": ("repro.apps.mergesort", "build_mergesort_program",
                  (1000, 64, 42), "n cutoff seed"),
    "mandelbrot": ("repro.apps.mandelbrot", "build_mandelbrot_program",
                   (60, 20, 60), "width height max_iter"),
    "stencil": ("repro.apps.stencil", "build_stencil_program",
                (16, 4, 20), "n strips steps"),
}


def _load_app(name: str):
    import importlib
    module_name, builder_name, defaults, _docs = APPS[name]
    module = importlib.import_module(module_name)
    return getattr(module, builder_name)(), defaults


def _coerce_args(raw: Sequence[str], defaults: tuple) -> tuple:
    """Coerce CLI argument strings to the defaults' types, padding with
    defaults for anything omitted."""
    out = []
    for index, default in enumerate(defaults):
        if index < len(raw):
            out.append(type(default)(raw[index]))
        else:
            out.append(default)
    return tuple(out)


def _build_config(args: argparse.Namespace,
                  trace: bool = False) -> SDVMConfig:
    telemetry = TelemetryConfig()
    if getattr(args, "metrics_json", ""):
        telemetry = TelemetryConfig(metrics_enabled=True,
                                    metrics_interval=getattr(
                                        args, "metrics_interval", 0.05))
    return SDVMConfig(
        cost=CostModel(compile_fixed_cost=1e-3),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0),
        security=SecurityConfig(enabled=getattr(args, "encrypt", False)),
        journal=getattr(args, "trace", False),
        trace=trace,
        telemetry=telemetry,
        seed=args.seed,
    )


def _run_app(args: argparse.Namespace, out,  # noqa: ANN001
             trace: bool = False):
    """Build a sim cluster, run the requested app, return (cluster, handle).

    Shared by ``run``, ``trace``, and ``stats``; returns (None, None) after
    printing a hint when the app name is unknown.
    """
    if args.app not in APPS:
        print(f"unknown app {args.app!r}; try: {', '.join(APPS)}",
              file=out)
        return None, None
    program, defaults = _load_app(args.app)
    app_args = _coerce_args(args.args, defaults)
    cluster = SimCluster(nsites=args.sites,
                         config=_build_config(args, trace=trace))
    handle = cluster.submit(program, args=app_args)
    cluster.run(progress_timeout=600.0)
    return cluster, handle


def cmd_apps(_args: argparse.Namespace, out) -> int:  # noqa: ANN001
    print("bundled SDVM applications:", file=out)
    for name, (_m, _b, defaults, docs) in APPS.items():
        print(f"  {name:14s} args: {docs}  (defaults: "
              f"{' '.join(str(d) for d in defaults)})", file=out)
    return 0


def cmd_run(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    cluster, handle = _run_app(args, out, trace=bool(args.trace_json))
    if cluster is None:
        return 2

    for line in handle.output():
        print(f"  | {line}", file=out)
    result = handle.result
    summary = repr(result)
    if len(summary) > 120:
        summary = summary[:117] + "..."
    print(f"result: {summary}", file=out)
    print(f"virtual time: {handle.duration:.4f}s on {args.sites} site(s)",
          file=out)
    stats = cluster.total_stats()
    print(f"executions: {stats.get('executions').count}, "
          f"messages: {stats.get('sent').count}, "
          f"steals: {stats.get('steals_in').count}", file=out)
    if args.trace:
        from repro.trace import Timeline
        print(Timeline.from_cluster(cluster).render(width=64), file=out)
    if args.trace_json:
        count = cluster.write_chrome_trace(args.trace_json)
        print(f"wrote {count} trace events to {args.trace_json} "
              f"(open with chrome://tracing or https://ui.perfetto.dev)",
              file=out)
    if args.invoice:
        print(cluster.accounting_report(), file=out)
    if args.metrics_json:
        cluster.metrics.write_jsonl(args.metrics_json)
        rows = sum(len(tick) for _t, tick in cluster.metrics.ticks())
        print(f"wrote {rows} metric samples to {args.metrics_json} "
              f"(inspect with `repro health` / `repro top`)", file=out)
        if cluster.health is not None and not cluster.health.ok:
            print(cluster.health.render(), file=out)
    return 0


def cmd_trace(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Run an app with structured tracing on and export a Chrome trace."""
    cluster, handle = _run_app(args, out, trace=True)
    if cluster is None:
        return 2
    count = cluster.write_chrome_trace(args.out)
    print(f"{args.app}: {handle.duration:.4f}s virtual on {args.sites} "
          f"site(s)", file=out)
    print(f"wrote {count} trace events to {args.out} "
          f"(open with chrome://tracing or https://ui.perfetto.dev)",
          file=out)
    return 0


def cmd_stats(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Run an app and print the cluster-wide metrics report."""
    cluster, handle = _run_app(args, out, trace=True)
    if cluster is None:
        return 2
    print(f"{args.app}: {handle.duration:.4f}s virtual on {args.sites} "
          f"site(s)", file=out)
    wall = cluster.wall_clock_metrics()
    print(f"wall: {wall['wall_seconds']:.3f}s, "
          f"{wall['events_executed']:.0f} events "
          f"({wall['events_per_sec']:.0f} events/sec)", file=out)
    print(cluster.cluster_report().render(top=args.top), file=out)
    return 0


def cmd_blame(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Run an app traced and print the critical-path blame report."""
    cluster, handle = _run_app(args, out, trace=True)
    if cluster is None:
        return 2
    from repro.trace import blame_cluster
    report = blame_cluster(cluster)
    print(f"{args.app}: {handle.duration:.4f}s virtual on {args.sites} "
          f"site(s)", file=out)
    print(report.render(), file=out)
    if args.json:
        import json
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote blame report to {args.json}", file=out)
    return 0


def cmd_critical_path(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Run an app traced and print the end-to-end critical path."""
    cluster, handle = _run_app(args, out, trace=True)
    if cluster is None:
        return 2
    from repro.trace import CausalGraph, render_critical_path
    graph = CausalGraph.from_tracer(cluster.tracer)
    segments = graph.critical_path()
    print(f"{args.app}: {handle.duration:.4f}s virtual on {args.sites} "
          f"site(s)", file=out)
    print(render_critical_path(segments, summary_only=args.summary),
          file=out)
    return 0


def cmd_bench(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Run the gate suites; optionally check against / refresh baselines."""
    import os

    from repro.bench import (
        GATE_SUITES,
        compare_metrics,
        load_bench_json,
        render_violations,
        write_bench_json,
    )

    names = args.suites or sorted(GATE_SUITES)
    unknown = [n for n in names if n not in GATE_SUITES]
    if unknown:
        print(f"unknown suite(s): {', '.join(unknown)}; available: "
              f"{', '.join(sorted(GATE_SUITES))}", file=out)
        return 2

    target_dir = args.baselines if args.update_baselines else args.out
    failed = False
    for name in names:
        result = GATE_SUITES[name]()
        # suites return (metrics, tolerances) or (metrics, tolerances,
        # meta); meta carries informational wall-clock figures the
        # comparator never reads
        if len(result) == 3:
            metrics, tolerances, meta = result
        else:
            metrics, tolerances = result
            meta = {}
        path = write_bench_json(target_dir, name, metrics,
                                tolerances=tolerances, meta=meta)
        print(f"{name}: {len(metrics)} metrics -> {path}", file=out)
        if not args.check:
            continue
        baseline_path = os.path.join(args.baselines, f"BENCH_{name}.json")
        if not os.path.exists(baseline_path):
            print(f"bench gate FAILED: no baseline at {baseline_path} "
                  f"(run `repro bench --update-baselines`)", file=out)
            failed = True
            continue
        violations = compare_metrics(metrics,
                                     load_bench_json(baseline_path))
        if violations:
            print(render_violations(name, violations), file=out)
            failed = True
        else:
            print(f"{name}: within tolerance of {baseline_path}", file=out)
    if failed:
        return 1
    if args.check:
        print("bench gate PASSED", file=out)
    return 0


def cmd_profile(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Run an app under cProfile and print the hottest functions.

    ``--suite scaling`` profiles the bench-gate scaling workload instead
    of a named app: treesum under the gate's big-cluster config (slow
    gossip, no trace) — the exact run to point a profiler at when
    hunting large-``n`` hotspots.

    The wall-clock throughput line uses the cluster's own accounting
    (:meth:`SimCluster.wall_clock_metrics`); note that the profiler's
    tracing overhead deflates it vs. an unprofiled run.
    """
    import cProfile
    import io
    import pstats

    if args.suite:
        args.sites = args.sites or 64
        label = f"scaling suite: treesum on {args.sites} site(s)"
    else:
        args.sites = args.sites or 4
        if not args.app:
            print("profile: an app name is required unless --suite is "
                  "given", file=out)
            return 2
        label = f"{args.app} on {args.sites} site(s)"

    profiler = cProfile.Profile()
    if args.suite:
        from repro.bench.harness import run_treesum
        from repro.bench.suites import _scaling_config
        leaves = int(args.args[0]) if args.args else 1024
        scale = float(args.args[1]) if len(args.args) > 1 else 16000.0
        profiler.enable()
        try:
            duration, cluster = run_treesum(leaves, scale, args.sites,
                                            config=_scaling_config(
                                                args.sites))
        finally:
            profiler.disable()
    else:
        profiler.enable()
        try:
            cluster, handle = _run_app(args, out)
        finally:
            profiler.disable()
        if cluster is None:
            return 2
        duration = handle.duration

    wall = cluster.wall_clock_metrics()
    print(f"{label}: {duration:.4f}s virtual", file=out)
    print(f"wall: {wall['wall_seconds']:.3f}s, "
          f"{wall['events_executed']:.0f} events "
          f"({wall['events_per_sec']:.0f} events/sec), "
          f"{wall['messages']:.0f} messages "
          f"({wall['msgs_per_sec']:.0f} msgs/sec) [under profiler]",
          file=out)

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue(), file=out)
    if args.out_stats:
        stats.dump_stats(args.out_stats)
        print(f"wrote raw profile to {args.out_stats} "
              f"(inspect with python -m pstats)", file=out)
    return 0


def _parse_int_list(spec: str) -> List[int]:
    """``"1,8,64"`` -> [1, 8, 64]; ``"0:4"`` -> [0, 1, 2, 3]."""
    if ":" in spec:
        lo, hi = spec.split(":", 1)
        return list(range(int(lo), int(hi)))
    return [int(part) for part in spec.split(",") if part != ""]


def cmd_sweep(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Fan a config sweep across worker processes; write the report.

    Exit codes: 0 all points ok (and, with ``--selfcheck``, all
    fingerprints stable), 1 any failed point or determinism mismatch,
    2 usage error.
    """
    from repro.bench.sweep import (SWEEP_APPS, make_point, render_sweep,
                                   run_sweep, write_sweep_json)

    if args.app not in SWEEP_APPS:
        print(f"unknown sweep app {args.app!r}; available: "
              f"{', '.join(SWEEP_APPS)}", file=out)
        return 2
    try:
        sites = _parse_int_list(args.sites)
        seeds = _parse_int_list(args.seeds)
    except ValueError as exc:
        print(f"bad --sites/--seeds spec: {exc}", file=out)
        return 2
    if not sites or not seeds:
        print("empty --sites or --seeds sweep", file=out)
        return 2

    params: Dict[str, object] = {}
    if args.app == "treesum":
        params["leaves"] = args.leaves
        params["scale"] = args.scale
    else:
        params["p"] = args.p
        params["width"] = args.width
    gossips: List[Optional[float]] = (list(args.gossip)
                                      if args.gossip else [None])
    fracs: List[Optional[float]] = (list(args.replicate_frac)
                                    if args.replicate_frac else [None])
    points = [make_point(args.app, nsites=nsites, seed=seed,
                         gossip_interval=gossip, replicate_frac=frac,
                         **params)
              for nsites in sites
              for gossip in gossips
              for frac in fracs
              for seed in seeds]
    report = run_sweep(points, workers=args.workers,
                       selfcheck=args.selfcheck,
                       progress_timeout=args.progress_timeout)
    print(render_sweep(report), file=out)
    if args.out:
        path = write_sweep_json(args.out, report)
        print(f"wrote {path}", file=out)
    return 0 if report["ok"] else 1


def cmd_table1(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    from repro.bench import (
        PAPER_TABLE1,
        calibrated_test_params,
        render_table,
        run_primes,
    )
    width = args.width
    if (args.p, width) not in PAPER_TABLE1:
        print(f"no paper row for p={args.p} width={width}; rows: "
              f"{sorted(PAPER_TABLE1)}", file=out)
        return 2
    scale, base = calibrated_test_params(args.p, width)
    times = {}
    for nsites in (1, 4, 8):
        times[nsites], _cluster = run_primes(args.p, width, nsites,
                                             scale, base)
    t1, t4, t8 = (times[n] for n in (1, 4, 8))
    p1, p4, p8 = PAPER_TABLE1[(args.p, width)]
    print(render_table(
        f"Table 1 row: p={args.p} width={width}",
        ["", "1 site", "4 sites (S)", "8 sites (S)"],
        [["measured", f"{t1:.1f}s", f"{t4:.1f}s ({t1 / t4:.1f})",
          f"{t8:.1f}s ({t1 / t8:.1f})"],
         ["paper", f"{p1:.1f}s", f"{p4:.1f}s ({p1 / p4:.1f})",
          f"{p8:.1f}s ({p1 / p8:.1f})"]]), file=out)
    return 0


def _load_metrics(path: str, out):  # noqa: ANN001, ANN202
    """Load + validate an ``sdvm-metrics/1`` file; None after a message."""
    import os

    from repro.common.errors import SDVMError
    from repro.trace import MetricsLog

    if not os.path.exists(path):
        print(f"no metrics file at {path}", file=out)
        return None
    try:
        return MetricsLog.load(path)
    except SDVMError as exc:
        print(f"invalid metrics file {path}: {exc}", file=out)
        return None


def cmd_health(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Replay a metrics file through the stall detectors; exit 1 if any
    fired (usable as a CI health gate on run artifacts)."""
    from repro.trace import analyze_log

    log = _load_metrics(args.file, out)
    if log is None:
        return 2
    monitor = analyze_log(log)
    verdict = monitor.verdict()
    print(monitor.render(limit=args.limit), file=out)
    print(f"queue p50/p90: {verdict['queue_p50']:.0f}/"
          f"{verdict['queue_p90']:.0f}, wave age p99: "
          f"{verdict['wave_age_p99'] * 1e3:.1f}ms over "
          f"{verdict['ticks']} tick(s)", file=out)
    return 0 if verdict["ok"] else 1


def cmd_top(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Per-site time-series table from a metrics file (postmortem `top`)."""
    from repro.common.errors import SDVMError
    from repro.trace import render_top

    log = _load_metrics(args.file, out)
    if log is None:
        return 2
    try:
        print(render_top(log, key=args.key, last=args.last), file=out)
    except SDVMError as exc:
        print(str(exc), file=out)
        return 2
    return 0


def cmd_chaos(args: argparse.Namespace, out) -> int:  # noqa: ANN001
    """Fault-injection front end: replay plans, sweep seeds, run corpus."""
    import glob
    import os

    from repro.chaos import FaultPlan, fuzz, run_plan, verify_determinism

    def replay(path: str) -> int:
        plan = FaultPlan.load(path)
        result = run_plan(plan)
        label = plan.name or os.path.basename(path)
        if result.ok:
            print(f"{label}: PASS ({len(plan.faults)} fault(s), "
                  f"fingerprint {result.fingerprint[:12]})", file=out)
        else:
            print(f"{label}: FAIL", file=out)
            for violation in result.violations:
                print(f"  {violation}", file=out)
            return 1
        if args.twice:
            first, second = verify_determinism(plan)
            if first != second:
                print(f"{label}: NOT deterministic "
                      f"({first[:12]} != {second[:12]})", file=out)
                return 1
            print(f"{label}: deterministic across two runs", file=out)
        return 0

    if args.action == "run":
        if not args.target:
            print("chaos run needs a plan file", file=out)
            return 2
        return replay(args.target)

    if args.action == "corpus":
        paths = sorted(glob.glob(os.path.join(args.dir, "*.json")))
        if not paths:
            print(f"no plans under {args.dir}", file=out)
            return 2
        worst = 0
        for path in paths:
            worst = max(worst, replay(path))
        return worst

    # action == "fuzz"
    lo, hi = args.seeds
    failures = fuzz(range(lo, hi + 1), nsites=args.sites,
                    shrink=not args.no_shrink, corrupt=args.corrupt,
                    report=lambda line: print(line, file=out))
    for failure in failures:
        if args.save_dir:
            os.makedirs(args.save_dir, exist_ok=True)
            path = os.path.join(args.save_dir,
                                f"fuzz_seed_{failure.seed}.json")
            failure.shrunk.save(path)
            print(f"seed {failure.seed}: shrunk plan saved to {path}",
                  file=out)
    print(f"fuzz: {hi - lo + 1} seed(s), {len(failures)} failure(s)",
          file=out)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SDVM reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list bundled applications")

    run_parser = sub.add_parser("run", help="run an app on a sim cluster")
    run_parser.add_argument("app")
    run_parser.add_argument("--sites", type=int, default=4)
    run_parser.add_argument("--args", nargs="*", default=[],
                            help="program arguments (see `apps`)")
    run_parser.add_argument("--trace", action="store_true",
                            help="print an ASCII timeline")
    run_parser.add_argument("--trace-json", metavar="PATH", default="",
                            help="also write a Chrome/Perfetto trace file")
    run_parser.add_argument("--invoice", action="store_true",
                            help="print the accounting report")
    run_parser.add_argument("--encrypt", action="store_true",
                            help="enable the security manager")
    run_parser.add_argument("--metrics-json", metavar="PATH", default="",
                            help="sample per-site health metrics during the "
                                 "run and write them as sdvm-metrics/1 JSONL")
    run_parser.add_argument("--metrics-interval", type=float, default=0.05,
                            help="virtual seconds between metric samples")
    run_parser.add_argument("--seed", type=int, default=0)

    trace_parser = sub.add_parser(
        "trace", help="run an app and export a Chrome/Perfetto trace")
    trace_parser.add_argument("app")
    trace_parser.add_argument("--sites", type=int, default=4)
    trace_parser.add_argument("--args", nargs="*", default=[],
                              help="program arguments (see `apps`)")
    trace_parser.add_argument("--out", default="sdvm_trace.json",
                              help="output path for the trace JSON")
    trace_parser.add_argument("--seed", type=int, default=0)

    stats_parser = sub.add_parser(
        "stats", help="run an app and print cluster-wide metrics")
    stats_parser.add_argument("app")
    stats_parser.add_argument("--sites", type=int, default=4)
    stats_parser.add_argument("--args", nargs="*", default=[],
                              help="program arguments (see `apps`)")
    stats_parser.add_argument("--top", type=int, default=24,
                              help="how many counters to print")
    stats_parser.add_argument("--seed", type=int, default=0)

    blame_parser = sub.add_parser(
        "blame", help="attribute the run's wall time to causes")
    blame_parser.add_argument("app")
    blame_parser.add_argument("--sites", type=int, default=4)
    blame_parser.add_argument("--args", nargs="*", default=[],
                              help="program arguments (see `apps`)")
    blame_parser.add_argument("--json", metavar="PATH", default="",
                              help="also dump the report as JSON")
    blame_parser.add_argument("--seed", type=int, default=0)

    cp_parser = sub.add_parser(
        "critical-path", help="print the causal chain that bounded the run")
    cp_parser.add_argument("app")
    cp_parser.add_argument("--sites", type=int, default=4)
    cp_parser.add_argument("--args", nargs="*", default=[],
                           help="program arguments (see `apps`)")
    cp_parser.add_argument("--summary", action="store_true",
                           help="category totals only, no segment list")
    cp_parser.add_argument("--seed", type=int, default=0)

    bench_parser = sub.add_parser(
        "bench", help="run the deterministic benchmark gate suites")
    bench_parser.add_argument("--suites", nargs="*", default=[],
                              help="suite names (default: all)")
    bench_parser.add_argument("--check", action="store_true",
                              help="compare against committed baselines; "
                                   "exit 1 on regression")
    bench_parser.add_argument("--update-baselines", action="store_true",
                              help="write results into the baselines dir")
    bench_parser.add_argument("--out", default="benchmarks/results",
                              help="output dir for BENCH_*.json artifacts")
    bench_parser.add_argument("--baselines", default="benchmarks/baselines",
                              help="committed baseline dir")

    profile_parser = sub.add_parser(
        "profile", help="run an app under cProfile; print hot functions "
                        "and wall-clock throughput")
    profile_parser.add_argument("app", nargs="?", default="")
    profile_parser.add_argument("--suite", choices=["scaling"], default="",
                                help="profile a bench-gate workload instead "
                                     "of an app (scaling: treesum under the "
                                     "big-cluster config; --args LEAVES "
                                     "SCALE, --sites defaults to 64)")
    profile_parser.add_argument("--sites", type=int, default=None)
    profile_parser.add_argument("--args", nargs="*", default=[],
                                help="program arguments (see `apps`)")
    profile_parser.add_argument("--sort", default="cumulative",
                                help="pstats sort key (cumulative, tottime, "
                                     "calls, ...)")
    profile_parser.add_argument("--top", type=int, default=25,
                                help="how many functions to print")
    profile_parser.add_argument("--out-stats", metavar="PATH", default="",
                                help="also dump the raw pstats file")
    profile_parser.add_argument("--seed", type=int, default=0)

    chaos_parser = sub.add_parser(
        "chaos", help="deterministic fault injection: replay a plan, "
                      "sweep fuzz seeds, or run the regression corpus")
    chaos_parser.add_argument("action", choices=["run", "fuzz", "corpus"])
    chaos_parser.add_argument("target", nargs="?", default="",
                              help="plan file for `run`")
    chaos_parser.add_argument("--twice", action="store_true",
                              help="run the plan twice and compare journal "
                                   "fingerprints")
    chaos_parser.add_argument("--dir", default="tests/chaos_corpus",
                              help="corpus directory for `corpus`")
    chaos_parser.add_argument("--seeds", nargs=2, type=int,
                              default=[1, 8], metavar=("LO", "HI"),
                              help="inclusive seed range for `fuzz`")
    chaos_parser.add_argument("--sites", type=int, default=4,
                              help="cluster size for generated fuzz plans")
    chaos_parser.add_argument("--no-shrink", action="store_true",
                              help="report failures without minimizing")
    chaos_parser.add_argument("--corrupt", action="store_true",
                              help="add a silent-data-corruption window "
                                   "(with full replication) to every "
                                   "generated fuzz plan")
    chaos_parser.add_argument("--save-dir", default="",
                              help="write shrunk failing plans here")

    health_parser = sub.add_parser(
        "health", help="run the stall detectors over a metrics file; "
                       "exit 1 if any fired")
    health_parser.add_argument("file",
                               help="sdvm-metrics/1 JSONL "
                                    "(from `run --metrics-json`)")
    health_parser.add_argument("--limit", type=int, default=20,
                               help="max detections to list")

    top_parser = sub.add_parser(
        "top", help="per-site time-series table from a metrics file")
    top_parser.add_argument("file",
                            help="sdvm-metrics/1 JSONL "
                                 "(from `run --metrics-json`)")
    top_parser.add_argument("--key", default="queue",
                            help="metric column to tabulate (queue, "
                                 "busy_frac, ready, wave_age, ...)")
    top_parser.add_argument("--last", type=int, default=20,
                            help="how many trailing sample ticks to show")

    sweep_parser = sub.add_parser(
        "sweep", help="fan a config sweep (sites x seeds x gossip) over "
                      "a pool of worker processes; one fingerprinted row "
                      "per point")
    sweep_parser.add_argument("--app", default="treesum",
                              help="treesum or primes")
    sweep_parser.add_argument("--sites", default="1,4",
                              help="comma list (1,8,64) or lo:hi range")
    sweep_parser.add_argument("--seeds", default="0",
                              help="comma list or lo:hi range")
    sweep_parser.add_argument("--gossip", nargs="*", type=float, default=[],
                              help="gossip_interval values to sweep "
                                   "(staleness follows at 5x)")
    sweep_parser.add_argument("--replicate-frac", nargs="*", type=float,
                              default=[],
                              help="replicate_frac values to sweep (the "
                                   "SDC duplicate-execution knob)")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = run inline)")
    sweep_parser.add_argument("--selfcheck", action="store_true",
                              help="run every point twice and require "
                                   "identical journal fingerprints")
    sweep_parser.add_argument("--leaves", type=int, default=256,
                              help="treesum leaves")
    sweep_parser.add_argument("--scale", type=float, default=4000.0,
                              help="treesum work scale")
    sweep_parser.add_argument("--p", type=int, default=30,
                              help="primes count")
    sweep_parser.add_argument("--width", type=int, default=4,
                              help="primes parallel width")
    sweep_parser.add_argument("--progress-timeout", type=float,
                              default=600.0,
                              help="per-run sim progress timeout (s)")
    sweep_parser.add_argument("--out", default="",
                              help="write the sdvm-sweep/1 JSON report "
                                   "here")

    table_parser = sub.add_parser("table1",
                                  help="reproduce one Table-1 row")
    table_parser.add_argument("--p", type=int, default=100)
    table_parser.add_argument("--width", type=int, default=10)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:  # noqa: ANN001
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers: Dict[str, Callable] = {
        "apps": cmd_apps,
        "run": cmd_run,
        "trace": cmd_trace,
        "stats": cmd_stats,
        "blame": cmd_blame,
        "critical-path": cmd_critical_path,
        "bench": cmd_bench,
        "profile": cmd_profile,
        "sweep": cmd_sweep,
        "chaos": cmd_chaos,
        "health": cmd_health,
        "top": cmd_top,
        "table1": cmd_table1,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
