"""The simulated processing manager.

Execution timeline for one microframe (see DESIGN.md, "Sim execution
semantics"):

1. the microthread function runs *now* (real Python, instantaneous in
   virtual time), producing: charged work W, accumulated memory wait T_w,
   and a buffered effect list;
2. the site waits T_w with the CPU *free* (this is what latency hiding
   overlaps — other in-flight frames compute meanwhile);
3. the CPU is occupied for W/speed seconds (FCFS with everything else on
   this site);
4. at completion the effects dispatch: frames register, results travel,
   output flows, the frame is consumed.

A context-switch cost is charged whenever more than one execution is in
flight, so very large ``max_parallel`` degrades — reproducing the paper's
"about 5" sweet spot (benchmarks/bench_latency_hiding.py).
"""

from __future__ import annotations

import copy
import traceback
from typing import Dict, List, Optional

from repro.common.ids import ManagerId
from repro.core.frames import Microframe
from repro.core.threads import CompiledMicrothread
from repro.proc.sim_context import (RecordingSimContext, ReplaySimContext,
                                    SimExecutionContext)
from repro.sched.policies import replicate_chosen
from repro.site.manager_base import Manager
from repro.trace.causal import exec_node


def effects_key(effects: list) -> str:
    """Canonical comparison key for a buffered effect list.

    Two executions of the same microthread over the same recorded inputs
    produce identical keys unless one of them was corrupted — effect data
    is plain values, addresses, and tuples with deterministic reprs.
    """
    return repr([(e.kind.value, sorted(e.data.items())) for e in effects])


class SimProcessingManager(Manager):
    manager_id = ManagerId.PROCESSING

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        #: journal flag cached so the per-execution path skips building the
        #: event kwargs entirely when journalling is off (the common case)
        self._journal_on = site.config.journal
        self.in_flight = 0
        #: executions currently in their memory-wait phase
        self.waiting = 0
        self._outstanding_requests = 0
        #: total work units executed (for accounting / benchmarks)
        self.work_done = 0.0
        #: fraction of microthreads executed twice (SDC defense); cached
        #: so the replication-off hot path costs one float compare
        self._replicate_frac = site.config.scheduling.replicate_frac
        self._replicate_timeout = site.config.scheduling.replicate_timeout
        #: frame key -> pending-verify timeout event (cross-site shadows)
        self._pending_verify: Dict[int, object] = {}
        #: chaos-engine result-corruption hook (None outside corrupt plans)
        self._sdc_corrupter = None
        self._sdc_index = -1

    def sdc_arm(self, corrupter, index: int) -> None:  # noqa: ANN001
        """Arm the chaos engine's result-corruption hook for this site."""
        self._sdc_corrupter = corrupter
        self._sdc_index = index

    @property
    def max_parallel(self) -> int:
        return self.site.site_config.max_parallel

    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Request work under the paper's admission discipline.

        Up to ``max_parallel`` microthreads may be in flight (§4: "about 5
        ... in (virtual) parallel"), but a new one is *pulled* only when
        every current one is waiting on memory — the switch happens "when a
        microthread has to wait for data due to an access to the memory".
        Pulling eagerly would hoard stealable frames in the local slots;
        the paper warns the parallel degree "should leave enough work for
        other sites".  (Critical-path frames bypass this via the
        overcommit slot — see :meth:`can_overcommit`.)
        """
        if self.site.paused:
            return
        while (self.in_flight + self._outstanding_requests < self.max_parallel
               and (self.in_flight - self.waiting
                    + self._outstanding_requests) < 1):
            self._outstanding_requests += 1
            self.site.scheduling_manager.pm_request_work()

    def can_overcommit(self) -> bool:
        """One extra slot exists for critical-path microframes (§3.3
        scheduling hints: "hints about the local execution order")."""
        return self.in_flight < self.max_parallel + 1

    def on_start(self) -> None:
        self.kick()

    def receive_work(self, frame: Microframe,
                     compiled: CompiledMicrothread,
                     requested: bool = True) -> None:
        """The scheduling manager delivers a (microframe, microthread) pair.

        ``requested=False`` marks an unsolicited critical-path overcommit
        delivery (it does not consume an outstanding work request).
        """
        if requested:
            self._outstanding_requests = max(0, self._outstanding_requests - 1)
        if not self.site.program_manager.is_active(frame.program):
            self.stats.inc("stale_work_dropped")
            self.kick()
            return
        self.site.site_manager.note_activity()
        self.in_flight += 1
        if self._journal_on:
            self.site.journal_event("exec_start", thread=compiled.name,
                                    frame=frame.frame_id.pack())
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "exec_begin",
                    frame.frame_id.pack(), compiled.name,
                    frame.cause_node, frame.cause_origin)
        self._execute(frame, compiled)

    # ------------------------------------------------------------------
    def _execute(self, frame: Microframe,
                 compiled: CompiledMicrothread) -> None:
        info = self.site.program_manager.get(frame.program)
        if (self._replicate_frac > 0.0
                and replicate_chosen(frame.frame_id.pack(),
                                     self._replicate_frac)):
            # replicated execution: record primitive-op results so a
            # shadow can replay the same inputs (see sim_context)
            ctx: SimExecutionContext = RecordingSimContext(
                frame, self.site, info.thread_table())
            ctx.compiled = compiled
            self.stats.inc("sdc_replicated")
        else:
            ctx = SimExecutionContext(frame, self.site, info.thread_table())
        try:
            compiled.entry(ctx, *frame.arguments())
        except Exception:  # noqa: BLE001 — user code may raise anything
            self.stats.inc("microthread_errors")
            failure = traceback.format_exc(limit=3)
            self.log("microthread %s raised:\n%s", compiled.name, failure)
            tr = self.tracer
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "exec_end",
                        frame.frame_id.pack(), 0.0)
            self._finish_slot(frame)
            self.site.program_manager.local_exit(
                frame.program, None, failed=True, failure=failure)
            return

        compute = self.cost.work_seconds(ctx.charged_work,
                                         self.site.site_config.speed)
        if self.in_flight > 1:
            # rotating among the virtually parallel microthreads: "the time
            # needed to switch between all the microthreads should be
            # adequately short to avoid clogging the system" (§4) — the
            # cost scales with how many threads are co-resident
            self.kernel.cpu_charge(self.cost.context_switch_cost
                                   * (self.in_flight - 1))
            self.stats.inc("context_switches")

        epoch = self.site.epoch
        if ctx.wait_time > 0.0:
            # CPU free during the memory wait — admit another microthread to
            # hide the latency (§4)
            self.waiting += 1
            self.kernel.call_later(ctx.wait_time, self._wait_over,
                                   frame, ctx, compute, epoch)
            self.kick()
        else:
            self._compute_phase(frame, ctx, compute, epoch)

    def _wait_over(self, frame: Microframe, ctx: SimExecutionContext,
                   compute: float, epoch: int) -> None:
        self.waiting = max(0, self.waiting - 1)
        self._compute_phase(frame, ctx, compute, epoch)

    def _compute_phase(self, frame: Microframe, ctx: SimExecutionContext,
                       compute: float, epoch: int) -> None:
        self.kernel.cpu.run(compute, self._complete, frame, ctx, epoch,
                            overhead=False)

    def _complete(self, frame: Microframe, ctx: SimExecutionContext,
                  epoch: int) -> None:
        if self.site.stopped:
            # the site died mid-execution: a dead site commits nothing —
            # without this, its already-scheduled completion would still
            # dispatch effects (writes, results) from beyond the grave
            return
        if epoch != self.site.epoch:
            # execution straddled a recovery; its effects are rolled back
            self.stats.inc("stale_epoch_discarded")
            tr = self.tracer
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "exec_end",
                        frame.frame_id.pack(), 0.0)
            self._finish_slot(frame)
            return
        if self._sdc_corrupter is not None:
            # injected silent corruption lands here — after compute, before
            # anything dispatches — on replicated and plain threads alike
            if self._sdc_corrupter.corrupt_effects(self._sdc_index,
                                                   ctx.effects):
                ctx.sdc_tainted = True
        if isinstance(ctx, RecordingSimContext):
            self._start_verify(frame, ctx, epoch)
            return
        self._commit_causal(frame, ctx, ctx.effects,
                            getattr(ctx, "sdc_tainted", False))

    def _commit_causal(self, frame: Microframe, ctx: SimExecutionContext,
                       effects: list, tainted: bool) -> None:
        tr = self.tracer
        if tr is None:
            self._commit(frame, ctx, effects, tainted)
            return
        # everything the completing execution triggers — result messages,
        # child frames, the kick that refills the slot — is caused by this
        # execution's node in the causal DAG
        site = self.site
        prev_node, prev_origin = site.cause_node, site.cause_origin
        site.cause_node = exec_node(frame.frame_id.pack())
        site.cause_origin = (frame.cause_origin
                             if frame.cause_origin >= 0 else self.local_id)
        try:
            self._commit(frame, ctx, effects, tainted)
        finally:
            site.cause_node, site.cause_origin = prev_node, prev_origin

    def _commit(self, frame: Microframe, ctx: SimExecutionContext,
                effects: list, tainted: bool = False) -> None:
        if tainted:
            # ground-truth marker for the invariant checker: a corrupted
            # result is entering the committed state ("no corrupted result
            # reaches a committed checkpoint" audits for exactly this)
            self.stats.inc("sdc_tainted_commits")
            tr = self.tracer
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "sdc_tainted_commit",
                        frame.frame_id.pack())
        self.site.dispatch_effects(frame, effects)
        frame.consume()
        # all accounting happens at completion, in lockstep with the
        # program manager's metering (in-flight work at shutdown is
        # consistently unbilled)
        self.stats.inc("executions")
        self.stats.add("work_units", ctx.charged_work)
        self.stats.add("wait_seconds", ctx.wait_time)
        self.work_done += ctx.charged_work
        if self._journal_on:
            self.site.journal_event("exec_end", frame=frame.frame_id.pack(),
                                    work=ctx.charged_work)
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "exec_end",
                    frame.frame_id.pack(), ctx.charged_work)
        self.site.program_manager.record_execution(frame.program,
                                                   ctx.charged_work)
        self._finish_slot(frame)

    # ------------------------------------------------------------------
    # replicated execution — the silent-data-corruption defense.
    #
    # The primary's completion does not dispatch: the slot is held while a
    # shadow re-execution (on a different site when the cluster has one)
    # replays the recorded inputs and the two effect lists are compared.
    # Match -> commit; mismatch -> quarantine both, trace sdc_mismatch,
    # freeze the flight recorder, and re-execute on a third site to break
    # the tie.  A timeout commits the primary result if the shadow's
    # verdict is lost (buddy crash / partition), so replication can delay
    # a commit but never wedge a program.

    def _start_verify(self, frame: Microframe, ctx: SimExecutionContext,
                      epoch: int) -> None:
        shared = getattr(self.kernel, "shared", None)
        peers = (shared.alive_peers(self.local_id)
                 if shared is not None else [])
        key = frame.frame_id.pack()
        if not peers:
            # sole site: replicate in time instead of space — a second
            # execution on our own CPU, behind whatever else is queued
            self._pending_verify[key] = None
            compute = self.cost.work_seconds(ctx.charged_work,
                                             self.site.site_config.speed)
            self.kernel.cpu.run(compute, self._local_shadow_done,
                                frame, ctx, epoch)
            return
        buddy = shared.sites[peers[key % len(peers)]]
        latency = shared.network.config.latency
        self._pending_verify[key] = self.kernel.call_later(
            self._replicate_timeout, self._verify_timeout, frame, ctx, epoch)
        self.kernel.call_later(latency, self._shadow_begin,
                               buddy, frame, ctx, epoch)

    def _run_replay(self, host_site, frame: Microframe,  # noqa: ANN001
                    ctx: SimExecutionContext) -> Optional[list]:
        """Re-execute the microthread over the primary's recorded inputs."""
        info = self.site.program_manager.get(frame.program)
        replay = ReplaySimContext(frame, host_site, info.thread_table(),
                                  ctx.oplog, ctx.now)
        try:
            # each replay gets its own pristine copy of the arguments —
            # the primary (and any earlier replay) mutates mutable ones
            ctx.compiled.entry(replay,
                               *copy.deepcopy(ctx.args_snapshot))
        except Exception:  # noqa: BLE001 — a diverging replay is itself SDC
            self.stats.inc("sdc_shadow_errors")
            return None
        return replay.effects

    def _local_shadow_done(self, frame: Microframe, ctx: SimExecutionContext,
                           epoch: int) -> None:
        if self.site.stopped:
            return
        self.stats.inc("sdc_shadow_execs")
        effects = self._run_replay(self.site, frame, ctx)
        tainted = False
        if effects is not None and self._sdc_corrupter is not None:
            tainted = self._sdc_corrupter.corrupt_effects(self._sdc_index,
                                                          effects)
        self._verdict(frame, ctx, epoch, effects, tainted, None)

    def _shadow_begin(self, buddy, frame: Microframe,  # noqa: ANN001
                      ctx: SimExecutionContext, epoch: int) -> None:
        if self.site.stopped or epoch != self.site.epoch:
            return
        if buddy.stopped or not buddy.running:
            return  # buddy died before the work arrived; the timeout commits
        effects = self._run_replay(buddy, frame, ctx)
        bpm = buddy.processing_manager
        bpm.stats.inc("sdc_shadow_execs")
        compute = bpm.cost.work_seconds(ctx.charged_work,
                                        buddy.site_config.speed)
        buddy.kernel.cpu.run(compute, self._shadow_done,
                             buddy, frame, ctx, epoch, effects)

    def _shadow_done(self, buddy, frame: Microframe,  # noqa: ANN001
                     ctx: SimExecutionContext, epoch: int,
                     effects: Optional[list]) -> None:
        if self.site.stopped:
            return
        if buddy.stopped:
            return  # the verdict died with the buddy; the timeout commits
        tainted = False
        bpm = buddy.processing_manager
        if effects is not None and bpm._sdc_corrupter is not None:
            # the shadow completes *on the buddy*: an in-window corruption
            # of that site flips the shadow's copy, not the primary's
            tainted = bpm._sdc_corrupter.corrupt_effects(bpm._sdc_index,
                                                         effects)
        latency = self.kernel.shared.network.config.latency
        self.kernel.call_later(latency, self._verdict,
                               frame, ctx, epoch, effects, tainted, buddy)

    def _discard_stale(self, frame: Microframe) -> None:
        self.stats.inc("stale_epoch_discarded")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "exec_end",
                    frame.frame_id.pack(), 0.0)
        self._finish_slot(frame)

    def _verdict(self, frame: Microframe, ctx: SimExecutionContext,
                 epoch: int, effects: Optional[list], tainted_shadow: bool,
                 buddy) -> None:  # noqa: ANN001
        if self.site.stopped:
            return
        key = frame.frame_id.pack()
        if key not in self._pending_verify:
            return  # the timeout already committed the primary result
        timer = self._pending_verify.pop(key)
        if timer is not None:
            self.kernel.cancel(timer)
        if epoch != self.site.epoch:
            self._discard_stale(frame)
            return
        tainted_primary = getattr(ctx, "sdc_tainted", False)
        if effects is None:
            # the replay itself failed: fall back to the primary result
            self.stats.inc("sdc_shadow_timeouts")
            self._commit_causal(frame, ctx, ctx.effects, tainted_primary)
            return
        if effects_key(ctx.effects) == effects_key(effects):
            self.stats.inc("sdc_verified")
            self._commit_causal(frame, ctx, ctx.effects, tainted_primary)
            return
        # mismatch: one of the two executions is lying.  Quarantine both
        # results (neither dispatches), raise the structured alarm, freeze
        # the flight recorder at the moment of detection, and break the
        # tie with a third execution
        self.stats.inc("sdc_mismatches")
        buddy_id = buddy.site_id if buddy is not None else self.local_id
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "sdc_mismatch",
                    frame.frame_id.pack(), buddy_id)
        recorder = self.site.tracer
        if recorder is not None and hasattr(recorder, "dump_all"):
            recorder.dump_all(self.kernel.now, "sdc_mismatch")
        self._tie_break(frame, ctx, epoch, effects, tainted_shadow, buddy)

    def _verify_timeout(self, frame: Microframe, ctx: SimExecutionContext,
                        epoch: int) -> None:
        if self.site.stopped:
            return
        key = frame.frame_id.pack()
        if self._pending_verify.pop(key, None) is None:
            return  # verdict already arrived
        if epoch != self.site.epoch:
            self._discard_stale(frame)
            return
        # the shadow's verdict is lost (buddy crash, partition): commit
        # the primary's result rather than wedging the program
        self.stats.inc("sdc_shadow_timeouts")
        self._commit_causal(frame, ctx, ctx.effects,
                            getattr(ctx, "sdc_tainted", False))

    def _tie_break(self, frame: Microframe, ctx: SimExecutionContext,
                   epoch: int, effects_shadow: list, tainted_shadow: bool,
                   buddy) -> None:  # noqa: ANN001
        shared = getattr(self.kernel, "shared", None)
        exclude = [self.local_id]
        if buddy is not None:
            exclude.append(buddy.site_id)
        peers = shared.alive_peers(*exclude) if shared is not None else []
        key = frame.frame_id.pack()
        if peers:
            # a site that ran neither quarantined execution
            referee = shared.sites[peers[key % len(peers)]]
        elif buddy is not None and not buddy.stopped:
            referee = buddy
        else:
            referee = self.site
        latency = (shared.network.config.latency
                   if shared is not None else 0.0)
        self.kernel.call_later(latency, self._referee_begin, referee,
                               frame, ctx, epoch, effects_shadow,
                               tainted_shadow)

    def _referee_begin(self, referee, frame: Microframe,  # noqa: ANN001
                       ctx: SimExecutionContext, epoch: int,
                       effects_shadow: list, tainted_shadow: bool) -> None:
        if self.site.stopped:
            return
        if referee.stopped:
            self._resolve(frame, ctx, epoch, effects_shadow, tainted_shadow,
                          None, False)
            return
        effects = self._run_replay(referee, frame, ctx)
        rpm = referee.processing_manager
        rpm.stats.inc("sdc_shadow_execs")
        compute = rpm.cost.work_seconds(ctx.charged_work,
                                        referee.site_config.speed)
        referee.kernel.cpu.run(compute, self._referee_done, referee,
                               frame, ctx, epoch, effects_shadow,
                               tainted_shadow, effects)

    def _referee_done(self, referee, frame: Microframe,  # noqa: ANN001
                      ctx: SimExecutionContext, epoch: int,
                      effects_shadow: list, tainted_shadow: bool,
                      effects: Optional[list]) -> None:
        if self.site.stopped:
            return
        tainted = False
        if referee.stopped:
            effects = None
        elif effects is not None:
            rpm = referee.processing_manager
            if rpm._sdc_corrupter is not None:
                tainted = rpm._sdc_corrupter.corrupt_effects(rpm._sdc_index,
                                                             effects)
        latency = self.kernel.shared.network.config.latency
        self.kernel.call_later(latency, self._resolve, frame, ctx, epoch,
                               effects_shadow, tainted_shadow, effects,
                               tainted)

    def _resolve(self, frame: Microframe, ctx: SimExecutionContext,
                 epoch: int, effects_shadow: list, tainted_shadow: bool,
                 effects_ref: Optional[list], tainted_ref: bool) -> None:
        if self.site.stopped:
            return
        if epoch != self.site.epoch:
            self._discard_stale(frame)
            return
        tainted_primary = getattr(ctx, "sdc_tainted", False)
        if effects_ref is None:
            # no third opinion available; the primary's word stands
            chosen, tainted, winner = ctx.effects, tainted_primary, "primary"
        else:
            key_ref = effects_key(effects_ref)
            if key_ref == effects_key(ctx.effects):
                chosen, tainted, winner = (ctx.effects, tainted_primary,
                                           "primary")
            elif key_ref == effects_key(effects_shadow):
                chosen, tainted, winner = (effects_shadow, tainted_shadow,
                                           "shadow")
            else:
                # all three disagree: trust the referee, which ran outside
                # both quarantined executions
                chosen, tainted, winner = effects_ref, tainted_ref, "referee"
        self.stats.inc("sdc_resolved")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "sdc_resolved",
                    frame.frame_id.pack(), winner)
        self._commit_causal(frame, ctx, chosen, tainted)

    def _finish_slot(self, frame: Microframe) -> None:
        self.in_flight = max(0, self.in_flight - 1)
        if not self.site.running:
            return
        self.site.site_manager.note_activity()
        self.site.crash_manager.maybe_ack_drained()
        self.kick()

    # ------------------------------------------------------------------
    def current_load(self) -> float:
        return float(self.in_flight)

    def status(self) -> dict:
        base = super().status()
        base["in_flight"] = self.in_flight
        base["work_done"] = self.work_done
        return base
