"""The simulated processing manager.

Execution timeline for one microframe (see DESIGN.md, "Sim execution
semantics"):

1. the microthread function runs *now* (real Python, instantaneous in
   virtual time), producing: charged work W, accumulated memory wait T_w,
   and a buffered effect list;
2. the site waits T_w with the CPU *free* (this is what latency hiding
   overlaps — other in-flight frames compute meanwhile);
3. the CPU is occupied for W/speed seconds (FCFS with everything else on
   this site);
4. at completion the effects dispatch: frames register, results travel,
   output flows, the frame is consumed.

A context-switch cost is charged whenever more than one execution is in
flight, so very large ``max_parallel`` degrades — reproducing the paper's
"about 5" sweet spot (benchmarks/bench_latency_hiding.py).
"""

from __future__ import annotations

import traceback
from typing import Optional

from repro.common.ids import ManagerId
from repro.core.frames import Microframe
from repro.core.threads import CompiledMicrothread
from repro.proc.sim_context import SimExecutionContext
from repro.site.manager_base import Manager
from repro.trace.causal import exec_node


class SimProcessingManager(Manager):
    manager_id = ManagerId.PROCESSING

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        #: journal flag cached so the per-execution path skips building the
        #: event kwargs entirely when journalling is off (the common case)
        self._journal_on = site.config.journal
        self.in_flight = 0
        #: executions currently in their memory-wait phase
        self.waiting = 0
        self._outstanding_requests = 0
        #: total work units executed (for accounting / benchmarks)
        self.work_done = 0.0

    @property
    def max_parallel(self) -> int:
        return self.site.site_config.max_parallel

    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Request work under the paper's admission discipline.

        Up to ``max_parallel`` microthreads may be in flight (§4: "about 5
        ... in (virtual) parallel"), but a new one is *pulled* only when
        every current one is waiting on memory — the switch happens "when a
        microthread has to wait for data due to an access to the memory".
        Pulling eagerly would hoard stealable frames in the local slots;
        the paper warns the parallel degree "should leave enough work for
        other sites".  (Critical-path frames bypass this via the
        overcommit slot — see :meth:`can_overcommit`.)
        """
        if self.site.paused:
            return
        while (self.in_flight + self._outstanding_requests < self.max_parallel
               and (self.in_flight - self.waiting
                    + self._outstanding_requests) < 1):
            self._outstanding_requests += 1
            self.site.scheduling_manager.pm_request_work()

    def can_overcommit(self) -> bool:
        """One extra slot exists for critical-path microframes (§3.3
        scheduling hints: "hints about the local execution order")."""
        return self.in_flight < self.max_parallel + 1

    def on_start(self) -> None:
        self.kick()

    def receive_work(self, frame: Microframe,
                     compiled: CompiledMicrothread,
                     requested: bool = True) -> None:
        """The scheduling manager delivers a (microframe, microthread) pair.

        ``requested=False`` marks an unsolicited critical-path overcommit
        delivery (it does not consume an outstanding work request).
        """
        if requested:
            self._outstanding_requests = max(0, self._outstanding_requests - 1)
        if not self.site.program_manager.is_active(frame.program):
            self.stats.inc("stale_work_dropped")
            self.kick()
            return
        self.site.site_manager.note_activity()
        self.in_flight += 1
        if self._journal_on:
            self.site.journal_event("exec_start", thread=compiled.name,
                                    frame=frame.frame_id.pack())
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "exec_begin",
                    frame.frame_id.pack(), compiled.name,
                    frame.cause_node, frame.cause_origin)
        self._execute(frame, compiled)

    # ------------------------------------------------------------------
    def _execute(self, frame: Microframe,
                 compiled: CompiledMicrothread) -> None:
        info = self.site.program_manager.get(frame.program)
        ctx = SimExecutionContext(frame, self.site, info.thread_table())
        try:
            compiled.entry(ctx, *frame.arguments())
        except Exception:  # noqa: BLE001 — user code may raise anything
            self.stats.inc("microthread_errors")
            failure = traceback.format_exc(limit=3)
            self.log("microthread %s raised:\n%s", compiled.name, failure)
            tr = self.tracer
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "exec_end",
                        frame.frame_id.pack(), 0.0)
            self._finish_slot(frame)
            self.site.program_manager.local_exit(
                frame.program, None, failed=True, failure=failure)
            return

        compute = self.cost.work_seconds(ctx.charged_work,
                                         self.site.site_config.speed)
        if self.in_flight > 1:
            # rotating among the virtually parallel microthreads: "the time
            # needed to switch between all the microthreads should be
            # adequately short to avoid clogging the system" (§4) — the
            # cost scales with how many threads are co-resident
            self.kernel.cpu_charge(self.cost.context_switch_cost
                                   * (self.in_flight - 1))
            self.stats.inc("context_switches")

        epoch = self.site.epoch
        if ctx.wait_time > 0.0:
            # CPU free during the memory wait — admit another microthread to
            # hide the latency (§4)
            self.waiting += 1
            self.kernel.call_later(ctx.wait_time, self._wait_over,
                                   frame, ctx, compute, epoch)
            self.kick()
        else:
            self._compute_phase(frame, ctx, compute, epoch)

    def _wait_over(self, frame: Microframe, ctx: SimExecutionContext,
                   compute: float, epoch: int) -> None:
        self.waiting = max(0, self.waiting - 1)
        self._compute_phase(frame, ctx, compute, epoch)

    def _compute_phase(self, frame: Microframe, ctx: SimExecutionContext,
                       compute: float, epoch: int) -> None:
        self.kernel.cpu.run(compute, self._complete, frame, ctx, epoch,
                            overhead=False)

    def _complete(self, frame: Microframe, ctx: SimExecutionContext,
                  epoch: int) -> None:
        if self.site.stopped:
            # the site died mid-execution: a dead site commits nothing —
            # without this, its already-scheduled completion would still
            # dispatch effects (writes, results) from beyond the grave
            return
        if epoch != self.site.epoch:
            # execution straddled a recovery; its effects are rolled back
            self.stats.inc("stale_epoch_discarded")
            tr = self.tracer
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "exec_end",
                        frame.frame_id.pack(), 0.0)
            self._finish_slot(frame)
            return
        tr = self.tracer
        if tr is None:
            self._commit(frame, ctx)
            return
        # everything the completing execution triggers — result messages,
        # child frames, the kick that refills the slot — is caused by this
        # execution's node in the causal DAG
        site = self.site
        prev_node, prev_origin = site.cause_node, site.cause_origin
        site.cause_node = exec_node(frame.frame_id.pack())
        site.cause_origin = (frame.cause_origin
                             if frame.cause_origin >= 0 else self.local_id)
        try:
            self._commit(frame, ctx)
        finally:
            site.cause_node, site.cause_origin = prev_node, prev_origin

    def _commit(self, frame: Microframe, ctx: SimExecutionContext) -> None:
        self.site.dispatch_effects(frame, ctx.effects)
        frame.consume()
        # all accounting happens at completion, in lockstep with the
        # program manager's metering (in-flight work at shutdown is
        # consistently unbilled)
        self.stats.inc("executions")
        self.stats.add("work_units", ctx.charged_work)
        self.stats.add("wait_seconds", ctx.wait_time)
        self.work_done += ctx.charged_work
        if self._journal_on:
            self.site.journal_event("exec_end", frame=frame.frame_id.pack(),
                                    work=ctx.charged_work)
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "exec_end",
                    frame.frame_id.pack(), ctx.charged_work)
        self.site.program_manager.record_execution(frame.program,
                                                   ctx.charged_work)
        self._finish_slot(frame)

    def _finish_slot(self, frame: Microframe) -> None:
        self.in_flight = max(0, self.in_flight - 1)
        if not self.site.running:
            return
        self.site.site_manager.note_activity()
        self.site.crash_manager.maybe_ack_drained()
        self.kick()

    # ------------------------------------------------------------------
    def current_load(self) -> float:
        return float(self.in_flight)

    def status(self) -> dict:
        base = super().status()
        base["in_flight"] = self.in_flight
        base["work_done"] = self.work_done
        return base
