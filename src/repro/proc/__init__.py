"""Processing manager — microthread execution with latency hiding (§4).

"When a microthread has to wait for data due to an access to the memory,
the processing manager can hide the latency by switching to another
microthread run in parallel. ... Tests showed that a number of about 5
microthreads run in (virtual) parallel produce good results."

:class:`~repro.proc.sim_manager.SimProcessingManager` models exactly that:
up to ``max_parallel`` in-flight executions whose memory-wait phases release
the modelled CPU; a context-switch cost is charged whenever executions
interleave.
"""

from repro.proc.sim_manager import SimProcessingManager
from repro.proc.sim_context import SimExecutionContext

__all__ = ["SimProcessingManager", "SimExecutionContext"]
