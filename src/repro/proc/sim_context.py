"""Execution context for the simulation kernel.

Side effects are buffered and dispatched at the execution's simulated
completion time (§3.2: extract -> calculate -> create frames -> send
results).  Memory reads resolve immediately against the shared object
directory but charge the modelled round-trip as *wait time*, which the
processing manager overlaps with other executions (latency hiding).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Tuple

from repro.common.errors import ProgramError
from repro.common.ids import FileHandle, GlobalAddress
from repro.core.context import Effect, ExecutionContext
from repro.core.frames import Microframe


class SimExecutionContext(ExecutionContext):
    def __init__(self, frame: Microframe, site,  # noqa: ANN001
                 thread_table: Dict[str, Tuple[int, int]]) -> None:
        super().__init__(frame, thread_table, site.site_id,
                         site.kernel.now, seed=site.config.seed)
        self._site = site
        self.effects: List[Effect] = []
        #: modelled seconds spent waiting on remote memory / files
        self.wait_time = 0.0

    # ------------------------------------------------------------------
    def _emit(self, effect: Effect) -> None:
        self.effects.append(effect)

    def _op_alloc_frame_address(self) -> GlobalAddress:
        return self._site.attraction_memory.alloc_address()

    def _op_malloc(self, value: Any) -> GlobalAddress:
        return self._site.attraction_memory.alloc_object(value)

    def _op_read(self, address: GlobalAddress) -> Any:
        value, latency = self._site.attraction_memory.sim_read(address)
        self.wait_time += latency
        return value

    # -- files (cluster-wide VFS; remote handles charge a round trip) ----
    def _op_file_open(self, path: str, mode: str) -> FileHandle:
        handle, latency = self._site.io_manager.sim_open(path, mode)
        self.wait_time += latency
        return handle

    def _op_file_read(self, handle: FileHandle, size: int) -> bytes:
        data, latency = self._site.io_manager.sim_read(handle, size)
        self.wait_time += latency
        return data

    def _op_file_write(self, handle: FileHandle, data: bytes) -> int:
        written, latency = self._site.io_manager.sim_write(handle, data)
        self.wait_time += latency
        return written

    def _op_file_seek(self, handle: FileHandle, offset: int) -> None:
        latency = self._site.io_manager.sim_seek(handle, offset)
        self.wait_time += latency

    def _op_file_close(self, handle: FileHandle) -> None:
        self._site.io_manager.sim_close(handle)


class RecordingSimContext(SimExecutionContext):
    """Primary-execution context for a *replicated* microthread.

    Every primitive-op result (allocated addresses, memory reads, file
    I/O) is appended to ``oplog`` in call order, so a shadow re-execution
    can replay the exact same inputs without touching cluster state — the
    dynamic-dependency problem that makes naive replication unsound:
    a second live execution would allocate fresh addresses and observe
    later memory states, and its effects would never compare equal.

    ``args_snapshot`` is a deep copy of the frame's parameters taken
    *before* the primary runs: microthreads freely mutate mutable
    arguments (the primes pipeline threads one state dict through its
    collect chain), so a shadow fed the live objects would observe the
    primary's mutations instead of the original inputs.
    """

    def __init__(self, frame: Microframe, site,  # noqa: ANN001
                 thread_table: Dict[str, Tuple[int, int]]) -> None:
        super().__init__(frame, site, thread_table)
        self.oplog: List[Any] = []
        self.args_snapshot: List[Any] = copy.deepcopy(frame.arguments())
        #: the compiled microthread, stashed so the verify path can hand
        #: the same entry point to shadow re-executions
        self.compiled: Any = None

    def _record(self, value: Any) -> Any:
        self.oplog.append(value)
        return value

    def _op_alloc_frame_address(self) -> GlobalAddress:
        return self._record(super()._op_alloc_frame_address())

    def _op_malloc(self, value: Any) -> GlobalAddress:
        return self._record(super()._op_malloc(value))

    def _op_read(self, address: GlobalAddress) -> Any:
        return self._record(super()._op_read(address))

    def _op_file_open(self, path: str, mode: str) -> FileHandle:
        return self._record(super()._op_file_open(path, mode))

    def _op_file_read(self, handle: FileHandle, size: int) -> bytes:
        return self._record(super()._op_file_read(handle, size))

    def _op_file_write(self, handle: FileHandle, data: bytes) -> int:
        return self._record(super()._op_file_write(handle, data))


class ReplaySimContext(SimExecutionContext):
    """Shadow-execution context: primitive ops replay the primary's oplog.

    The shadow observes byte-for-byte the primary's inputs (same
    addresses, same read values, same per-execution RNG seed — the seed
    is derived from the frame id and the cluster-wide config seed, so it
    is site-independent) and touches no cluster state of its own.  Its
    buffered effects are therefore directly comparable to the primary's:
    any divergence is corruption of one of the two executions, not
    environmental drift.
    """

    def __init__(self, frame: Microframe, site,  # noqa: ANN001
                 thread_table: Dict[str, Tuple[int, int]],
                 oplog: List[Any], started_at: float) -> None:
        super().__init__(frame, site, thread_table)
        # observe the primary's clock, not the shadow site's
        self._now = started_at
        self._oplog = oplog
        self._cursor = 0

    def _replay(self) -> Any:
        if self._cursor >= len(self._oplog):
            raise ProgramError(
                "shadow execution diverged: more primitive ops than the "
                "primary recorded")
        value = self._oplog[self._cursor]
        self._cursor += 1
        return value

    def _op_alloc_frame_address(self) -> GlobalAddress:
        return self._replay()

    def _op_malloc(self, value: Any) -> GlobalAddress:
        return self._replay()

    def _op_read(self, address: GlobalAddress) -> Any:
        return self._replay()

    def _op_file_open(self, path: str, mode: str) -> FileHandle:
        return self._replay()

    def _op_file_read(self, handle: FileHandle, size: int) -> bytes:
        return self._replay()

    def _op_file_write(self, handle: FileHandle, data: bytes) -> int:
        return self._replay()

    def _op_file_seek(self, handle: FileHandle, offset: int) -> None:
        return None

    def _op_file_close(self, handle: FileHandle) -> None:
        return None
