"""Execution context for the simulation kernel.

Side effects are buffered and dispatched at the execution's simulated
completion time (§3.2: extract -> calculate -> create frames -> send
results).  Memory reads resolve immediately against the shared object
directory but charge the modelled round-trip as *wait time*, which the
processing manager overlaps with other executions (latency hiding).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.common.ids import FileHandle, GlobalAddress
from repro.core.context import Effect, ExecutionContext
from repro.core.frames import Microframe


class SimExecutionContext(ExecutionContext):
    def __init__(self, frame: Microframe, site,  # noqa: ANN001
                 thread_table: Dict[str, Tuple[int, int]]) -> None:
        super().__init__(frame, thread_table, site.site_id,
                         site.kernel.now, seed=site.config.seed)
        self._site = site
        self.effects: List[Effect] = []
        #: modelled seconds spent waiting on remote memory / files
        self.wait_time = 0.0

    # ------------------------------------------------------------------
    def _emit(self, effect: Effect) -> None:
        self.effects.append(effect)

    def _op_alloc_frame_address(self) -> GlobalAddress:
        return self._site.attraction_memory.alloc_address()

    def _op_malloc(self, value: Any) -> GlobalAddress:
        return self._site.attraction_memory.alloc_object(value)

    def _op_read(self, address: GlobalAddress) -> Any:
        value, latency = self._site.attraction_memory.sim_read(address)
        self.wait_time += latency
        return value

    # -- files (cluster-wide VFS; remote handles charge a round trip) ----
    def _op_file_open(self, path: str, mode: str) -> FileHandle:
        handle, latency = self._site.io_manager.sim_open(path, mode)
        self.wait_time += latency
        return handle

    def _op_file_read(self, handle: FileHandle, size: int) -> bytes:
        data, latency = self._site.io_manager.sim_read(handle, size)
        self.wait_time += latency
        return data

    def _op_file_write(self, handle: FileHandle, data: bytes) -> int:
        written, latency = self._site.io_manager.sim_write(handle, data)
        self.wait_time += latency
        return written

    def _op_file_seek(self, handle: FileHandle, offset: int) -> None:
        latency = self._site.io_manager.sim_seek(handle, offset)
        self.wait_time += latency

    def _op_file_close(self, handle: FileHandle) -> None:
        self._site.io_manager.sim_close(handle)
