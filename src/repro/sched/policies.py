"""Queue disciplines for the scheduling manager.

The paper (§4): "a LIFO-strategy is used for the replying to help requests
to hide the communication latencies.  To avoid starving of microframes, a
FIFO-strategy is used momentarily for the local scheduling."  Both are
policy knobs here (``SchedulingConfig``) so the bench in
``benchmarks/bench_help_policies.py`` can cross them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.errors import SchedulingError
from repro.core.frames import Microframe


def pop_frame(queue: Deque[Microframe], policy: str,
              use_hints: bool) -> Microframe:
    """Take the next frame for *local* consumption.

    ``priority`` policy (and ``use_hints`` under any policy) prefers frames
    the CDAG marked critical / high priority (§3.3 scheduling hints).
    """
    if not queue:
        raise SchedulingError("pop from empty frame queue")
    if policy == "priority" or (use_hints and _has_hints(queue)):
        best_index = 0
        best_key = _hint_key(queue[0])
        for index in range(1, len(queue)):
            key = _hint_key(queue[index])
            if key > best_key:
                best_key = key
                best_index = index
        frame = queue[best_index]
        del queue[best_index]
        return frame
    if policy == "lifo":
        return queue.pop()
    if policy == "fifo":
        return queue.popleft()
    raise SchedulingError(f"unknown local policy {policy!r}")


def take_for_help(queue: Deque[Microframe], policy: str) -> Microframe:
    """Take a frame to give away on a help request (LIFO per the paper)."""
    if not queue:
        raise SchedulingError("take_for_help from empty queue")
    if policy == "lifo":
        return queue.pop()
    if policy == "fifo":
        return queue.popleft()
    raise SchedulingError(f"unknown help reply policy {policy!r}")


def take_batch_for_help(queue: Deque[Microframe], policy: str,
                        count: int) -> list:
    """Take up to ``count`` frames to give away in one batched HELP_REPLY
    (steal-half: the caller sizes ``count`` from its spare depth)."""
    if count < 1:
        raise SchedulingError("take_batch_for_help needs count >= 1")
    out = []
    while queue and len(out) < count:
        out.append(take_for_help(queue, policy))
    return out


def take_push_batch(queue: Deque[Microframe], policy: str,
                    count: int) -> list:
    """Take up to ``count`` *non-critical* frames for a proactive push.

    Critical-path frames stay local: the hints machinery pulls them
    through the fast path here, and shipping them would put the program's
    spine behind a network hop.
    """
    if count < 1:
        raise SchedulingError("take_push_batch needs count >= 1")
    taken: list = []
    kept: list = []
    while queue and len(taken) < count:
        frame = take_for_help(queue, policy)
        if frame.critical:
            kept.append(frame)
        else:
            taken.append(frame)
    if policy == "lifo":
        queue.extend(reversed(kept))
    else:
        for frame in reversed(kept):
            queue.appendleft(frame)
    return taken


#: Knuth multiplicative-hash constant for replicate selection
_REPLICATE_HASH = 2654435761


def replicate_chosen(frame_key: int, frac: float) -> bool:
    """Decide whether one microthread execution is replicated (the
    silent-data-corruption defense, ``SchedulingConfig.replicate_frac``).

    Selection is a deterministic hash of the frame's packed address, not
    an RNG draw: the same frame makes the same choice on every site,
    every retry, and every replay — and ``frac=0.0`` consumes zero
    randomness, keeping replication-off runs bit-identical.
    """
    if frac <= 0.0:
        return False
    if frac >= 1.0:
        return True
    hashed = (frame_key * _REPLICATE_HASH) & 0xFFFFFFFF
    return hashed < frac * 4294967296.0


def _has_hints(queue: Deque[Microframe]) -> bool:
    return any(f.critical or f.priority > 0.0 for f in queue)


def _hint_key(frame: Microframe) -> tuple:
    # critical-path frames first, then higher priority, then older frames
    return (1 if frame.critical else 0, frame.priority, -frame.created_at)
