"""Distributed scheduling (paper §3.3, §4, Fig. 5).

Each site schedules autonomously from local knowledge only: a queue of
*executable* microframes (all parameters present) feeds a queue of *ready*
microframes (code pointer fetched) which feeds the processing manager.  An
idle site pulls work from peers with *help requests*; repliers hand out
frames LIFO ("to hide the communication latencies") while local execution
is FIFO ("to avoid starving of microframes").
"""

from repro.sched.manager import SchedulingManager
from repro.sched.policies import pop_frame, take_for_help

__all__ = ["SchedulingManager", "pop_frame", "take_for_help"]
