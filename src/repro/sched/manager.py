"""The scheduling manager (paper §3.3, §4, Fig. 5)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.common.ids import GlobalAddress, ManagerId
from repro.core.frames import FrameState, Microframe
from repro.core.threads import CompiledMicrothread
from repro.messages import MsgType, SDMessage, make_reply
from repro.sched.policies import pop_frame, take_for_help
from repro.site.manager_base import Manager


class SchedulingManager(Manager):
    manager_id = ManagerId.SCHEDULING

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        #: frames with all parameters, awaiting a code pointer
        self.executable: Deque[Microframe] = deque()
        #: (frame, compiled) pairs ready for the processing manager
        self.ready: Deque[Tuple[Microframe, CompiledMicrothread]] = deque()
        #: frames whose code fetch is in flight (kept here so they can be
        #: relocated if the site leaves mid-fetch)
        self._pending_code: Dict[GlobalAddress, Microframe] = {}
        #: processing-manager slots waiting for work
        self._pm_hungry = 0
        #: one help request outstanding at a time
        self._help_outstanding = False
        self._help_backoff = 1.0
        self._help_timer = None
        #: peers that recently replied CANT_HELP (logical id -> until time)
        self._cooldown: Dict[int, float] = {}
        #: per-frame code-fetch retry budget
        self._code_retries: Dict[GlobalAddress, int] = {}
        #: send time of the outstanding help request (tail latency stats)
        self._help_sent_at = -1.0

    # ------------------------------------------------------------------
    # intake

    def enqueue_executable(self, frame: Microframe) -> None:
        """Attraction memory hands over a frame whose last parameter just
        arrived — or a stolen/migrated frame lands here."""
        if not self.site.program_manager.is_active(frame.program):
            self.stats.inc("frames_dropped_terminated")
            return
        frame.created_at = self.kernel.now
        self.kernel.cpu_charge(self.cost.sched_decision_cost)
        self.executable.append(frame)
        self.stats.inc("frames_enqueued")
        tr = self.tracer
        if tr is not None:
            # the frame becomes executable under the current causal context
            # (the message that delivered its last parameter, the stolen
            # frame's HELP_REPLY, or the parent execution) — remember it so
            # exec_begin can link the execution into the DAG.
            frame.cause_node = self.site.cause_node
            frame.cause_origin = self.site.cause_origin
            tr.emit(self.kernel.now, self.local_id, "frame_enqueued",
                    frame.frame_id.pack(), frame.program)
        self._fill_ready()

    # ------------------------------------------------------------------
    # executable -> ready (code fetch)

    def _fill_ready(self) -> None:
        """Prefetch code so the ready queue stays at its target depth.

        Critical-path frames are always pulled through immediately (§3.3
        hints), so they never wait behind the prefetch window.
        """
        cfg = self.config.scheduling
        want = cfg.ready_target + self._pm_hungry
        if cfg.use_hints:
            want += sum(1 for f in self.executable if f.critical)
        while (self.executable
               and len(self.ready) + len(self._pending_code) < want):
            frame = pop_frame(self.executable, cfg.local_policy,
                              cfg.use_hints)
            self._pending_code[frame.frame_id] = frame
            self.site.code_manager.get(
                frame.program, frame.thread_id,
                lambda compiled, f=frame: self._code_arrived(f, compiled))

    def _code_arrived(self, frame: Microframe,
                      compiled: Optional[CompiledMicrothread]) -> None:
        if self._pending_code.pop(frame.frame_id, None) is None:
            # frame was exported (sign-off relocation) while we fetched
            return
        if not self.site.program_manager.is_active(frame.program):
            self._code_retries.pop(frame.frame_id, None)
            return
        if compiled is None:
            retries = self._code_retries.get(frame.frame_id, 0)
            if retries < 3:
                self._code_retries[frame.frame_id] = retries + 1
                self.stats.inc("code_retries")
                self.executable.append(frame)
                self._fill_ready()
                return
            self._code_retries.pop(frame.frame_id, None)
            self.stats.inc("code_unavailable")
            self.site.program_manager.local_exit(
                frame.program, None, failed=True,
                failure=f"code for thread {frame.thread_id} unavailable")
            return
        self._code_retries.pop(frame.frame_id, None)
        frame.state = FrameState.READY
        self.ready.append((frame, compiled))
        self.stats.inc("frames_readied")
        self._serve()
        self._fill_ready()

    # ------------------------------------------------------------------
    # ready -> processing manager

    def pm_request_work(self) -> None:
        """The processing manager has a free slot (paper: "If it is idle,
        it requests a pair of an executable microframe and its
        corresponding microthread")."""
        self._pm_hungry += 1
        self._serve()
        if self._pm_hungry:
            self._fill_ready()
            self._maybe_help()

    def _serve(self) -> None:
        if self.site.paused:
            return
        pm = self.site.processing_manager
        while self.ready:
            frame = self.ready[0][0]
            requested = True
            if self._pm_hungry:
                self._pm_hungry -= 1
            elif (self.config.scheduling.use_hints and frame.critical
                  and pm.can_overcommit()):
                # critical-path frames jump the queue into an extra slot
                self.stats.inc("critical_overcommits")
                requested = False
            else:
                break
            frame, compiled = self.ready.popleft()
            self.kernel.cpu_charge(self.cost.sched_decision_cost)
            pm.receive_work(frame, compiled, requested=requested)
        # with everything handed out, consider prefetching the next steal
        self._maybe_help()

    # ------------------------------------------------------------------
    # help requests (work stealing)

    def _maybe_help(self) -> None:
        if self.site.paused or self.site.sleeping:
            return
        if (self._help_outstanding
                or self.ready
                or self.executable
                or self._pending_code):
            return
        if self._pm_hungry == 0:
            # not idle — but optionally keep one steal in flight so the
            # next frame is local by the time the current one completes
            if not (self.config.scheduling.prefetch_steal
                    and self.site.processing_manager.in_flight > 0):
                return
        if not self.site.program_manager.has_active_programs():
            return
        self._send_help()

    def _send_help(self, exclude: Optional[Set[int]] = None) -> None:
        now = self.kernel.now
        excluded = set(exclude or ())
        excluded.update(s for s, until in self._cooldown.items()
                        if until > now)
        target = self.site.cluster_manager.pick_help_target(excluded)
        if target is None:
            self._schedule_retry()
            return
        self._help_outstanding = True
        msg = SDMessage(
            type=MsgType.HELP_REQUEST,
            src_site=self.local_id, src_manager=ManagerId.SCHEDULING,
            dst_site=target, dst_manager=ManagerId.SCHEDULING,
            payload={
                "record": self.site.cluster_manager.local_record_wire(),
                "load": self.site.site_manager.current_load(),
            },
        )
        self.stats.inc("help_sent")
        self._help_sent_at = now
        tr = self.tracer
        if tr is not None:
            tr.emit(now, self.local_id, "help_request", target)
        ok = self.site.message_manager.request(
            msg, self._on_help_reply,
            timeout=max(4 * self.config.scheduling.help_retry_interval, 0.05),
            on_timeout=lambda: self._help_failed(target))
        if not ok:
            self._help_failed(target)

    def _help_failed(self, target: int) -> None:
        self._help_outstanding = False
        self._cooldown[target] = (self.kernel.now
                                  + self._help_backoff
                                  * self.config.scheduling.help_retry_interval)
        self._schedule_retry()

    def _on_help_reply(self, msg: SDMessage) -> None:
        self._help_outstanding = False
        if self._help_sent_at >= 0:
            self.stats.observe("help_latency",
                               self.kernel.now - self._help_sent_at)
            self._help_sent_at = -1.0
        self.site.cluster_manager.note_load(msg.src_site,
                                            msg.payload.get("load", 0.0))
        if msg.type == MsgType.CANT_HELP:
            self.stats.inc("cant_help_received")
            self._help_failed(msg.src_site)
            return
        if msg.type != MsgType.HELP_REPLY:
            self.log("unexpected help reply %s", msg.type.name)
            return
        self._cooldown.clear()
        self._adopt_steal(msg)

    def _adopt_steal(self, msg: SDMessage) -> None:
        """Account for one stolen frame arriving via HELP_REPLY.

        Shared by the correlated reply path and the late-reply path in
        :meth:`handle`, so both count ``steals_in``, journal the steal,
        reset the help backoff, and take the victim off cooldown — a late
        reply is still a successful steal.
        """
        info_wire = msg.payload.get("program_info")
        if info_wire is not None:
            self.site.program_manager.learn_program_wire(info_wire)
        frame = Microframe.from_wire(msg.payload["frame"])
        self.stats.inc("steals_in")
        self.site.journal_event("steal_in", victim=msg.src_site,
                                frame=frame.frame_id.pack())
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "steal_in",
                    msg.src_site, frame.frame_id.pack())
        self._help_backoff = 1.0
        self._cooldown.pop(msg.src_site, None)
        self.enqueue_executable(frame)

    def _schedule_retry(self) -> None:
        if self._help_timer is not None:
            return
        if not self.site.program_manager.has_active_programs():
            return
        delay = (self.config.scheduling.help_retry_interval
                 * self._help_backoff)
        self._help_backoff = min(self._help_backoff * 1.5, 8.0)
        self._help_timer = self.kernel.call_later(delay, self._retry_tick)

    def _retry_tick(self) -> None:
        self._help_timer = None
        if not self.site.running:
            return
        self._maybe_help()

    def kick(self) -> None:
        """External nudge (program registered, site joined/unpaused/woken):
        serve anything that accumulated, refill, and retry stealing."""
        self._help_backoff = 1.0
        if self._help_timer is not None:
            self.kernel.cancel(self._help_timer)
            self._help_timer = None
        # frames may have reached the ready queue while we were paused or
        # asleep — hand them out before considering a steal
        self._serve()
        self._fill_ready()
        self._maybe_help()

    # ------------------------------------------------------------------
    # serving help requests from other sites

    def handle(self, msg: SDMessage) -> None:
        if msg.type == MsgType.HELP_REQUEST:
            self._on_help_request(msg)
        elif msg.type in (MsgType.HELP_REPLY, MsgType.CANT_HELP):
            # late reply whose request timed out: a HELP_REPLY still carries
            # a stolen frame, so run it through the same accounting as the
            # correlated path (stats, journal, backoff and cooldown reset) —
            # without touching ``_help_outstanding``, which now belongs to a
            # newer request, and without clearing other sites' cooldowns
            if msg.type == MsgType.HELP_REPLY:
                self._adopt_steal(msg)
        else:
            super().handle(msg)

    def _on_help_request(self, msg: SDMessage) -> None:
        record = msg.payload.get("record")
        if record is not None:
            self.site.cluster_manager.learn_record(record)
        self.site.cluster_manager.note_load(msg.src_site,
                                            msg.payload.get("load", 0.0))
        cfg = self.config.scheduling
        my_load = self.site.site_manager.current_load()
        tr = self.tracer
        if self.site.paused:
            self.site.message_manager.send(make_reply(
                msg, MsgType.CANT_HELP, {"load": my_load}))
            self.stats.inc("cant_help_sent")
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "cant_help",
                        msg.src_site)
            return
        spare = len(self.executable) + len(self.ready)
        if spare > cfg.keep_local_min and self.executable:
            frame = take_for_help(self.executable, cfg.help_reply_policy)
        elif spare > cfg.keep_local_min and self.ready:
            frame, _compiled = (self.ready.pop()
                                if cfg.help_reply_policy == "lifo"
                                else self.ready.popleft())
        else:
            self.site.message_manager.send(make_reply(
                msg, MsgType.CANT_HELP, {"load": my_load}))
            self.stats.inc("cant_help_sent")
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "cant_help",
                        msg.src_site)
            return
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "steal_out",
                    msg.src_site, frame.frame_id.pack())
        payload = {
            "frame": frame.to_wire(),
            "load": my_load,
        }
        if self.site.program_manager.knows(frame.program):
            payload["program_info"] = (
                self.site.program_manager.get(frame.program).to_wire())
        self.site.message_manager.send(make_reply(
            msg, MsgType.HELP_REPLY, payload))
        self.stats.inc("steals_out")

    # ------------------------------------------------------------------
    # bookkeeping

    def drop_program(self, pid: int) -> None:
        before = self.queue_depth()
        self.executable = deque(f for f in self.executable
                                if f.program != pid)
        self.ready = deque((f, c) for f, c in self.ready if f.program != pid)
        self._pending_code = {fid: f for fid, f in self._pending_code.items()
                              if f.program != pid}
        # every queued frame of the dead program is a termination drop —
        # counted so frame conservation (enqueues vs outcomes) stays exact
        for _ in range(before - self.queue_depth()):
            self.stats.inc("frames_dropped_terminated")
        # retry budgets key off frame ids, so entries for this program's
        # frames would otherwise accumulate across program lifetimes
        if self._code_retries:
            kept = {f.frame_id for f in self.executable}
            kept.update(f.frame_id for f, _c in self.ready)
            kept.update(self._pending_code)
            self._code_retries = {fid: n
                                  for fid, n in self._code_retries.items()
                                  if fid in kept}

    def snapshot_frames(self) -> List[Microframe]:
        """Copy of queued frames (checkpoint wave — queues stay in place)."""
        return (list(self.executable) + [f for f, _c in self.ready]
                + list(self._pending_code.values()))

    def reset_for_recovery(self) -> None:
        """Drop every queued frame (rollback: the checkpoint restores them).

        Clearing ``_pending_code`` matters: stale in-flight code fetches
        would otherwise keep counting against the ready-queue budget and
        wedge ``_fill_ready`` forever.
        """
        self.executable.clear()
        self.ready.clear()
        self._pending_code.clear()
        self._code_retries.clear()

    def export_frames(self) -> List[Microframe]:
        """Drain all queues (including in-flight code fetches) for sign-off
        relocation (§3.4)."""
        frames = (list(self.executable) + [f for f, _c in self.ready]
                  + list(self._pending_code.values()))
        self.executable.clear()
        self.ready.clear()
        self._pending_code.clear()
        # the frames start fresh on their new site; keeping the retry map
        # here would leak one entry per relocated frame forever
        self._code_retries.clear()
        return frames

    def queue_depth(self) -> int:
        return (len(self.executable) + len(self.ready)
                + len(self._pending_code))

    def on_stop(self) -> None:
        if self._help_timer is not None:
            self.kernel.cancel(self._help_timer)
            self._help_timer = None

    def status(self) -> dict:
        base = super().status()
        base["executable"] = len(self.executable)
        base["ready"] = len(self.ready)
        base["pending_code"] = len(self._pending_code)
        return base
