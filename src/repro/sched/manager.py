"""The scheduling manager (paper §3.3, §4, Fig. 5)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.common.ids import GlobalAddress, ManagerId
from repro.core.frames import FrameState, Microframe
from repro.core.threads import CompiledMicrothread
from repro.messages import MsgType, SDMessage, make_reply
from repro.sched.policies import (pop_frame, take_batch_for_help,
                                  take_push_batch)
from repro.site.manager_base import Manager


class _HelpRequest:
    """Bookkeeping for one in-flight help request."""

    __slots__ = ("target", "prefetch", "sent_at")

    def __init__(self, target: int, prefetch: bool, sent_at: float) -> None:
        self.target = target
        self.prefetch = prefetch
        self.sent_at = sent_at


class SchedulingManager(Manager):
    manager_id = ManagerId.SCHEDULING

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        #: frames with all parameters, awaiting a code pointer
        self.executable: Deque[Microframe] = deque()
        #: (frame, compiled) pairs ready for the processing manager
        self.ready: Deque[Tuple[Microframe, CompiledMicrothread]] = deque()
        #: frames whose code fetch is in flight (kept here so they can be
        #: relocated if the site leaves mid-fetch)
        self._pending_code: Dict[GlobalAddress, Microframe] = {}
        #: processing-manager slots waiting for work
        self._pm_hungry = 0
        #: in-flight help requests, keyed by message seq — the live-request
        #: fence: only a reply matching one of these may reset backoff and
        #: cooldown state (late replies already fed the failure path)
        self._inflight_helps: Dict[int, _HelpRequest] = {}
        self._help_backoff = 1.0
        self._help_timer = None
        #: peers that recently refused/timed out (logical id -> until time)
        self._cooldown: Dict[int, float] = {}
        #: help requests held for a deferred grant (thief's request seq ->
        #: (message, expiry timer)) — insertion order is grant order
        self._parked_helps: Dict[int, Tuple[SDMessage, object]] = {}
        #: per-frame code-fetch retry budget
        self._code_retries: Dict[GlobalAddress, int] = {}
        #: low-rate LOAD_REPORT gossip heartbeat
        self._gossip_timer = None
        self._gossip_cursor = 0
        #: guards against pushing frames we are adopting right now
        self._adopting = False
        # per-peer state (cooldown, in-flight fence, parked thieves) must
        # not outlive the peer: departed sites would otherwise accumulate
        # forever in long-lived clusters
        site.cluster_manager.on_site_departed.append(self._on_peer_departed)

    # ------------------------------------------------------------------
    # intake

    def enqueue_executable(self, frame: Microframe) -> None:
        """Attraction memory hands over a frame whose last parameter just
        arrived — or a stolen/migrated frame lands here."""
        if not self.site.program_manager.is_active(frame.program):
            self.stats.inc("frames_dropped_terminated")
            return
        frame.created_at = self.kernel.now
        self.kernel.cpu_charge(self.cost.sched_decision_cost)
        self.executable.append(frame)
        self.stats.inc("frames_enqueued")
        tr = self.tracer
        if tr is not None:
            # the frame becomes executable under the current causal context
            # (the message that delivered its last parameter, the stolen
            # frame's HELP_REPLY, or the parent execution) — remember it so
            # exec_begin can link the execution into the DAG.
            frame.cause_node = self.site.cause_node
            frame.cause_origin = self.site.cause_origin
            tr.emit(self.kernel.now, self.local_id, "frame_enqueued",
                    frame.frame_id.pack(), frame.program)
        self._fill_ready()
        if not self._adopting:
            # a frame adopted from a steal must not be re-granted to a
            # parked thief in the same breath: with many starved sites
            # that relays frames around the cluster without ever
            # executing them, and the parameter routing behind each hop
            # is what breaks when a frame's home site dies mid-chain
            self._serve_parked_helps()
        self._maybe_push()

    def stealable_depth(self) -> int:
        """Frames this site could hand to a thief right now (piggybacked on
        every outgoing message as the gossip load view's queue figure)."""
        return len(self.executable) + len(self.ready)

    # ------------------------------------------------------------------
    # executable -> ready (code fetch)

    def _fill_ready(self) -> None:
        """Prefetch code so the ready queue stays at its target depth.

        Critical-path frames are always pulled through immediately (§3.3
        hints), so they never wait behind the prefetch window.
        """
        cfg = self.config.scheduling
        want = cfg.ready_target + self._pm_hungry
        if cfg.use_hints:
            want += sum(1 for f in self.executable if f.critical)
        while (self.executable
               and len(self.ready) + len(self._pending_code) < want):
            frame = pop_frame(self.executable, cfg.local_policy,
                              cfg.use_hints)
            self._pending_code[frame.frame_id] = frame
            self.site.code_manager.get(
                frame.program, frame.thread_id,
                lambda compiled, f=frame: self._code_arrived(f, compiled))

    def _code_arrived(self, frame: Microframe,
                      compiled: Optional[CompiledMicrothread]) -> None:
        if self._pending_code.pop(frame.frame_id, None) is None:
            # frame was exported (sign-off relocation) while we fetched
            return
        if not self.site.program_manager.is_active(frame.program):
            self._code_retries.pop(frame.frame_id, None)
            return
        if compiled is None:
            retries = self._code_retries.get(frame.frame_id, 0)
            if retries < 3:
                self._code_retries[frame.frame_id] = retries + 1
                self.stats.inc("code_retries")
                self.executable.append(frame)
                self._fill_ready()
                return
            self._code_retries.pop(frame.frame_id, None)
            self.stats.inc("code_unavailable")
            self.site.program_manager.local_exit(
                frame.program, None, failed=True,
                failure=f"code for thread {frame.thread_id} unavailable")
            return
        self._code_retries.pop(frame.frame_id, None)
        frame.state = FrameState.READY
        self.ready.append((frame, compiled))
        self.stats.inc("frames_readied")
        self._serve()
        self._fill_ready()

    # ------------------------------------------------------------------
    # ready -> processing manager

    def pm_request_work(self) -> None:
        """The processing manager has a free slot (paper: "If it is idle,
        it requests a pair of an executable microframe and its
        corresponding microthread")."""
        self._pm_hungry += 1
        self._serve()
        if self._pm_hungry:
            self._fill_ready()
            self._maybe_help()

    def _serve(self) -> None:
        if self.site.paused:
            return
        pm = self.site.processing_manager
        while self.ready:
            frame = self.ready[0][0]
            requested = True
            if self._pm_hungry:
                self._pm_hungry -= 1
            elif (self.config.scheduling.use_hints and frame.critical
                  and pm.can_overcommit()):
                # critical-path frames jump the queue into an extra slot
                self.stats.inc("critical_overcommits")
                requested = False
            else:
                break
            frame, compiled = self.ready.popleft()
            self.kernel.cpu_charge(self.cost.sched_decision_cost)
            pm.receive_work(frame, compiled, requested=requested)
        # with everything handed out, consider prefetching the next steal
        self._maybe_help()

    # ------------------------------------------------------------------
    # help requests (work stealing)

    def _maybe_help(self) -> None:
        if self.site.paused or self.site.sleeping:
            return
        if self.ready or self.executable or self._pending_code:
            return
        idle = self._pm_hungry > 0
        if self._inflight_helps:
            if not idle:
                return
            # a prefetch steal in flight must not gag a genuinely idle
            # site for a full timeout: escalate once with a real request
            if any(not req.prefetch
                   for req in self._inflight_helps.values()):
                return
        elif not idle:
            # not idle — but optionally keep one steal in flight so the
            # next frame is local by the time the current one completes
            if not (self.config.scheduling.prefetch_steal
                    and self.site.processing_manager.in_flight > 0):
                return
        if not self.site.program_manager.has_active_programs():
            return
        self._send_help(prefetch=not idle)

    def _steal_want(self) -> int:
        """Thief capacity advertised on a help request: how many frames a
        steal-half reply may batch for us."""
        cfg = self.config.scheduling
        pm = self.site.processing_manager
        free = max(0, pm.max_parallel - pm.in_flight)
        return max(1, min(cfg.steal_batch_max, free + cfg.ready_target))

    def _send_help(self, prefetch: bool = False,
                   exclude: Optional[Set[int]] = None) -> None:
        now = self.kernel.now
        cfg = self.config.scheduling
        excluded = set(exclude or ())
        excluded.update(req.target for req in self._inflight_helps.values())
        excluded.update(s for s, until in self._cooldown.items()
                        if until > now)
        cm = self.site.cluster_manager
        rounds = 1 if prefetch else cfg.help_fanout
        sent = 0
        for _ in range(rounds):
            target = cm.pick_help_target(excluded)
            if target is None:
                break
            excluded.add(target)
            msg = SDMessage(
                type=MsgType.HELP_REQUEST,
                src_site=self.local_id, src_manager=ManagerId.SCHEDULING,
                dst_site=target, dst_manager=ManagerId.SCHEDULING,
                payload={
                    "record": cm.local_record_wire(),
                    "load": self.site.site_manager.current_load(),
                    "want": self._steal_want(),
                    "prefetch": prefetch,
                },
            )
            self.stats.inc("help_sent")
            tr = self.tracer
            if tr is not None:
                tr.emit(now, self.local_id, "help_request", target)
            ok = self.site.message_manager.request(
                msg, self._on_help_reply,
                timeout=max(4 * cfg.help_retry_interval, 0.05),
                on_timeout=lambda m=msg: self._help_timed_out(m.seq))
            if not ok:
                self._help_failed(target)
                continue
            self._inflight_helps[msg.seq] = _HelpRequest(target, prefetch,
                                                         now)
            sent += 1
        if sent == 0:
            self._schedule_retry()

    def _help_timed_out(self, seq: int) -> None:
        request = self._inflight_helps.pop(seq, None)
        if request is None:
            return
        self.stats.inc("help_timeouts")
        self._help_failed(request.target)

    def _help_failed(self, target: int) -> None:
        self._cooldown[target] = (self.kernel.now
                                  + self._help_backoff
                                  * self.config.scheduling.help_retry_interval)
        self._schedule_retry()

    def _on_help_reply(self, msg: SDMessage) -> None:
        request = self._inflight_helps.pop(msg.reply_to, None)
        if request is not None:
            self.stats.observe("help_latency",
                               self.kernel.now - request.sent_at)
        self.site.cluster_manager.note_load(
            msg.src_site, msg.payload.get("load", 0.0),
            queue=msg.payload.get("queue", msg.src_queue))
        if msg.type == MsgType.CANT_HELP:
            self.stats.inc("cant_help_received")
            self._help_failed(msg.src_site)
            # the refusal taught us only that *this* victim was drained,
            # not that the cluster is: an idle thief whose load view
            # still shows a fresh deep queue elsewhere re-targets it now
            # instead of sitting out the backoff delay.  Self-limiting in
            # a small cluster: the refuser just went on cooldown and its
            # piggybacked queue figure stops it counting as deep.  In a
            # large cluster this eager re-targeting is NOT self-limiting
            # — rumor-fed load views nearly always show a deep queue
            # somewhere, so resetting the backoff here melts every
            # refusal into an RTT-rate beg loop; past the sample size,
            # thieves sit out their backoff and rely on the (gated)
            # gossip wake-ups instead.
            cm = self.site.cluster_manager
            if (self._pm_hungry and not self._inflight_helps
                    and len(cm.alive_peers()) <= cm.PICK_SAMPLE):
                cfg = self.config.scheduling
                now = self.kernel.now
                if any(now - r.load_at <= cfg.gossip_staleness
                       and r.queue >= cfg.steal_min_queue
                       and self._cooldown.get(r.logical, 0.0) <= now
                       for r in cm.peer_sample()):
                    if self._help_timer is not None:
                        self.kernel.cancel(self._help_timer)
                        self._help_timer = None
                    self._help_backoff = 1.0
                    self._maybe_help()
            return
        if msg.type != MsgType.HELP_REPLY:
            self.log("unexpected help reply %s", msg.type.name)
            return
        self.stats.inc("steal_grants")
        self._adopt_steal(msg, live=request is not None)

    def _adopt_steal(self, msg: SDMessage, live: bool) -> None:
        """Account for stolen frames arriving via (batched) HELP_REPLY.

        Shared by the correlated reply path and the late-reply path in
        :meth:`handle`, so both count ``steals_in``, journal the steals,
        and enqueue every frame.  Only a *live* reply — one correlated to
        a request still in flight — may reset the help backoff and take
        the victim off cooldown: a late reply's request already timed out
        and fed the congestion state, and wiping that state here would
        erase backoff mid-congestion.
        """
        if msg.payload.get("epoch", self.site.epoch) < self.site.epoch:
            # the victim granted these frames before the last rollback
            # recovery: the checkpoint restored its own copies, so adopting
            # this stale batch would duplicate pre-recovery work — and a
            # stale frame's parameters may reference rolled-back addresses
            self.stats.inc("stale_steals_dropped")
            return
        for info_wire in msg.payload.get("program_infos", ()):
            self.site.program_manager.learn_program_wire(info_wire)
        info_wire = msg.payload.get("program_info")
        if info_wire is not None:
            self.site.program_manager.learn_program_wire(info_wire)
        wires = msg.payload.get("frames")
        if wires is None:
            wires = [msg.payload["frame"]]
        tr = self.tracer
        self._adopting = True
        try:
            for wire in wires:
                frame = Microframe.from_wire(wire)
                self.stats.inc("steals_in")
                self.site.journal_event("steal_in", victim=msg.src_site,
                                        frame=frame.frame_id.pack())
                if tr is not None:
                    tr.emit(self.kernel.now, self.local_id, "steal_in",
                            msg.src_site, frame.frame_id.pack())
                self.enqueue_executable(frame)
        finally:
            self._adopting = False
        if live:
            self._help_backoff = 1.0
            self._cooldown.pop(msg.src_site, None)

    def _on_peer_departed(self, logical: int) -> None:
        """Membership hook: drop all per-peer scheduler state for a site
        that crashed or signed off."""
        self._cooldown.pop(logical, None)
        stale = [seq for seq, req in self._inflight_helps.items()
                 if req.target == logical]
        for seq in stale:
            del self._inflight_helps[seq]
            self.stats.inc("help_targets_departed")
        if stale:
            # don't wait out the request timeout to re-target
            self._schedule_retry()
        dead_parks = [rseq for rseq, (msg, _t) in self._parked_helps.items()
                      if int(msg.payload.get("thief", msg.src_site)) == logical]
        for rseq in dead_parks:
            _msg, timer = self._parked_helps.pop(rseq)
            self.kernel.cancel(timer)
            self.stats.inc("help_parks_dropped_dead")

    def _schedule_retry(self) -> None:
        if self._help_timer is not None:
            return
        if not self.site.program_manager.has_active_programs():
            return
        delay = (self.config.scheduling.help_retry_interval
                 * self._help_backoff)
        # the ceiling can sit well above the old 8x now that gossip
        # wake-ups re-arm a backed-off thief the moment any peer's queue
        # deepens: blind retries into a drained cluster only pad the
        # CANT_HELP count, they don't discover work faster than gossip.
        # Past the sample size the ceiling grows with the cluster, so the
        # aggregate blind-retry rate hitting the few busy sites stays
        # constant instead of scaling O(sites)
        cm = self.site.cluster_manager
        ceiling = max(20.0, float(len(cm.alive_peers())))
        self._help_backoff = min(self._help_backoff * 1.5, ceiling)
        self._help_timer = self.kernel.call_later(delay, self._retry_tick)

    def _retry_tick(self) -> None:
        self._help_timer = None
        if not self.site.running:
            return
        self._maybe_help()

    def kick(self) -> None:
        """External nudge (program registered, site joined/unpaused/woken):
        serve anything that accumulated, refill, and retry stealing."""
        self._help_backoff = 1.0
        if self._help_timer is not None:
            self.kernel.cancel(self._help_timer)
            self._help_timer = None
        # frames may have reached the ready queue while we were paused or
        # asleep — hand them out before considering a steal
        self._serve()
        self._fill_ready()
        self._maybe_help()

    # ------------------------------------------------------------------
    # serving help requests from other sites

    def handle(self, msg: SDMessage) -> None:
        if msg.type == MsgType.HELP_REQUEST:
            self._on_help_request(msg)
        elif msg.type in (MsgType.HELP_REPLY, MsgType.CANT_HELP):
            # late reply whose request timed out: a HELP_REPLY still carries
            # stolen frames, so adopt and count them — but the request
            # already fed the backoff/cooldown failure path when it timed
            # out, so the reply must NOT reset that state (live=False)
            if msg.type == MsgType.HELP_REPLY:
                self.stats.inc("late_steal_grants")
                self._adopt_steal(msg, live=False)
        elif msg.type == MsgType.LOAD_REPORT:
            self._on_load_report(msg)
        else:
            super().handle(msg)

    def _reply_help(self, msg: SDMessage, mtype: MsgType,
                    payload: dict) -> bool:
        """Answer a help request at its *originating* thief — which differs
        from ``msg.src_site`` when an empty victim forwarded the request."""
        return self.site.message_manager.send(SDMessage(
            type=mtype,
            src_site=self.local_id, src_manager=ManagerId.SCHEDULING,
            dst_site=int(msg.payload.get("thief", msg.src_site)),
            dst_manager=ManagerId.SCHEDULING,
            payload=payload,
            reply_to=int(msg.payload.get("rseq", msg.seq))))

    def _thief_alive(self, msg: SDMessage) -> bool:
        record = self.site.cluster_manager.sites.get(
            int(msg.payload.get("thief", msg.src_site)))
        return record is not None and record.alive

    def _cant_help(self, msg: SDMessage, my_load: float) -> None:
        self._reply_help(msg, MsgType.CANT_HELP, {"load": my_load})
        self.stats.inc("cant_help_sent")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "cant_help",
                    int(msg.payload.get("thief", msg.src_site)))

    def _forward_help(self, msg: SDMessage) -> bool:
        """Refer an unhelpable thief onward instead of bouncing it.

        A victim with nothing to spare often *knows* (from fresh gossip)
        a peer that does have stealable work — forwarding the request
        there turns a guaranteed CANT_HELP plus a thief-side retry round
        trip into a single extra hop.  The originating thief and its
        request seq ride in the payload so the eventual holder's reply
        goes straight back to the thief; a hop budget stops a drained
        cluster from playing pass-the-parcel.
        """
        hops = int(msg.payload.get("hops", 0))
        if hops >= 2:
            return False
        thief = int(msg.payload.get("thief", msg.src_site))
        now = self.kernel.now
        staleness = self.config.scheduling.gossip_staleness
        cm = self.site.cluster_manager
        best = None
        # hot-cache candidates ride along so a referral can point outside
        # the sample window; at small cluster sizes they are the same
        # records the sample already yielded and change nothing
        for r in (*cm.peer_sample(), *cm.hot_peers()):
            if r.logical in (thief, msg.src_site):
                continue
            if (r.load_at >= 0 and now - r.load_at <= staleness
                    and r.queue >= self.config.scheduling.steal_min_queue
                    and (best is None or r.queue > best.queue)):
                best = r
        if best is None:
            return False
        payload = dict(msg.payload)
        payload["hops"] = hops + 1
        payload["thief"] = thief
        payload["rseq"] = int(msg.payload.get("rseq", msg.seq))
        # the load/record figures in the payload are the thief's — they
        # must not be re-attributed to this site by the next victim
        payload["load"] = self.site.site_manager.current_load()
        payload.pop("record", None)
        self.stats.inc("helps_forwarded")
        tr = self.tracer
        if tr is not None:
            tr.emit(now, self.local_id, "help_forward", thief, best.logical)
        return self.site.message_manager.send(SDMessage(
            type=MsgType.HELP_REQUEST,
            src_site=self.local_id, src_manager=ManagerId.SCHEDULING,
            dst_site=best.logical, dst_manager=ManagerId.SCHEDULING,
            payload=payload))

    def _on_help_request(self, msg: SDMessage) -> None:
        record = msg.payload.get("record")
        if record is not None:
            self.site.cluster_manager.learn_record(record)
        self.site.cluster_manager.note_load(
            msg.src_site, msg.payload.get("load", 0.0),
            queue=msg.src_queue)
        my_load = self.site.site_manager.current_load()
        if self.site.paused:
            if not self._forward_help(msg):
                self._cant_help(msg, my_load)
            return
        spare = len(self.executable) + len(self.ready)
        avail = spare - self.config.scheduling.keep_local_min
        if avail <= 0:
            if (not self._forward_help(msg)
                    and not self._park_help(msg)):
                self._cant_help(msg, my_load)
            return
        self._grant_help(msg)

    def _grant_help(self, msg: SDMessage) -> None:
        """Hand a batch of frames to the thief behind ``msg``.

        Steal-half, bounded by the thief's advertised capacity and the
        batch cap: hand over at most half of what we could spare.
        """
        cfg = self.config.scheduling
        avail = (len(self.executable) + len(self.ready)
                 - cfg.keep_local_min)
        want = int(msg.payload.get("want", 1))
        count = max(1, min(want, cfg.steal_batch_max, (avail + 1) // 2))
        frames = take_batch_for_help(self.executable, cfg.help_reply_policy,
                                     count)
        while len(frames) < count and self.ready:
            frame, _compiled = (self.ready.pop()
                                if cfg.help_reply_policy == "lifo"
                                else self.ready.popleft())
            frames.append(frame)
        if not frames:
            # nothing actually takeable: an empty HELP_REPLY would read
            # as generosity (backoff reset) — refuse honestly instead
            self._cant_help(msg, self.site.site_manager.current_load())
            return
        thief = int(msg.payload.get("thief", msg.src_site))
        tr = self.tracer
        if tr is not None:
            for frame in frames:
                tr.emit(self.kernel.now, self.local_id, "steal_out",
                        thief, frame.frame_id.pack())
        payload = {
            "frames": [frame.to_wire() for frame in frames],
            "load": self.site.site_manager.current_load(),
            "queue": float(self.stealable_depth()),
            "program_infos": self._program_infos(frames),
            "epoch": self.site.epoch,
        }
        if not self._reply_help(msg, MsgType.HELP_REPLY, payload):
            # unresolvable thief (crashed between request and grant):
            # keep the frames — handing them to a dead site loses them
            self.stats.inc("grants_undeliverable")
            for frame in frames:
                self.executable.append(frame)
            self._fill_ready()
            return
        for _ in frames:
            self.stats.inc("steals_out")
        self.stats.observe("steal_batch", float(len(frames)))

    # ------------------------------------------------------------------
    # deferred grants: parked help requests

    def _park_help(self, msg: SDMessage) -> bool:
        """Hold an unhelpable request briefly instead of refusing.

        Only an *active* victim parks (executions in flight or code
        fetches pending — a frame may surface within an execution time);
        a truly idle one refuses immediately so the thief tries its luck
        elsewhere.  The thief is quiet while its request is in flight, so
        parking also stops it burning retries on other drained victims.
        """
        hold = self.config.scheduling.help_park_max
        if hold <= 0:
            return False
        if not msg.payload.get("prefetch", False):
            # the thief's lanes are empty right now: a prompt CANT_HELP
            # lets it re-target (or react to gossip) within a retry
            # interval, which beats holding it in limbo here — only a
            # prefetching thief (still computing) can afford the wait
            return False
        pm = self.site.processing_manager
        if pm.in_flight <= 0 and not self._pending_code:
            return False
        rseq = int(msg.payload.get("rseq", msg.seq))
        if rseq in self._parked_helps or len(self._parked_helps) >= 8:
            return False
        timer = self.kernel.call_later(
            hold, lambda: self._park_expired(rseq))
        self._parked_helps[rseq] = (msg, timer)
        self.stats.inc("helps_parked")
        return True

    def _park_expired(self, rseq: int) -> None:
        entry = self._parked_helps.pop(rseq, None)
        if entry is None:
            return
        msg, _timer = entry
        self.stats.inc("help_parks_expired")
        self._cant_help(msg, self.site.site_manager.current_load())

    def _serve_parked_helps(self) -> None:
        """Grant parked thieves from fresh surplus, oldest first."""
        cfg = self.config.scheduling
        while self._parked_helps and not self.site.paused:
            if (len(self.executable) + len(self.ready)
                    - cfg.keep_local_min) <= 0:
                return
            rseq = next(iter(self._parked_helps))
            msg, timer = self._parked_helps.pop(rseq)
            self.kernel.cancel(timer)
            if not self._thief_alive(msg):
                # the thief crashed while parked — granting would ship
                # frames into the void
                continue
            self.stats.inc("help_parks_granted")
            self._grant_help(msg)

    def _flush_parked_helps(self) -> None:
        """Refuse everything parked (stop/pause/sign-off paths)."""
        while self._parked_helps:
            rseq = next(iter(self._parked_helps))
            msg, timer = self._parked_helps.pop(rseq)
            self.kernel.cancel(timer)
            self._cant_help(msg, self.site.site_manager.current_load())

    def _program_infos(self, frames: List[Microframe]) -> List[dict]:
        pm = self.site.program_manager
        return [pm.get(pid).to_wire()
                for pid in sorted({f.program for f in frames})
                if pm.knows(pid)]

    # ------------------------------------------------------------------
    # load gossip + proactive push

    def _on_load_report(self, msg: SDMessage) -> None:
        self.stats.inc("gossip_received")
        cm = self.site.cluster_manager
        cm.note_load(
            msg.src_site, msg.payload.get("load", msg.src_load),
            queue=msg.payload.get("queue", msg.src_queue))
        queue = msg.payload.get("queue", msg.src_queue)
        # second-hand rumors: the deepest queues the sender knows of.
        # Epidemic relay spreads "site X has work" in O(log sites)
        # gossip rounds, where first-hand reports alone need O(sites /
        # fanout) ticks to reach everyone — the difference between a
        # 256-site cluster finding its one busy site now or begging
        # blindly until then.  Rumors deliberately do NOT clear
        # cooldowns: a thief this victim already refused stays backed
        # off, otherwise every gossip round re-arms the whole cluster
        # into a synchronized stampede.
        best_rumor = 0.0
        for row in msg.payload.get("hot", ()):
            logical, rqueue = int(row[0]), float(row[1])
            if logical == self.local_id:
                continue
            cm.note_load_rumor(logical, float(row[2]), rqueue,
                               float(row[3]))
            best_rumor = max(best_rumor, rqueue)
        # the steal_min_queue dampener assumes a queue-1 victim will run
        # the frame itself before a request lands — the right bet for a
        # prefetching thief, the wrong one for a site with empty lanes
        # in the drain phase, where single-frame bursts are all there is
        wake_at = (1 if self._pm_hungry
                   else self.config.scheduling.steal_min_queue)
        direct = queue is not None and queue >= wake_at
        if direct or best_rumor >= wake_at:
            if direct:
                # the sender has stealable work: fresh positive first-hand
                # evidence beats stale failure memory, so take it off
                # cooldown and drop the backoff a streak of startup
                # CANT_HELPs built up, then react now instead of waiting
                # out the retry timer
                self._cooldown.pop(msg.src_site, None)
            elif not self._rumor_wakes_me(cm, best_rumor):
                # rumor-only wake in a large cluster: the rumor reaches
                # nearly everyone within a round, so waking every idle
                # site would bury the busy one under O(sites) begs per
                # frame.  A random gate sizes the responders to the
                # advertised depth instead.
                self._maybe_push()
                return
            self._help_backoff = 1.0
            self._maybe_help()
        else:
            # the sender is idle: maybe shed some surplus onto it
            self._maybe_push()

    def _rumor_wakes_me(self, cm, best_rumor: float) -> bool:  # noqa: ANN001
        npeers = len(cm.alive_peers())
        if npeers <= cm.PICK_SAMPLE:
            return True
        chance = min(1.0, 4.0 * best_rumor / npeers)
        return self.kernel.rng.random() < chance

    def _gossip_tick(self) -> None:
        self._gossip_timer = None
        if not self.site.running:
            return
        interval = self.config.scheduling.gossip_interval
        if interval <= 0:
            return
        if (not self.site.paused and not self.site.sleeping
                and self.site.program_manager.has_active_programs()):
            # incrementally maintained by the cluster manager — the old
            # per-tick rebuild+sort was O(sites log sites) on every site
            peers = self.site.cluster_manager.sorted_alive_ids()
            fanout = min(self.config.cluster.gossip_fanout, len(peers))
            if fanout > 0:
                start = self._gossip_cursor % len(peers)
                self._gossip_cursor += fanout
                queue = float(self.stealable_depth())
                load = self.site.site_manager.current_load()
                cm = self.site.cluster_manager
                # rumors only pay off past the sample window; below it
                # every peer is already in everyone's sample, and a
                # silent wire keeps small-cluster runs bit-identical
                rumors = (cm.hot_rumors()
                          if len(peers) > cm.PICK_SAMPLE else [])
                for i in range(fanout):
                    peer = peers[(start + i) % len(peers)]
                    payload = {"load": load, "queue": queue}
                    hot = [row for row in rumors if row[0] != peer]
                    if hot:
                        payload["hot"] = hot
                    self.site.message_manager.send(SDMessage(
                        type=MsgType.LOAD_REPORT,
                        src_site=self.local_id,
                        src_manager=ManagerId.SCHEDULING,
                        dst_site=peer, dst_manager=ManagerId.SCHEDULING,
                        payload=payload,
                    ))
                    self.stats.inc("gossip_sent")
        self._gossip_timer = self.kernel.call_later(interval,
                                                    self._gossip_tick)

    def _maybe_push(self) -> None:
        """Proactive work sharing: an overloaded site pushes surplus frames
        toward a peer it knows (freshly) to be idle, before that peer asks."""
        cfg = self.config.scheduling
        if not cfg.push_enabled or self._adopting:
            return
        if self.site.paused or self.site.sleeping or self._pm_hungry:
            return
        spare = len(self.executable)
        floor = max(cfg.keep_local_min, cfg.push_min_queue)
        if spare <= floor:
            return
        target = self.site.cluster_manager.pick_push_target()
        if target is None:
            return
        count = min(cfg.steal_batch_max, (spare + 1) // 2, spare - floor)
        frames = take_push_batch(self.executable, cfg.help_reply_policy,
                                 count)
        if not frames:
            return
        tr = self.tracer
        for frame in frames:
            self.stats.inc("frames_pushed")
            self.site.journal_event("push_out", target=target,
                                    frame=frame.frame_id.pack())
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "push_out",
                        target, frame.frame_id.pack())
        self.site.message_manager.send(SDMessage(
            type=MsgType.FRAME_TRANSFER,
            src_site=self.local_id, src_manager=ManagerId.SCHEDULING,
            dst_site=target, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={
                "frames": [frame.to_wire() for frame in frames],
                "program_infos": self._program_infos(frames),
                "epoch": self.site.epoch,
            },
        ))
        self.site.cluster_manager.note_pushed(target, len(frames))

    # ------------------------------------------------------------------
    # bookkeeping

    def drop_program(self, pid: int) -> None:
        before = self.queue_depth()
        self.executable = deque(f for f in self.executable
                                if f.program != pid)
        self.ready = deque((f, c) for f, c in self.ready if f.program != pid)
        self._pending_code = {fid: f for fid, f in self._pending_code.items()
                              if f.program != pid}
        # every queued frame of the dead program is a termination drop —
        # counted so frame conservation (enqueues vs outcomes) stays exact
        for _ in range(before - self.queue_depth()):
            self.stats.inc("frames_dropped_terminated")
        # retry budgets key off frame ids, so entries for this program's
        # frames would otherwise accumulate across program lifetimes
        if self._code_retries:
            kept = {f.frame_id for f in self.executable}
            kept.update(f.frame_id for f, _c in self.ready)
            kept.update(self._pending_code)
            self._code_retries = {fid: n
                                  for fid, n in self._code_retries.items()
                                  if fid in kept}

    def snapshot_frames(self) -> List[Microframe]:
        """Copy of queued frames (checkpoint wave — queues stay in place)."""
        return (list(self.executable) + [f for f, _c in self.ready]
                + list(self._pending_code.values()))

    def reset_for_recovery(self) -> None:
        """Drop every queued frame (rollback: the checkpoint restores them).

        Clearing ``_pending_code`` matters: stale in-flight code fetches
        would otherwise keep counting against the ready-queue budget and
        wedge ``_fill_ready`` forever.
        """
        self.executable.clear()
        self.ready.clear()
        self._pending_code.clear()
        self._code_retries.clear()

    def export_frames(self) -> List[Microframe]:
        """Drain all queues (including in-flight code fetches) for sign-off
        relocation (§3.4)."""
        frames = (list(self.executable) + [f for f, _c in self.ready]
                  + list(self._pending_code.values()))
        self.executable.clear()
        self.ready.clear()
        self._pending_code.clear()
        # the frames start fresh on their new site; keeping the retry map
        # here would leak one entry per relocated frame forever
        self._code_retries.clear()
        # parked thieves must look elsewhere — this site is signing off
        self._flush_parked_helps()
        return frames

    def queue_depth(self) -> int:
        return (len(self.executable) + len(self.ready)
                + len(self._pending_code))

    def parked_depth(self) -> int:
        """Help requests currently parked awaiting a frame surplus
        (telemetry: a persistently high figure means thieves are queueing
        behind a victim that never frees anything)."""
        return len(self._parked_helps)

    def on_start(self) -> None:
        if self.config.scheduling.gossip_interval > 0:
            self._gossip_timer = self.kernel.call_later(
                self.config.scheduling.gossip_interval, self._gossip_tick)

    def on_stop(self) -> None:
        if self._help_timer is not None:
            self.kernel.cancel(self._help_timer)
            self._help_timer = None
        if self._gossip_timer is not None:
            self.kernel.cancel(self._gossip_timer)
            self._gossip_timer = None
        # drop parked helps without replying: the site is going away and
        # the thieves' request timeouts handle the silence
        for _msg, timer in self._parked_helps.values():
            self.kernel.cancel(timer)
        self._parked_helps.clear()

    def status(self) -> dict:
        base = super().status()
        base["executable"] = len(self.executable)
        base["ready"] = len(self.ready)
        base["pending_code"] = len(self._pending_code)
        base["inflight_helps"] = len(self._inflight_helps)
        base["parked_helps"] = self.parked_depth()
        return base
