"""Cluster network topologies.

"any network topology between them is supported" (paper abstract) — the
simulated network routes over an explicit weighted graph, so stars, rings,
switched LANs, and WAN-coupled sub-clusters all work.  Internal nodes
(switches, routers) use negative ids; site attachment points are the
non-negative physical addresses.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from repro.common.errors import ConfigError


class Topology:
    """An undirected weighted graph with cached all-pairs path latency."""

    def __init__(self) -> None:
        self._adj: Dict[int, Dict[int, float]] = {}
        self._cache: Dict[int, Dict[int, float]] = {}
        self._down_links: set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        self._adj.setdefault(node, {})
        self._cache.clear()

    def add_link(self, a: int, b: int, latency: float) -> None:
        """Add (or update) a bidirectional link with one-way ``latency``."""
        if latency < 0:
            raise ConfigError(f"link latency must be >= 0, got {latency}")
        if a == b:
            raise ConfigError("self-links are not allowed")
        self._adj.setdefault(a, {})[b] = latency
        self._adj.setdefault(b, {})[a] = latency
        self._cache.clear()

    def remove_node(self, node: int) -> None:
        """Drop a node and all its links (a site leaving / crashing)."""
        for neigh in list(self._adj.get(node, {})):
            del self._adj[neigh][node]
        self._adj.pop(node, None)
        self._cache.clear()

    def set_link_state(self, a: int, b: int, up: bool) -> None:
        """Administratively fail/restore a link (partition experiments)."""
        key = (min(a, b), max(a, b))
        if up:
            self._down_links.discard(key)
        else:
            self._down_links.add(key)
        self._cache.clear()

    # ------------------------------------------------------------------
    def nodes(self) -> Iterable[int]:
        return self._adj.keys()

    def neighbors(self, node: int) -> Dict[int, float]:
        return {
            n: w for n, w in self._adj.get(node, {}).items()
            if (min(node, n), max(node, n)) not in self._down_links
        }

    def path_latency(self, src: int, dst: int) -> float:
        """One-way latency along the cheapest path, or ``inf`` if unreachable."""
        if src == dst:
            return 0.0
        cached = self._cache.get(src)
        if cached is None:
            cached = self._dijkstra(src)
            self._cache[src] = cached
        return cached.get(dst, float("inf"))

    def hop_count(self, src: int, dst: int) -> int:
        """Hops on the cheapest-latency path (0 if src == dst, -1 unreachable)."""
        if src == dst:
            return 0
        # Run dijkstra tracking hop counts alongside distances.
        dist: Dict[int, float] = {src: 0.0}
        hops: Dict[int, int] = {src: 0}
        heap: List[Tuple[float, int, int]] = [(0.0, 0, src)]
        while heap:
            d, h, node = heapq.heappop(heap)
            if node == dst:
                return h
            if d > dist.get(node, float("inf")):
                continue
            for neigh, weight in self.neighbors(node).items():
                nd = d + weight
                if nd < dist.get(neigh, float("inf")):
                    dist[neigh] = nd
                    hops[neigh] = h + 1
                    heapq.heappush(heap, (nd, h + 1, neigh))
        return -1

    def _dijkstra(self, src: int) -> Dict[int, float]:
        dist: Dict[int, float] = {src: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for neigh, weight in self.neighbors(node).items():
                nd = d + weight
                if nd < dist.get(neigh, float("inf")):
                    dist[neigh] = nd
                    heapq.heappush(heap, (nd, neigh))
        return dist

    # ------------------------------------------------------------------
    # factories

    @classmethod
    def full_mesh(cls, n: int, latency: float = 120e-6) -> "Topology":
        """Every site directly connected to every other (default LAN model)."""
        topo = cls()
        for i in range(n):
            topo.add_node(i)
        for i in range(n):
            for j in range(i + 1, n):
                topo.add_link(i, j, latency)
        return topo

    @classmethod
    def switched_lan(cls, n: int, latency: float = 60e-6) -> "Topology":
        """Sites hang off one switch (node -1); pairwise latency 2x link."""
        topo = cls()
        topo.add_node(-1)
        for i in range(n):
            topo.add_link(i, -1, latency)
        return topo

    @classmethod
    def star(cls, n: int, latency: float = 120e-6) -> "Topology":
        """Site 0 is the hub; all traffic between leaves crosses it."""
        if n < 1:
            raise ConfigError("star needs at least one site")
        topo = cls()
        topo.add_node(0)
        for i in range(1, n):
            topo.add_link(0, i, latency)
        return topo

    @classmethod
    def ring(cls, n: int, latency: float = 120e-6) -> "Topology":
        if n < 2:
            raise ConfigError("ring needs at least two sites")
        topo = cls()
        for i in range(n):
            topo.add_link(i, (i + 1) % n, latency)
        return topo

    @classmethod
    def line(cls, n: int, latency: float = 120e-6) -> "Topology":
        if n < 1:
            raise ConfigError("line needs at least one site")
        topo = cls()
        topo.add_node(0)
        for i in range(1, n):
            topo.add_link(i - 1, i, latency)
        return topo

    @classmethod
    def wan_coupled(cls, left: int, right: int,
                    lan_latency: float = 60e-6,
                    wan_latency: float = 20e-3) -> "Topology":
        """Two switched LANs joined by a slow WAN link (the paper's
        "clusters with separated sites like the internet", §2.1)."""
        topo = cls()
        topo.add_node(-1)
        topo.add_node(-2)
        for i in range(left):
            topo.add_link(i, -1, lan_latency)
        for i in range(left, left + right):
            topo.add_link(i, -2, lan_latency)
        topo.add_link(-1, -2, wan_latency)
        return topo
