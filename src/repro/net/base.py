"""Transport abstraction shared by the sim and live kernels.

A *physical address* is deliberately opaque to everything above the network
manager: the sim uses small integers, the live TCP transport uses
``(host, port)`` tuples encoded as strings.  Managers only ever see logical
site ids; the cluster manager maps logical to physical (paper Fig. 6).
"""

from __future__ import annotations

from typing import Callable, Protocol

#: called with the raw frame payload when a message arrives
DeliveryCallback = Callable[[bytes], None]


class Transport(Protocol):
    """Minimal contract the network manager needs."""

    def send(self, dst: str, data: bytes) -> bool:
        """Transmit ``data`` to physical address ``dst``.

        Returns False if the transport knows delivery failed immediately
        (unknown address, closed endpoint, backpressure).  A reliable
        transport may instead *queue* the bytes and return True, taking on
        the obligation to retry delivery — the live TCP transport does
        exactly this, and signals eventual surrender through its
        ``dead_letters`` counter and ``on_peer_down`` callback.  An
        unreliable transport may return True and still lose the message —
        exactly the UDP behaviour the paper found "not viable" (§4).

        Transports may additionally expose two optional attributes the
        kernel probes with ``getattr``: ``stats`` (a
        :class:`repro.common.stats.StatSet` of transport counters) and
        ``on_peer_down`` (a settable callback fired with a physical
        address when the transport's failure detector suspects that peer
        is dead).
        """
        ...

    def local_address(self) -> str:
        """This endpoint's physical address."""
        ...

    def close(self) -> None:
        """Tear the endpoint down; afterwards sends to it fail."""
        ...
