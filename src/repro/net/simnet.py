"""The simulated network: topology routing + transport cost model.

Delivery delay of a message of ``size`` bytes from ``src`` to ``dst``::

    delay = path_latency(src, dst)
          + size / bandwidth
          + transport_overhead            (tcp handshake / ttcp transaction)
          + jitter                        (optional, seeded)

The UDP model additionally drops messages with ``udp_loss_rate`` probability
and delays a ``udp_reorder_rate`` fraction by an extra latency so they arrive
out of order — reproducing the paper's finding that plain UDP "proved not
usable at the current expansion stage" (§4).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.config import NetworkConfig
from repro.common.errors import AddressError
from repro.common.stats import StatSet
from repro.net.topology import Topology
from repro.sim.engine import Simulator


class SimNetwork:
    """Shared medium connecting all simulated sites.

    Each site attaches a receive callback under its integer physical
    address.  ``endpoint(addr)`` returns a per-site
    :class:`SimTransportEndpoint` satisfying the Transport protocol.
    """

    def __init__(self, sim: Simulator, config: Optional[NetworkConfig] = None,
                 topology: Optional[Topology] = None) -> None:
        self.sim = sim
        self.config = config or NetworkConfig()
        self.topology = topology
        self._receivers: Dict[int, Callable[[bytes], None]] = {}
        self.stats = StatSet()
        #: optional fault-injection controller (repro.chaos); consulted per
        #: message when set.  The None-guarded hot path costs one attribute
        #: read, and chaos-free runs stay bit-identical.
        self.chaos = None

    # ------------------------------------------------------------------
    def attach(self, addr: int, receiver: Callable[[bytes], None]) -> None:
        if addr < 0:
            raise AddressError("site physical addresses must be non-negative")
        if addr in self._receivers:
            raise AddressError(f"physical address {addr} already attached")
        self._receivers[addr] = receiver
        if self.topology is not None and addr not in self.topology.nodes():
            # late joiners on an explicit topology: connect them to node 0's
            # component via a direct link with the default latency
            self.topology.add_link(addr, self._anchor_node(), self.config.latency)

    def _anchor_node(self) -> int:
        for node in self.topology.nodes():  # type: ignore[union-attr]
            return node
        raise AddressError("topology has no nodes to anchor a joiner to")

    def detach(self, addr: int) -> None:
        self._receivers.pop(addr, None)

    def is_attached(self, addr: int) -> bool:
        return addr in self._receivers

    # ------------------------------------------------------------------
    def _one_way_latency(self, src: int, dst: int) -> float:
        if self.topology is None:
            return self.config.latency
        return self.topology.path_latency(src, dst)

    def transit_delay(self, src: int, dst: int, size: int) -> float:
        """Deterministic part of the delivery delay (no jitter/reorder)."""
        cfg = self.config
        latency = self._one_way_latency(src, dst)
        serialization = size / cfg.bandwidth
        if cfg.transport == "tcp":
            overhead = cfg.tcp_handshake_cost * (1.0 - cfg.tcp_connection_reuse)
        elif cfg.transport == "ttcp":
            overhead = cfg.ttcp_transaction_cost
        else:  # udp: no connection machinery at all
            overhead = 0.0
        return latency + serialization + overhead

    def send(self, src: int, dst: int, data: bytes) -> bool:
        """Schedule delivery of ``data``; returns False on immediate failure.

        A detached destination (crashed/left site) silently swallows the
        message at delivery time — like a real network, the sender cannot
        know; failure surfaces via timeouts (heartbeats, help retries).
        """
        cfg = self.config
        if self.chaos is not None and self.chaos.corrupts_wire:
            # silent data corruption in flight: the mangled bytes replace
            # the originals before any cost/size accounting, exactly as a
            # flipped bit on the wire would
            mangled = self.chaos.corrupt_wire(src, dst, data)
            if mangled is not None:
                data = mangled
        size = len(data)
        self.stats.inc("messages")
        self.stats.add("bytes", size)

        delay = self.transit_delay(src, dst, size)
        if delay == float("inf"):
            self.stats.inc("unroutable")
            return False

        if cfg.transport == "udp":
            if self.sim.rng.random() < cfg.udp_loss_rate:
                self.stats.inc("udp_lost")
                return True  # sender cannot tell: fire-and-forget
            if self.sim.rng.random() < cfg.udp_reorder_rate:
                delay += 3.0 * cfg.latency + self.sim.rng.random() * cfg.latency
                self.stats.inc("udp_reordered")
        if cfg.jitter > 0.0:
            delay *= 1.0 + cfg.jitter * self.sim.rng.random()

        if self.chaos is not None:
            offsets = self.chaos.filter_send(src, dst)
            if offsets is not None:
                if not offsets:
                    self.stats.inc("chaos_dropped")
                    return True  # like UDP loss: the sender cannot tell
                if len(offsets) > 1:
                    self.stats.inc("chaos_duplicated")
                if offsets[0] != 0.0:
                    self.stats.inc("chaos_delayed")
                for extra in offsets:
                    self.sim.schedule(delay + extra, self._deliver, dst,
                                      data)
                return True

        self.sim.schedule(delay, self._deliver, dst, data)
        return True

    def _deliver(self, dst: int, data: bytes) -> None:
        receiver = self._receivers.get(dst)
        if receiver is None:
            self.stats.inc("dropped_dead_dst")
            return
        self.stats.inc("delivered")
        receiver(data)

    def endpoint(self, addr: int,
                 receiver: Callable[[bytes], None]) -> "SimTransportEndpoint":
        """Attach ``receiver`` and return a Transport-shaped endpoint."""
        self.attach(addr, receiver)
        return SimTransportEndpoint(self, addr)


class SimTransportEndpoint:
    """Per-site view of the shared :class:`SimNetwork` (Transport protocol)."""

    def __init__(self, network: SimNetwork, addr: int) -> None:
        self._network = network
        self._addr = addr

    def send(self, dst: str, data: bytes) -> bool:
        return self._network.send(self._addr, int(dst), data)

    def local_address(self) -> str:
        return str(self._addr)

    def close(self) -> None:
        self._network.detach(self._addr)
