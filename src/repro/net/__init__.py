"""Network substrate for the SDVM.

The paper's network manager "represents the lowest layer of the SDVM,
working with physical (ip) addresses only" (§4).  This package provides that
layer in three interchangeable forms:

* :class:`~repro.net.simnet.SimNetwork` — a simulated network over an
  arbitrary :class:`~repro.net.topology.Topology` with per-link latency,
  bandwidth, and a transport cost model covering the paper's TCP / T-TCP /
  UDP discussion (§4): TCP pays per-connection handshake overhead, T/TCP
  sends single-packet transactions, UDP loses and reorders messages.
* :class:`~repro.net.tcp.TcpTransport` — real TCP sockets with
  length-prefixed framing and a connection cache, for the live runtime.
* :class:`~repro.net.inproc.InProcTransport` — queue-based loopback between
  site threads in one process, for fast live-runtime tests.
"""

from repro.net.base import Transport, DeliveryCallback
from repro.net.topology import Topology
from repro.net.simnet import SimNetwork
from repro.net.inproc import InProcHub, InProcTransport
from repro.net.tcp import TcpTransport

__all__ = [
    "Transport",
    "DeliveryCallback",
    "Topology",
    "SimNetwork",
    "InProcHub",
    "InProcTransport",
    "TcpTransport",
]
