"""In-process transport: queue-backed loopback between site threads.

The fastest way to run a *live* (real-threads) SDVM cluster inside one
Python process — used heavily by the integration tests so they exercise the
real reactor/worker machinery without socket setup cost.  Delivery order
between a fixed (src, dst) pair is FIFO, like TCP.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict

from repro.common.errors import AddressError


class InProcHub:
    """Registry connecting in-process endpoints by string address."""

    def __init__(self) -> None:
        self._endpoints: Dict[str, "InProcTransport"] = {}
        self._lock = threading.Lock()

    def register(self, endpoint: "InProcTransport") -> None:
        with self._lock:
            if endpoint.local_address() in self._endpoints:
                raise AddressError(
                    f"address {endpoint.local_address()!r} already registered")
            self._endpoints[endpoint.local_address()] = endpoint

    def unregister(self, addr: str) -> None:
        with self._lock:
            self._endpoints.pop(addr, None)

    def lookup(self, addr: str) -> "InProcTransport | None":
        with self._lock:
            return self._endpoints.get(addr)


class InProcTransport:
    """A Transport endpoint delivering synchronously to the peer's callback.

    The receive callback runs on the *sender's* thread; the live kernel's
    network manager immediately posts the message onto the destination
    reactor queue, so this is safe and mirrors what a socket reader thread
    would do.
    """

    def __init__(self, hub: InProcHub, addr: str,
                 receiver: Callable[[bytes], None]) -> None:
        self._hub = hub
        self._addr = addr
        self._receiver = receiver
        self._closed = False
        hub.register(self)

    def send(self, dst: str, data: bytes) -> bool:
        if self._closed:
            return False
        peer = self._hub.lookup(dst)
        if peer is None or peer._closed:
            return False
        peer._receiver(data)
        return True

    def local_address(self) -> str:
        return self._addr

    def close(self) -> None:
        self._closed = True
        self._hub.unregister(self._addr)
