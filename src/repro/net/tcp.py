"""Real TCP transport for the live runtime, with a reliability layer.

Mirrors the paper's network manager (§4): "To receive, it features a
listener, which spawns a new thread every time an incoming connection is
established."  Outgoing connections are cached and reused (the paper's
observation that TCP "needs a lot of communication to establish and end a
connection" is exactly why), and messages are delimited with the
length-prefixed framing from :mod:`repro.serde.framing`.

Reliability model (see ``LiveTransportConfig``):

* Every destination gets a bounded **send queue** drained by a dedicated
  writer thread — the single writer per socket is what serializes frames,
  so concurrent ``send`` calls can never interleave bytes on the stream.
* The writer **reconnects with exponential backoff** when a write fails
  (a stale cached connection after a peer restart is retried with a fresh
  socket instead of silently dropping the frame).
* When the per-frame **retry budget** is spent, everything queued for that
  peer is dropped into the ``dead_letters`` counter and the peer is
  reported via :attr:`on_peer_down` — the live kernel forwards this to the
  cluster manager, which feeds the crash manager's recovery path.
* An optional **keepalive heartbeat** (zero-length frames, filtered out on
  the receive side) keeps the failure detector running even when the
  cluster is idle, so real socket death is noticed within
  ``heartbeat_interval`` plus a few backoffs.

Physical addresses are ``"host:port"`` strings.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from dataclasses import replace
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.common.config import LiveTransportConfig
from repro.common.errors import AddressError, SerializationError
from repro.common.stats import StatSet
from repro.serde.framing import FrameDecoder, frame

#: wire representation of a keepalive: an empty frame (no SDMessage is ever
#: zero bytes, so receivers can filter these without parsing)
_KEEPALIVE = frame(b"")


def _hard_close(sock: socket.socket) -> None:
    """Shutdown-then-close.  A plain ``close`` on a socket another thread
    is blocked in ``recv`` on does not send the FIN until that recv returns
    (the in-flight syscall keeps the kernel socket alive) — ``shutdown``
    pushes the FIN out and wakes the blocked reader immediately."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _parse(addr: str) -> Tuple[str, int]:
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise AddressError(f"bad physical address {addr!r}, want host:port")
    return host, int(port)


class _Peer:
    """Outgoing state for one destination: queue, socket, failure record."""

    __slots__ = ("addr", "queue", "cond", "sock", "writer", "failures",
                 "suspected")

    def __init__(self, addr: str) -> None:
        self.addr = addr
        self.queue: Deque[bytes] = deque()
        self.cond = threading.Condition()
        self.sock: Optional[socket.socket] = None
        self.writer: Optional[threading.Thread] = None
        #: consecutive failed delivery attempts (reset on success)
        self.failures = 0
        #: failure detector already fired for the current outage
        self.suspected = False


class TcpTransport:
    """Listener + per-peer queued writers, one reader thread per peer."""

    def __init__(self, receiver: Callable[[bytes], None],
                 host: str = "127.0.0.1", port: int = 0,
                 connect_timeout: Optional[float] = None,
                 config: Optional[LiveTransportConfig] = None) -> None:
        self._receiver = receiver
        cfg = config or LiveTransportConfig()
        if connect_timeout is not None:
            cfg = replace(cfg, connect_timeout=connect_timeout)
        self._config = cfg
        self.stats = StatSet(locked=True)
        #: set to a callable(physical_addr) to hear about suspected-dead
        #: peers (failure detector / retry budget exhaustion); invoked on a
        #: transport thread — receivers must hand off to their own loop
        self.on_peer_down: Optional[Callable[[str], None]] = None
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._addr = f"{host}:{self._listener.getsockname()[1]}"
        self._peers: Dict[str, _Peer] = {}
        self._peers_lock = threading.Lock()
        #: accepted inbound connections, so close() can reap reader threads
        self._in: Set[socket.socket] = set()
        self._in_lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"sdvm-accept-{self._addr}",
            daemon=True)
        self._accept_thread.start()
        self._heartbeat_thread: Optional[threading.Thread] = None
        if cfg.heartbeat_interval > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"sdvm-keepalive-{self._addr}", daemon=True)
            self._heartbeat_thread.start()

    # ------------------------------------------------------------------
    def local_address(self) -> str:
        return self._addr

    # ------------------------------------------------------------------
    # inbound path

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._in_lock:
                if self._closed.is_set():
                    try:
                        conn.close()
                    except OSError:
                        pass
                    continue
                self._in.add(conn)
            threading.Thread(target=self._read_loop, args=(conn,),
                             name=f"sdvm-read-{self._addr}",
                             daemon=True).start()

    def _read_loop(self, conn: socket.socket) -> None:
        decoder = FrameDecoder()
        try:
            while not self._closed.is_set():
                data = conn.recv(65536)
                if not data:
                    return
                for payload in decoder.feed(data):
                    if not payload:
                        self.stats.inc("keepalives_received")
                        continue
                    self.stats.inc("frames_received")
                    self._receiver(payload)
        except OSError:
            return
        except SerializationError:
            # corrupt length prefix: the rest of this stream is garbage;
            # drop the connection (the peer will reconnect) but keep serving
            self.stats.inc("corrupt_stream")
            return
        finally:
            with self._in_lock:
                self._in.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # outbound path: per-peer queue + writer thread

    def _peer(self, dst: str) -> _Peer:
        with self._peers_lock:
            peer = self._peers.get(dst)
            if peer is None:
                peer = self._peers[dst] = _Peer(dst)
                peer.writer = threading.Thread(
                    target=self._writer_loop, args=(peer,),
                    name=f"sdvm-write-{self._addr}->{dst}", daemon=True)
                peer.writer.start()
            return peer

    def send(self, dst: str, data: bytes) -> bool:
        """Queue ``data`` for delivery to ``dst``.

        Returns False only for failures known *immediately*: transport
        closed, or the peer's queue is full (backpressure).  A True return
        means "accepted for delivery with retries"; if the peer stays
        unreachable past the retry budget the frame is dead-lettered and
        :attr:`on_peer_down` fires.  Malformed addresses raise
        :class:`AddressError`.
        """
        if self._closed.is_set():
            return False
        _parse(dst)  # validate early; writer threads rely on a good address
        payload = frame(data)
        peer = self._peer(dst)
        with peer.cond:
            if len(peer.queue) >= self._config.send_queue_limit:
                self.stats.inc("queue_full_drops")
                return False
            peer.queue.append(payload)
            depth = len(peer.queue)
            peer.cond.notify()
        self.stats.inc("frames_enqueued")
        self.stats.set_gauge("send_queue_depth", depth)
        return True

    def _writer_loop(self, peer: _Peer) -> None:
        while True:
            with peer.cond:
                while not peer.queue and not self._closed.is_set():
                    peer.cond.wait()
                if self._closed.is_set():
                    return
                payload = peer.queue[0]
            if self._deliver(peer, payload):
                with peer.cond:
                    if peer.queue and peer.queue[0] is payload:
                        peer.queue.popleft()
                    self.stats.set_gauge("send_queue_depth",
                                         len(peer.queue))
            else:
                with peer.cond:
                    dropped = len(peer.queue)
                    peer.queue.clear()
                    self.stats.set_gauge("send_queue_depth", 0)
                if dropped:
                    self.stats.add("dead_letters", dropped)

    def _deliver(self, peer: _Peer, payload: bytes) -> bool:
        """Try to put ``payload`` on the wire; reconnect/backoff/retry.

        Returns False once the retry budget is exhausted (the caller
        dead-letters the queue).  The failure detector fires as soon as
        ``heartbeat_misses`` consecutive attempts have failed — before the
        budget runs out, so recovery starts while retries continue.
        """
        cfg = self._config
        backoff = cfg.backoff_initial
        for attempt in range(cfg.retry_budget):
            if self._closed.is_set():
                return False
            sock = peer.sock
            if sock is None:
                sock = self._connect(peer)
            if sock is not None:
                try:
                    sock.sendall(payload)
                    peer.failures = 0
                    if peer.suspected:
                        peer.suspected = False
                        self.stats.inc("peers_recovered")
                    self.stats.inc("frames_sent")
                    self.stats.add("bytes_sent", len(payload))
                    return True
                except OSError:
                    self._drop_socket(peer)
            peer.failures += 1
            self.stats.inc("send_retries")
            self._note_failure(peer)
            if attempt + 1 < cfg.retry_budget:
                self._closed.wait(backoff)
                backoff = min(backoff * 2.0, cfg.backoff_max)
        self._note_failure(peer, force=True)
        return False

    def _connect(self, peer: _Peer) -> Optional[socket.socket]:
        host, port = _parse(peer.addr)
        try:
            sock = socket.create_connection(
                (host, port), timeout=self._config.connect_timeout)
            sock.settimeout(None)
        except OSError:
            return None
        peer.sock = sock
        self.stats.inc("connects")
        # outgoing connections never carry inbound protocol data (peers
        # connect back separately), so a blocking recv doubles as an EOF
        # monitor: the peer's FIN invalidates the cached socket at once,
        # instead of the next sendall silently burying a frame in the
        # kernel buffer of a dead connection
        threading.Thread(target=self._monitor_loop, args=(peer, sock),
                         name=f"sdvm-monitor-{self._addr}->{peer.addr}",
                         daemon=True).start()
        return sock

    def _monitor_loop(self, peer: _Peer, sock: socket.socket) -> None:
        try:
            while sock.recv(4096):
                pass
        except OSError:
            pass
        with peer.cond:
            if peer.sock is sock:
                peer.sock = None
                self.stats.inc("stale_connections")
        try:
            sock.close()
        except OSError:
            pass

    def _drop_socket(self, peer: _Peer) -> None:
        sock, peer.sock = peer.sock, None
        if sock is not None:
            _hard_close(sock)

    def _note_failure(self, peer: _Peer, force: bool = False) -> None:
        if peer.suspected:
            return
        if force or peer.failures >= self._config.heartbeat_misses:
            peer.suspected = True
            self.stats.inc("peers_suspected")
            callback = self.on_peer_down
            if callback is not None:
                try:
                    callback(peer.addr)
                except Exception:  # noqa: BLE001 — keep the writer alive
                    pass

    # ------------------------------------------------------------------
    # keepalive failure detector

    def _heartbeat_loop(self) -> None:
        while not self._closed.wait(self._config.heartbeat_interval):
            with self._peers_lock:
                peers = list(self._peers.values())
            for peer in peers:
                with peer.cond:
                    # a suspected peer is not pinged again — the next
                    # application send re-arms the detector; a backlogged
                    # queue already keeps the writer probing
                    if peer.suspected or peer.queue:
                        continue
                    peer.queue.append(_KEEPALIVE)
                    peer.cond.notify()
                self.stats.inc("keepalives_sent")

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        # shutdown, not just close: a close while the accept thread is
        # blocked in accept(2) leaves the kernel socket listening (the
        # in-flight syscall pins it), so the port would stay occupied
        _hard_close(self._listener)
        with self._peers_lock:
            peers = list(self._peers.values())
        for peer in peers:
            with peer.cond:
                peer.cond.notify_all()
            self._drop_socket(peer)
        inbound: List[socket.socket]
        with self._in_lock:
            inbound = list(self._in)
            self._in.clear()
        for conn in inbound:
            _hard_close(conn)
        current = threading.current_thread()
        for peer in peers:
            if peer.writer is not None and peer.writer is not current:
                peer.writer.join(timeout=0.5)
        if (self._heartbeat_thread is not None
                and self._heartbeat_thread is not current):
            self._heartbeat_thread.join(timeout=0.5)
