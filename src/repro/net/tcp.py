"""Real TCP transport for the live runtime.

Mirrors the paper's network manager (§4): "To receive, it features a
listener, which spawns a new thread every time an incoming connection is
established."  Outgoing connections are cached and reused (the paper's
observation that TCP "needs a lot of communication to establish and end a
connection" is exactly why), and messages are delimited with the
length-prefixed framing from :mod:`repro.serde.framing`.

Physical addresses are ``"host:port"`` strings.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Dict, Optional, Tuple

from repro.common.errors import AddressError
from repro.serde.framing import FrameDecoder, frame


def _parse(addr: str) -> Tuple[str, int]:
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise AddressError(f"bad physical address {addr!r}, want host:port")
    return host, int(port)


class TcpTransport:
    """Listener + cached outgoing connections, one reader thread per peer."""

    def __init__(self, receiver: Callable[[bytes], None],
                 host: str = "127.0.0.1", port: int = 0,
                 connect_timeout: float = 5.0) -> None:
        self._receiver = receiver
        self._connect_timeout = connect_timeout
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._addr = f"{host}:{self._listener.getsockname()[1]}"
        self._out: Dict[str, socket.socket] = {}
        self._out_lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"sdvm-accept-{self._addr}",
            daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------
    def local_address(self) -> str:
        return self._addr

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._read_loop, args=(conn,),
                             name=f"sdvm-read-{self._addr}",
                             daemon=True).start()

    def _read_loop(self, conn: socket.socket) -> None:
        decoder = FrameDecoder()
        try:
            while not self._closed.is_set():
                data = conn.recv(65536)
                if not data:
                    return
                for payload in decoder.feed(data):
                    self._receiver(payload)
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _connection(self, dst: str) -> Optional[socket.socket]:
        with self._out_lock:
            sock = self._out.get(dst)
            if sock is not None:
                return sock
        host, port = _parse(dst)
        try:
            sock = socket.create_connection((host, port),
                                            timeout=self._connect_timeout)
            sock.settimeout(None)
        except OSError:
            return None
        with self._out_lock:
            existing = self._out.get(dst)
            if existing is not None:
                sock.close()
                return existing
            self._out[dst] = sock
        return sock

    def send(self, dst: str, data: bytes) -> bool:
        if self._closed.is_set():
            return False
        sock = self._connection(dst)
        if sock is None:
            return False
        try:
            sock.sendall(frame(data))
            return True
        except OSError:
            # peer went away; drop the cached connection, report failure
            with self._out_lock:
                if self._out.get(dst) is sock:
                    del self._out[dst]
            try:
                sock.close()
            except OSError:
                pass
            return False

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._out_lock:
            for sock in self._out.values():
                try:
                    sock.close()
                except OSError:
                    pass
            self._out.clear()
