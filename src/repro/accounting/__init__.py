"""Accounting — the paper's proposed commercial extension (§2.2, §6).

"The SDVM could act as a service provider, letting customers run
calculation-intensive applications on external computer clusters. ...  The
accounting functionality needed for this can be integrated into the SDVM."
and §6: "For a commercial use of the SDVM as an application layer like a
middleware, methods to distinguish users and accounting functions should
be implemented."

The per-site raw data already exists (the program manager meters
executions and work per program, the message manager counts traffic);
:class:`~repro.accounting.accountant.ClusterAccountant` aggregates it
cluster-wide and prices it with a :class:`~repro.accounting.accountant.Tariff`.
"""

from repro.accounting.accountant import (
    ClusterAccountant,
    Invoice,
    Tariff,
    UsageRecord,
)

__all__ = ["ClusterAccountant", "Invoice", "Tariff", "UsageRecord"]
