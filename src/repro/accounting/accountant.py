"""Cluster-wide usage aggregation and pricing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class Tariff:
    """Prices for renting a cluster (arbitrary currency units).

    ``work_unit_price`` prices CPU consumption; ``execution_price`` the
    scheduling overhead per microthread; ``byte_price`` network traffic.
    """

    work_unit_price: float = 1e-6
    execution_price: float = 1e-4
    byte_price: float = 1e-7

    def __post_init__(self) -> None:
        if min(self.work_unit_price, self.execution_price,
               self.byte_price) < 0:
            raise ConfigError("tariff prices must be non-negative")


@dataclass(slots=True)
class UsageRecord:
    """Usage of one program on one site."""

    program: int
    program_name: str
    site: int
    executions: int = 0
    work_units: float = 0.0

    def cost(self, tariff: Tariff) -> float:
        return (self.work_units * tariff.work_unit_price
                + self.executions * tariff.execution_price)


@dataclass(slots=True)
class Invoice:
    """Priced usage for one program across the cluster."""

    program: int
    program_name: str
    records: List[UsageRecord] = field(default_factory=list)
    #: cluster traffic is shared infrastructure: apportioned by work share
    traffic_cost: float = 0.0

    @property
    def executions(self) -> int:
        return sum(r.executions for r in self.records)

    @property
    def work_units(self) -> float:
        return sum(r.work_units for r in self.records)

    def total(self, tariff: Tariff) -> float:
        return (sum(r.cost(tariff) for r in self.records)
                + self.traffic_cost)


class ClusterAccountant:
    """Aggregates per-program usage from every site of a cluster.

    Works on any collection of :class:`~repro.site.daemon.SDVMSite`
    instances (SimCluster or LiveCluster sites).
    """

    def __init__(self, tariff: Tariff | None = None) -> None:
        self.tariff = tariff or Tariff()

    def collect(self, sites) -> Dict[int, Invoice]:  # noqa: ANN001
        """Build one invoice per program from current site state."""
        invoices: Dict[int, Invoice] = {}
        total_work = 0.0
        total_bytes = 0.0
        for site in sites:
            total_bytes += site.message_manager.stats.get(
                "bytes_sent").total
            for info in site.program_manager.programs.values():
                invoice = invoices.get(info.pid)
                if invoice is None:
                    invoice = invoices[info.pid] = Invoice(
                        program=info.pid, program_name=info.name)
                if info.executions or info.work_charged:
                    invoice.records.append(UsageRecord(
                        program=info.pid,
                        program_name=info.name,
                        site=site.site_id,
                        executions=info.executions,
                        work_units=info.work_charged,
                    ))
                    total_work += info.work_charged
        # apportion the cluster's traffic cost by work share
        if total_work > 0:
            traffic_total = total_bytes * self.tariff.byte_price
            for invoice in invoices.values():
                invoice.traffic_cost = (traffic_total
                                        * invoice.work_units / total_work)
        return invoices

    def report(self, sites) -> str:  # noqa: ANN001
        """Human-readable cluster invoice."""
        invoices = self.collect(sites)
        lines = ["program                 execs        work     cost"]
        for invoice in sorted(invoices.values(),
                              key=lambda inv: -inv.work_units):
            lines.append(
                f"{invoice.program_name:20s} {invoice.executions:8d} "
                f"{invoice.work_units:11.0f} "
                f"{invoice.total(self.tariff):8.4f}")
        return "\n".join(lines)
