"""SDMessage — the manager-to-manager message format (paper §4, Fig. 6).

"All communication is done between managers only, so a message contains the
source's and the target's site ids and manager ids apart from other
administrational information and the payload data itself."
"""

from repro.messages.message import SDMessage, MsgType, make_reply

__all__ = ["SDMessage", "MsgType", "make_reply"]
