"""SDMessage definition, message-type registry, and wire encoding."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.common.errors import SerializationError
from repro.common.ids import ManagerId
from repro.serde import dumps, loads


class MsgType(enum.IntEnum):
    """Every message kind exchanged between SDVM managers.

    Grouped by owning protocol; the paper describes each protocol in §3–§4.
    """

    # -- scheduling / work stealing (§3.3, §4 scheduling manager)
    HELP_REQUEST = 10          # idle site asks another site for work
    HELP_REPLY = 11            # an executable/ready frame, if one was spared
    CANT_HELP = 12             # "my queues are empty, too"

    # -- code distribution (§3.4, §4 code manager)
    CODE_REQUEST = 20          # need microthread (thread id, platform id)
    CODE_REPLY_BINARY = 21     # platform-matching binary
    CODE_REPLY_SOURCE = 22     # source only; requester compiles on the fly
    CODE_PUSH_BINARY = 23      # freshly compiled binary -> distribution site
    CODE_NOT_FOUND = 24

    # -- attraction memory / COMA (§4 attraction memory)
    APPLY_RESULT = 30          # write a parameter into a waiting microframe
    MEM_READ = 31              # request a memory object's value
    MEM_READ_REPLY = 32
    MEM_WRITE = 33             # update a memory object
    MEM_MIGRATE = 34           # move object ownership to requester
    MEM_OBJECT = 35            # object transfer (migration payload)
    MEM_LOCATION = 36          # directory redirect: "object now lives at X"
    DIR_UPDATE = 37            # owner publishes ownership to the dir shard
    FRAME_TRANSFER = 38        # a microframe migrates (help reply / relocation)
    MEM_NOT_FOUND = 39
    DIR_ACK = 40               # dir shard acknowledges a DIR_UPDATE

    # -- cluster membership (§3.4, §4 cluster manager)
    SIGN_ON = 50               # join request to a known site
    SIGN_ON_ACK = 51           # logical id + cluster info in return
    SIGN_OFF = 52              # orderly leave announcement
    CLUSTER_INFO = 53          # gossip: site records piggybacked
    HEARTBEAT = 54
    ID_BLOCK_REQUEST = 55      # contingent strategy: ask for an id block
    ID_BLOCK_REPLY = 56
    LOAD_REPORT = 57           # statistical load data for help targeting

    # -- program management (§4 program manager)
    PROGRAM_REGISTER = 60      # announce a program + its code home site
    PROGRAM_TERMINATED = 61    # microthreads may be dropped from caches
    PROGRAM_RESULT = 62        # final result routed to the frontend site

    # -- input/output (§4 I/O manager)
    IO_OUTPUT = 70             # console output -> frontend
    IO_FILE_OPEN = 71
    IO_FILE_OPEN_REPLY = 72
    IO_FILE_READ = 73
    IO_FILE_READ_REPLY = 74
    IO_FILE_WRITE = 75
    IO_FILE_WRITE_ACK = 76
    IO_FILE_CLOSE = 77

    # -- crash management (§2.2, ref [4])
    CHECKPOINT_BEGIN = 80      # coordinator starts a checkpoint wave
    CHECKPOINT_STATE = 81      # a site's serialized snapshot -> keeper
    CHECKPOINT_ACK = 82
    CHECKPOINT_COMMIT = 83     # wave complete; snapshot becomes "last good"
    CRASH_NOTICE = 84          # heartbeat timeout observed for a site
    RECOVER_BEGIN = 85         # coordinator starts rollback
    RECOVER_STATE = 86         # snapshot shard restored onto a survivor
    RECOVER_DONE = 87
    CHECKPOINT_REPLICA = 88    # committed snapshot copied to backup sites
    RECOVER_ACK = 89           # receipt for retried recovery control

    # -- security (§4 security manager)
    KEY_EXCHANGE_INIT = 90
    KEY_EXCHANGE_REPLY = 91

    # -- site maintenance (§4 site manager)
    STATUS_QUERY = 95
    STATUS_REPLY = 96
    SHUTDOWN = 97


#: fixed-width causal stamp: cause_id+1 as unsigned 64-bit (packed node
#: ids use the two top tag bits, so +1 keeps -1 encodable), origin_site
#: as signed 64-bit
_STAMP = struct.Struct(">Qq")

# value -> member maps for decode: a plain dict lookup per field instead of
# the enum class's __call__ machinery (three conversions per received
# message adds up on the sim's hot path)
_MSG_BY_VALUE = MsgType._value2member_map_
_MGR_BY_VALUE = ManagerId._value2member_map_


@dataclass(slots=True)
class SDMessage:
    """One manager-to-manager message.

    ``payload`` must contain only codec-serializable values (see
    :mod:`repro.serde.codec`); this is enforced at encode time.
    ``seq`` is assigned by the sending message manager; ``reply_to``
    correlates request/response pairs.
    """

    type: MsgType
    src_site: int
    src_manager: ManagerId
    dst_site: int
    dst_manager: ManagerId
    payload: Dict[str, Any] = field(default_factory=dict)
    program: int = -1
    seq: int = -1
    reply_to: int = -1
    #: sender's load figure, piggybacked on every message so cluster
    #: managers keep fresh "statistical data about e. g. the other sites'
    #: load" (§4) without dedicated traffic.  -1 = not supplied.
    src_load: float = -1.0
    #: sender's *stealable* queue depth (executable+ready frames), also
    #: piggybacked on every message — the scheduler's victim selection and
    #: proactive push run off this figure.  -1 = not supplied.
    src_queue: float = -1.0
    #: causal context, stamped by the sending message manager when tracing
    #: is enabled: ``origin_site`` is the site where this causal chain was
    #: rooted, ``cause_id`` the packed node id of the event that caused the
    #: send (see :mod:`repro.trace.causal`).  -1 = unstamped / chain root.
    origin_site: int = -1
    cause_id: int = -1
    #: cached wire encoding (encode-once: messages are immutable once the
    #: message manager hands them to the transport, so ``wire_size()`` and
    #: ``send`` share one serialization).  Never set by ``decode`` — a
    #: received message may legitimately be re-addressed (heir forwarding)
    #: before it is encoded again.
    _wire: Optional[bytes] = field(default=None, init=False, repr=False,
                                   compare=False)

    def encode(self) -> bytes:
        """Serialize to wire bytes (header tuple + payload dict).

        Encode-once: the first call caches the envelope and every later
        call returns the same ``bytes`` object.  Mutating the message after
        the first ``encode()`` does not change its wire form — senders must
        fully assemble a message before handing it to the message manager.

        The causal stamp travels as a fixed-width 16-byte blob (not
        varints): its value changes between traced and untraced runs, and
        a value-dependent size would feed back into the simulated byte
        costs — enabling tracing must not perturb timing.
        """
        wire = self._wire
        if wire is None:
            wire = self._wire = dumps((
                int(self.type),
                self.src_site,
                int(self.src_manager),
                self.dst_site,
                int(self.dst_manager),
                self.program,
                self.seq,
                self.reply_to,
                self.src_load,
                self.src_queue,
                _STAMP.pack(self.cause_id + 1, self.origin_site),
                self.payload,
            ))
        return wire

    @classmethod
    def decode(cls, data: bytes) -> "SDMessage":
        obj = loads(data)
        if not isinstance(obj, tuple) or len(obj) != 12:
            raise SerializationError("malformed SDMessage envelope")
        (mtype, src_site, src_mgr, dst_site, dst_mgr,
         program, seq, reply_to, src_load, src_queue, stamp, payload) = obj
        if not isinstance(stamp, bytes) or len(stamp) != _STAMP.size:
            raise SerializationError("malformed SDMessage causal stamp")
        cause_plus_one, origin_site = _STAMP.unpack(stamp)
        cause_id = cause_plus_one - 1
        try:
            msg_type = _MSG_BY_VALUE[mtype]
            src_manager = _MGR_BY_VALUE[src_mgr]
            dst_manager = _MGR_BY_VALUE[dst_mgr]
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"unknown enum value on wire: {exc}") from exc
        if not isinstance(payload, dict):
            raise SerializationError("SDMessage payload must be a dict")
        # direct slot assignment instead of the dataclass __init__ — decode
        # runs once per received message and the kwargs machinery is
        # measurable there.  Every slot must be set, including the wire
        # cache (deliberately left cold, see the field comment).
        msg = cls.__new__(cls)
        msg.type = msg_type
        msg.src_site = src_site
        msg.src_manager = src_manager
        msg.dst_site = dst_site
        msg.dst_manager = dst_manager
        msg.payload = payload
        msg.program = program
        msg.seq = seq
        msg.reply_to = reply_to
        msg.src_load = src_load
        msg.src_queue = src_queue
        msg.origin_site = origin_site
        msg.cause_id = cause_id
        msg._wire = None
        return msg

    def invalidate_wire(self) -> None:
        """Drop the cached encoding after a legitimate mutation.

        The message manager calls this before stamping seq/src/load fields
        on send, so a sender that probed :meth:`wire_size` beforehand cannot
        pin a stale envelope.
        """
        self._wire = None

    def wire_size(self) -> int:
        """Encoded size in bytes — drives the simulated bandwidth model.

        Shares the encode-once cache with :meth:`encode`, so asking for a
        message's size before (or after) sending it costs one serialization
        total, and ``wire_size() == len(encode())`` always holds.
        """
        return len(self.encode())

    def __repr__(self) -> str:
        return (f"SDMessage({self.type.name} {self.src_site}/"
                f"{self.src_manager.name} -> {self.dst_site}/"
                f"{self.dst_manager.name} seq={self.seq})")


def make_reply(request: SDMessage, msg_type: MsgType,
               payload: Optional[Dict[str, Any]] = None) -> SDMessage:
    """Build a response addressed back at the requesting manager."""
    return SDMessage(
        type=msg_type,
        src_site=request.dst_site,
        src_manager=request.dst_manager,
        dst_site=request.src_site,
        dst_manager=request.src_manager,
        payload=payload or {},
        program=request.program,
        reply_to=request.seq,
    )
