"""CDAG construction and analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import ProgramError
from repro.core.program import SDVMProgram


@dataclass(slots=True)
class CDAGNode:
    """One microthread kind in the graph."""

    name: str
    thread_id: int
    work: float
    #: microthreads this one allocates frames for (controlflow/allocation edges)
    creates: Tuple[str, ...]
    #: longest-path-to-sink in work units (computed)
    downstream_work: float = 0.0
    #: True if this node lies on a maximum-work path (computed)
    on_critical_path: bool = False
    fan_out: int = 0
    fan_in: int = 0


class CDAG:
    """The controlflow-dataflow-allocation graph of one program.

    Edges follow the ``creates`` declarations; cycles (loops of unknown
    length, §3.2) are handled by collapsing strongly connected components
    for the longest-path computation, so a self-recursive collector still
    gets a finite priority.
    """

    def __init__(self, nodes: Dict[str, CDAGNode], entry: str) -> None:
        self.nodes = nodes
        self.entry = entry
        self._analyze()

    @classmethod
    def from_program(cls, program: SDVMProgram) -> "CDAG":
        nodes = {
            name: CDAGNode(
                name=name,
                thread_id=src.thread_id,
                work=max(src.work_hint, 1.0),
                creates=tuple(src.creates),
            )
            for name, src in program.threads.items()
        }
        for node in nodes.values():
            for target in node.creates:
                if target not in nodes:
                    raise ProgramError(
                        f"CDAG edge {node.name} -> {target!r} has no node")
        return cls(nodes, program.entry)

    # ------------------------------------------------------------------
    def _successors(self, name: str) -> Tuple[str, ...]:
        return self.nodes[name].creates

    def _tarjan_sccs(self) -> List[List[str]]:
        """Strongly connected components (iterative Tarjan)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        for root in self.nodes:
            if root in index:
                continue
            work_stack: List[Tuple[str, int]] = [(root, 0)]
            while work_stack:
                node, child_index = work_stack[-1]
                if child_index == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                successors = self._successors(node)
                advanced = False
                while child_index < len(successors):
                    child = successors[child_index]
                    child_index += 1
                    if child not in index:
                        work_stack[-1] = (node, child_index)
                        work_stack.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work_stack.pop()
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(component)
                if work_stack:
                    parent = work_stack[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sccs

    def _analyze(self) -> None:
        # fan in/out
        for node in self.nodes.values():
            node.fan_out = len(node.creates)
        for node in self.nodes.values():
            for target in node.creates:
                self.nodes[target].fan_in += 1

        # condense cycles, then longest path to a sink on the DAG of SCCs
        sccs = self._tarjan_sccs()
        component_of: Dict[str, int] = {}
        for i, component in enumerate(sccs):
            for name in component:
                component_of[name] = i
        comp_work = [sum(self.nodes[n].work for n in component)
                     for component in sccs]
        comp_succ: List[Set[int]] = [set() for _ in sccs]
        for name, node in self.nodes.items():
            for target in node.creates:
                a, b = component_of[name], component_of[target]
                if a != b:
                    comp_succ[a].add(b)

        # Tarjan emits SCCs in reverse topological order: successors first
        comp_down = [0.0] * len(sccs)
        for i in range(len(sccs)):
            best = 0.0
            for succ in comp_succ[i]:
                best = max(best, comp_down[succ])
            comp_down[i] = comp_work[i] + best

        for name, node in self.nodes.items():
            node.downstream_work = comp_down[component_of[name]]

        # critical path: greedy walk from the entry along max downstream work
        critical: Set[int] = set()
        current = component_of.get(self.entry)
        while current is not None:
            critical.add(current)
            nxt = None
            best = -1.0
            for succ in comp_succ[current]:
                if comp_down[succ] > best:
                    best = comp_down[succ]
                    nxt = succ
            current = nxt
        for name, node in self.nodes.items():
            node.on_critical_path = component_of[name] in critical

    # ------------------------------------------------------------------
    def node(self, name: str) -> CDAGNode:
        node = self.nodes.get(name)
        if node is None:
            raise ProgramError(f"no CDAG node {name!r}")
        return node

    def critical_path(self) -> List[str]:
        """Node names on the critical path, ordered by downstream work."""
        return sorted((n.name for n in self.nodes.values()
                       if n.on_critical_path),
                      key=lambda name: -self.nodes[name].downstream_work)

    def to_networkx(self):  # noqa: ANN201 — optional convenience
        """Export to a networkx DiGraph (for notebooks / validation)."""
        import networkx as nx
        graph = nx.DiGraph()
        for name, node in self.nodes.items():
            graph.add_node(name, work=node.work,
                           downstream=node.downstream_work,
                           critical=node.on_critical_path)
        for name, node in self.nodes.items():
            for target in node.creates:
                graph.add_edge(name, target)
        return graph
