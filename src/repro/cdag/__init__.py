"""The CDAG — Controlflow Dataflow Allocation Graph (paper §3.3, ref [7]).

"The application's structures like microthread-blocks having many data
dependencies can be extracted from the CDAG.  Moreover, microthreads in the
critical path of the application can be identified, which are then executed
with higher priority. ... it is possible to attach scheduling hints to
microframes using information from the CDAG."

We build the CDAG from the static declarations programs carry anyway
(``creates=`` edges and ``work=`` estimates on each microthread) and derive:

* per-microthread *priority* (longest path to a sink, in work units);
* the *critical path* (microthreads on a maximum-work path);
* *dependency density* (fan-in/fan-out counts, the "many data dependencies"
  signal).

The :class:`~repro.cdag.hints.HintPolicy` turns that analysis into the
(priority, critical) pair stamped onto microframes at creation.
"""

from repro.cdag.graph import CDAG, CDAGNode
from repro.cdag.hints import HintPolicy, derive_hints

__all__ = ["CDAG", "CDAGNode", "HintPolicy", "derive_hints"]
