"""Scheduling hints derived from the CDAG (paper §3.3).

"These may include the priority of a microframe or hints about the local
execution order.  Scheduling hints may even be given by the programmer."

:func:`derive_hints` computes a per-microthread (priority, critical) pair;
applications can consult a :class:`HintPolicy` inside their microthreads
indirectly by baking the hints into ``create_frame`` calls, or — more
conveniently — the benchmarks use it to compare hinted vs. unhinted runs
(experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cdag.graph import CDAG
from repro.core.program import SDVMProgram


@dataclass(frozen=True, slots=True)
class HintPolicy:
    """Hints for every microthread of one program: name -> (priority,
    critical)."""

    hints: Dict[str, Tuple[float, bool]]

    def priority_of(self, name: str) -> float:
        return self.hints.get(name, (0.0, False))[0]

    def is_critical(self, name: str) -> bool:
        return self.hints.get(name, (0.0, False))[1]


def derive_hints(program: SDVMProgram,
                 critical_threshold: float = 0.95) -> HintPolicy:
    """Analyze ``program`` and derive scheduling hints.

    Priority is the node's downstream work normalized to [0, 100]; nodes on
    the critical path whose downstream work is within ``critical_threshold``
    of the maximum are flagged critical (they get the express overcommit
    slot in the processing manager).
    """
    cdag = CDAG.from_program(program)
    max_down = max((n.downstream_work for n in cdag.nodes.values()),
                   default=1.0) or 1.0
    hints: Dict[str, Tuple[float, bool]] = {}
    for name, node in cdag.nodes.items():
        priority = 100.0 * node.downstream_work / max_down
        critical = (node.on_critical_path
                    and node.downstream_work
                    >= critical_threshold * max_down
                    # a pure leaf is never "the" critical path driver
                    and node.fan_out > 0)
        hints[name] = (priority, critical)
    return HintPolicy(hints=hints)
