"""Security layer (paper §4, security manager).

"Its main purpose is to establish a security layer between the (presumably)
secure local machine and the (presumably) unsafe network.  Therefore it
encrypts all outgoing data before it is delivered by the network manager,
and decrypts all incoming traffic as well."

Built from scratch on stdlib ``hashlib``/``hmac`` only:

* :mod:`repro.security.cipher` — SHA-256 counter-mode keystream cipher with
  HMAC-SHA256 integrity (encrypt-then-MAC).
* :mod:`repro.security.dh` — classic Diffie–Hellman over an RFC 3526 group
  for session-key rotation.
* :mod:`repro.security.layer` — the per-site :class:`SecurityLayer`: pairwise
  keys bootstrapped from the cluster password ("a first contact must be made
  in a secure way, e. g. by supplying a start password by hand"), optional DH
  upgrade, and a pass-through mode when the cluster "can be judged secure ...
  in favor of a performance gain".
"""

from repro.security.cipher import seal, open_sealed, derive_key
from repro.security.dh import DHKeyPair, DH_GROUP_PRIME, DH_GENERATOR
from repro.security.layer import SecurityLayer

__all__ = [
    "seal",
    "open_sealed",
    "derive_key",
    "DHKeyPair",
    "DH_GROUP_PRIME",
    "DH_GENERATOR",
    "SecurityLayer",
]
