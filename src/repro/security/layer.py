"""The per-site security layer sitting between message and network manager.

Key management follows the paper's constraint that "a first contact must be
made in a secure way, e. g. by supplying a start password by hand": every
pair of sites deterministically derives an initial pairwise key from the
cluster password and the two *physical* addresses, so any site can encrypt
to any other immediately, with no handshake on the critical path.  A DH
exchange (KEY_EXCHANGE_INIT/REPLY messages, handled by the site wiring) can
later rotate a pair onto a fresh session key.

When disabled ("if an insular cluster ... is used, the security manager can
be disabled in favor of a performance gain", §4), envelopes pass through
unmodified except for a one-byte marker, and mixed clusters fail closed: a
sealed envelope arriving at a disabled layer raises
:class:`~repro.common.errors.SecurityError`.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.common.errors import SecurityError
from repro.security.cipher import (
    NONCE_SIZE,
    TAG_SIZE,
    derive_key,
    open_sealed,
    seal,
)

_PLAIN = 0
_SEALED = 1

#: fixed placeholder tag used by the sim-only ``simulate`` mode: it keeps
#: the sealed envelope layout (nonce || tag || body) and size while making
#: simulated envelopes self-identifying — a *real* sealed envelope reaching
#: a simulating layer (or vice versa) fails closed instead of decoding
#: garbage
_SIM_TAG = b"<sdvm:simulated-crypto-envelope>"
assert len(_SIM_TAG) == TAG_SIZE


class SecurityLayer:
    """Encrypt/decrypt byte envelopes for one site.

    The envelope carries the sender's physical address in clear (the
    receiver needs it to select the pairwise key before it can decrypt
    anything): ``flag(1) || addr_len(2) || addr || body``.
    """

    def __init__(self, local_addr: str, enabled: bool,
                 cluster_password: str, simulate: bool = False) -> None:
        self.local_addr = local_addr
        self.enabled = enabled
        #: sim-kernel-only: keep envelope sizes/accounting but skip the
        #: real cipher+MAC work (see SecurityConfig.simulate_crypto)
        self.simulate = simulate
        self._password = cluster_password
        self._session_keys: Dict[str, bytes] = {}
        #: previous key per peer: messages sealed before a rotation may
        #: still be in flight when the new key installs (rollover grace)
        self._previous_keys: Dict[str, bytes] = {}
        self._nonce_counters: Dict[str, int] = {}
        #: envelope header is identical for every message this site sends;
        #: build it once (protect() sits on the per-message hot path)
        addr = local_addr.encode("utf-8")
        self._header = struct.pack(">BH", _SEALED if enabled else _PLAIN,
                                   len(addr)) + addr
        #: nonce pad depends only on the local address; cache it instead of
        #: re-deriving a key per message
        self._nonce_pad = derive_key(b"nonce", addr)[:NONCE_SIZE - 8]
        #: bytes encrypted/decrypted — feeds the sim cost model
        self.bytes_processed = 0
        self.messages_sealed = 0
        self.messages_opened = 0

    # ------------------------------------------------------------------
    def _pair_key(self, peer_addr: str) -> bytes:
        key = self._session_keys.get(peer_addr)
        if key is not None:
            return key
        low, high = sorted((self.local_addr, peer_addr))
        return derive_key(self._password, low, high)

    def install_session_key(self, peer_addr: str, key: bytes) -> None:
        """Adopt a DH-negotiated session key for ``peer_addr``."""
        if len(key) != 32:
            raise SecurityError("session key must be 32 bytes")
        self._previous_keys[peer_addr] = self._pair_key(peer_addr)
        self._session_keys[peer_addr] = key

    def has_session_key(self, peer_addr: str) -> bool:
        return peer_addr in self._session_keys

    def _next_nonce(self, peer_addr: str) -> bytes:
        counter = self._nonce_counters.get(peer_addr, 0)
        self._nonce_counters[peer_addr] = counter + 1
        return self._nonce_pad + struct.pack(">Q", counter)

    # ------------------------------------------------------------------
    def protect(self, peer_addr: str, data: bytes) -> bytes:
        """Wrap outgoing ``data`` for transmission to ``peer_addr``."""
        header = self._header
        if not self.enabled:
            return header + data
        self.messages_sealed += 1
        self.bytes_processed += len(data)
        nonce = self._next_nonce(peer_addr)
        if self.simulate:
            # size-identical stand-in for seal(): nonce || tag || body
            return header + nonce + _SIM_TAG + data
        key = self._pair_key(peer_addr)
        return header + seal(key, data, nonce)

    def unprotect(self, envelope: bytes) -> Tuple[str, bytes]:
        """Unwrap an incoming envelope; returns (sender_addr, payload)."""
        if len(envelope) < 3:
            raise SecurityError("envelope too short")
        flag, addr_len = struct.unpack_from(">BH", envelope, 0)
        if len(envelope) < 3 + addr_len:
            raise SecurityError("envelope truncated in sender address")
        sender = envelope[3:3 + addr_len].decode("utf-8")
        body = envelope[3 + addr_len:]
        if flag == _PLAIN:
            if self.enabled:
                raise SecurityError(
                    f"plaintext message from {sender} rejected: security on")
            return sender, body
        if flag != _SEALED:
            raise SecurityError(f"unknown envelope flag {flag}")
        if not self.enabled:
            raise SecurityError(
                f"sealed message from {sender} but security layer disabled")
        self.messages_opened += 1
        self.bytes_processed += len(body)
        if self.simulate:
            if len(body) < NONCE_SIZE + TAG_SIZE:
                raise SecurityError("sealed envelope too short")
            if bytes(body[NONCE_SIZE:NONCE_SIZE + TAG_SIZE]) != _SIM_TAG:
                raise SecurityError(
                    f"really-sealed envelope from {sender} reached a "
                    f"simulate_crypto layer")
            return sender, bytes(body[NONCE_SIZE + TAG_SIZE:])
        try:
            return sender, open_sealed(self._pair_key(sender), body)
        except SecurityError:
            previous = self._previous_keys.get(sender)
            if previous is None:
                raise
            # sealed just before a key rotation: accept under the old key
            return sender, open_sealed(previous, body)
