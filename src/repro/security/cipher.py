"""Keystream cipher + MAC used by the security manager.

Construction (didactic, stdlib-only — see DESIGN.md "Simplifications"):

* keystream block ``i`` = SHA-256(key || nonce || i) — counter mode;
* ciphertext = plaintext XOR keystream;
* tag = HMAC-SHA256(mac_key, nonce || ciphertext) — encrypt-then-MAC;
* ``mac_key`` = SHA-256("mac" || key) so the two keys are independent.

Sealed envelope layout: ``nonce(16) || tag(32) || ciphertext``.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import struct

from repro.common.errors import SecurityError

NONCE_SIZE = 16
TAG_SIZE = 32
_BLOCK = 32  # sha256 digest size


def derive_key(*parts: bytes | str | int) -> bytes:
    """Derive a 32-byte key from heterogeneous parts (password, site ids...)."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            raw = part.encode("utf-8")
        elif isinstance(part, int):
            raw = part.to_bytes((max(part.bit_length(), 1) + 7) // 8,
                                "big", signed=False)
        else:
            raw = bytes(part)
        h.update(struct.pack(">I", len(raw)))
        h.update(raw)
    return h.digest()


def _mac_key(key: bytes) -> bytes:
    return hashlib.sha256(b"mac" + key).digest()


def _keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    out = bytearray(len(data))
    prefix = key + nonce
    for block_index in range(0, (len(data) + _BLOCK - 1) // _BLOCK):
        block = hashlib.sha256(
            prefix + struct.pack(">Q", block_index)).digest()
        start = block_index * _BLOCK
        chunk = data[start:start + _BLOCK]
        for i, byte in enumerate(chunk):
            out[start + i] = byte ^ block[i]
    return bytes(out)


def seal(key: bytes, plaintext: bytes, nonce: bytes) -> bytes:
    """Encrypt and authenticate ``plaintext``.

    The caller supplies the nonce (the security layer uses a per-peer
    counter mixed with its site id, which guarantees uniqueness without a
    random source — important for deterministic simulation).
    """
    if len(key) != 32:
        raise SecurityError("key must be 32 bytes")
    if len(nonce) != NONCE_SIZE:
        raise SecurityError(f"nonce must be {NONCE_SIZE} bytes")
    ciphertext = _keystream_xor(key, nonce, plaintext)
    tag = _hmac.new(_mac_key(key), nonce + ciphertext,
                    hashlib.sha256).digest()
    return nonce + tag + ciphertext


def open_sealed(key: bytes, sealed: bytes) -> bytes:
    """Verify and decrypt an envelope produced by :func:`seal`."""
    if len(key) != 32:
        raise SecurityError("key must be 32 bytes")
    if len(sealed) < NONCE_SIZE + TAG_SIZE:
        raise SecurityError("sealed envelope too short")
    nonce = sealed[:NONCE_SIZE]
    tag = sealed[NONCE_SIZE:NONCE_SIZE + TAG_SIZE]
    ciphertext = sealed[NONCE_SIZE + TAG_SIZE:]
    expected = _hmac.new(_mac_key(key), nonce + ciphertext,
                         hashlib.sha256).digest()
    if not _hmac.compare_digest(tag, expected):
        raise SecurityError("message authentication failed")
    return _keystream_xor(key, nonce, ciphertext)
