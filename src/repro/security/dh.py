"""Diffie–Hellman key agreement for session-key rotation.

Uses the 2048-bit MODP group from RFC 3526 §3 (a well-known safe prime) with
generator 2.  Private exponents come from the caller's RNG so the simulation
stays deterministic under a fixed seed.
"""

from __future__ import annotations

import random

from repro.common.errors import SecurityError
from repro.security.cipher import derive_key

# RFC 3526, 2048-bit MODP Group (id 14).
DH_GROUP_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF", 16)
DH_GENERATOR = 2

_EXPONENT_BITS = 256  # short exponents are fine for this group size


class DHKeyPair:
    """One side of a Diffie–Hellman exchange.

    ``simulate=True`` (the sim kernel's ``simulate_crypto`` mode) skips the
    shared-secret modular exponentiation: the derived "session key" is then
    a cheap hash of the peer's public value, which is fine because the
    simulated cipher never uses the key.  The *public* value is still
    computed for real in both modes — it travels on the wire inside the
    KEY_EXCHANGE payload, so its exact value (and therefore encoded size)
    must match a real-crypto run byte for byte.  The RNG draw is likewise
    identical, keeping the seeded random stream in lockstep.
    """

    def __init__(self, rng: random.Random, simulate: bool = False) -> None:
        self._private = rng.getrandbits(_EXPONENT_BITS) | 1
        self._simulate = simulate
        self.public = pow(DH_GENERATOR, self._private, DH_GROUP_PRIME)

    def shared_key(self, peer_public: int,
                   context: bytes = b"sdvm-session") -> bytes:
        """Derive the 32-byte session key from the peer's public value."""
        if not 2 <= peer_public <= DH_GROUP_PRIME - 2:
            raise SecurityError("peer public value out of range")
        if self._simulate:
            return derive_key(context, b"simulated", peer_public)
        secret = pow(peer_public, self._private, DH_GROUP_PRIME)
        return derive_key(context, secret)
