"""The discrete-event simulator: virtual clock + ordered event queue.

Determinism rules:

* events fire in (time, insertion-sequence) order, so simultaneous events
  run in the order they were scheduled;
* cancelled events stay in the heap but are skipped (lazy deletion), which
  keeps :meth:`Simulator.cancel` O(1);
* all randomness flows through :attr:`Simulator.rng`, seeded at construction.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.common.errors import SDVMError


class SimulationError(SDVMError):
    """Raised for kernel misuse (negative delays, running a stopped sim)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq)."""

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (lazy removal from the heap)."""
        self.cancelled = True


class Simulator:
    """Event-driven virtual-time kernel.

    >>> sim = Simulator(seed=1)
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.rng = random.Random(seed)
        #: number of events executed (exposed for tests/benchmarks)
        self.events_executed = 0
        #: optional hook called before each event fires: hook(event)
        self.trace_hook: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self._now}")
        event = Event(time=time, seq=self._seq, fn=fn, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        event.cancel()

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or stopped.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier (useful for fixed-horizon runs).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                if max_events is not None and executed_this_run >= max_events:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self.events_executed += 1
                executed_this_run += 1
                if self.trace_hook is not None:
                    self.trace_hook(event)
                event.fn(*event.args)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_executed += 1
            if self.trace_hook is not None:
                self.trace_hook(event)
            event.fn(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Stop a running :meth:`run` after the current event completes."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
