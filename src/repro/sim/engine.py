"""The discrete-event simulator: virtual clock + ordered event queue.

Determinism rules:

* events fire in (time, insertion-sequence) order, so simultaneous events
  run in the order they were scheduled;
* cancelled events stay in the heap but are skipped (lazy deletion), which
  keeps :meth:`Simulator.cancel` O(1); when more than half the queue is
  cancelled the heap is compacted in one O(n) sweep so long runs with many
  cancelled timers (request timeouts, help retries) don't accumulate dead
  entries until pop time;
* all randomness flows through :attr:`Simulator.rng`, seeded at construction.

Performance notes: the heap stores plain ``(time, seq, event)`` tuples so
``heapq`` compares tuples in C instead of calling a Python ``__lt__``; the
:class:`Event` handle itself is a ``__slots__`` class carrying only the
callback, its args, and the cancelled flag.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import SDVMError


class SimulationError(SDVMError):
    """Raised for kernel misuse (negative delays, running a stopped sim)."""


class Event:
    """A scheduled callback, ordered by (time, seq) in the simulator heap."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., None],
                 args: tuple = (), sim: "Optional[Simulator]" = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: owning simulator while queued (cleared on pop) — lets cancel()
        #: keep the owner's cancelled-entry count exact without a scan
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (lazy removal from the heap)."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()


#: compaction triggers only beyond this queue size — tiny queues rebuild
#: for no benefit
_COMPACT_MIN = 64


class Simulator:
    """Event-driven virtual-time kernel.

    >>> sim = Simulator(seed=1)
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        #: cancelled events still sitting in the heap (exact count)
        self._cancelled = 0
        self.rng = random.Random(seed)
        #: number of events executed (exposed for tests/benchmarks)
        self.events_executed = 0
        #: optional hook called before each event fires: hook(event)
        self.trace_hook: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self._now}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._queue, (time, seq, event))
        return event

    def cancel(self, event: Event) -> None:
        event.cancel()

    # -- lazy-deletion bookkeeping --------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        queue = self._queue
        if len(queue) > _COMPACT_MIN and self._cancelled * 2 > len(queue):
            # in-place rebuild so aliases of the queue list stay valid
            queue[:] = [entry for entry in queue if not entry[2].cancelled]
            heapq.heapify(queue)
            self._cancelled = 0

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or stopped.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier (useful for fixed-horizon runs).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        queue = self._queue
        # hoist the optional bounds out of the loop: an unset horizon/limit
        # becomes +inf, so the per-event path is two comparisons, no
        # None-checks
        horizon = float("inf") if until is None else until
        limit = float("inf") if max_events is None else max_events
        try:
            while queue:
                if self._stopped or executed_this_run >= limit:
                    break
                entry = queue[0]
                if entry[0] > horizon:
                    break
                heappop(queue)
                event = entry[2]
                event._sim = None
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = entry[0]
                self.events_executed += 1
                executed_this_run += 1
                if self.trace_hook is not None:
                    self.trace_hook(event)
                event.fn(*event.args)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            _time, _seq, event = heappop(queue)
            event._sim = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            self.events_executed += 1
            if self.trace_hook is not None:
                self.trace_hook(event)
            event.fn(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Stop a running :meth:`run` after the current event completes."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            _t, _s, event = heappop(queue)
            event._sim = None
            self._cancelled -= 1
        return queue[0][0] if queue else None
