"""Deterministic discrete-event simulation kernel.

This is the substrate that stands in for the paper's physical testbed: a
classic event-queue simulator with a monotonic virtual clock, deterministic
tie-breaking, and a seeded RNG.  All SDVM timing benchmarks (Table 1 and the
ablations in ``benchmarks/``) run on this kernel, so their results are exactly
reproducible across machines.
"""

from repro.sim.engine import Simulator, Event, SimulationError
from repro.sim.resource import SimResource

__all__ = ["Simulator", "Event", "SimulationError", "SimResource"]
