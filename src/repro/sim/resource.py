"""A capacity-limited FIFO resource for the simulation kernel.

Used to model contended serial resources (a site's CPU, a disk, a shared
link).  Requests are granted in FIFO order; a holder releases explicitly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from repro.sim.engine import SimulationError, Simulator


class SimResource:
    """A counting resource: at most ``capacity`` concurrent holders.

    ``acquire(fn)`` calls ``fn()`` immediately if a slot is free, otherwise
    queues it; ``release()`` wakes the next waiter (scheduled at the current
    time so event ordering stays deterministic).
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._sim = sim
        self._capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Callable[[], None]] = deque()
        #: total time-weighted utilization bookkeeping
        self._busy_area = 0.0
        self._last_change = sim.now

    def _account(self) -> None:
        now = self._sim.now
        self._busy_area += self._in_use * (now - self._last_change)
        self._last_change = now

    def acquire(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` as soon as a slot is available."""
        if self._in_use < self._capacity:
            self._account()
            self._in_use += 1
            fn()
        else:
            self._waiters.append(fn)

    def release(self) -> None:
        """Free one slot, waking the longest-waiting requester."""
        if self._in_use <= 0:
            raise SimulationError("release without matching acquire")
        self._account()
        self._in_use -= 1
        if self._waiters:
            fn = self._waiters.popleft()
            self._in_use += 1
            # schedule rather than call: the waiter runs as a fresh event
            self._sim.schedule(0.0, fn)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def utilization(self) -> float:
        """Mean fraction of capacity in use since construction."""
        self._account()
        elapsed = self._sim.now if self._sim.now > 0 else 1.0
        return self._busy_area / (self._capacity * elapsed)
