"""Attraction memory — the SDVM's COMA-style global memory (paper §4).

"The attraction memory contains the local part of the global memory.  It
behaves like a COMA's attraction memory by attracting requested data to the
local site transparently.  Microframes as a special kind of global data are
stored in and migrated by the attraction memory as well, until they have
received all their parameters."

Every object and frame has a *homesite* baked into its global address; the
homesite keeps a directory entry pointing at the current owner ("homesite
directory", §4, ref [5]).
"""

from repro.memory.manager import AttractionMemory

__all__ = ["AttractionMemory"]
