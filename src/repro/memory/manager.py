"""The attraction memory manager.

Two access paths exist, matching DESIGN.md:

* **sim shortcut** (``sim_read``/``sim_write``): values resolve against the
  cluster-wide object directory at execution start time; ownership
  migration, homesite-directory updates, and the modelled round-trip
  latencies are all real and feed the benchmarks.
* **message protocol** (MEM_READ / MEM_READ_REPLY / MEM_WRITE /
  MEM_LOCATION / MEM_HOME_UPDATE): the full COMA protocol used by the live
  runtime's blocking contexts, with homesite redirection.

Result application (APPLY_RESULT) is always message-based — it is what
drives dataflow timing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import FrameStateError, MemoryFault
from repro.common.ids import GlobalAddress, ManagerId
from repro.core.frames import Microframe
from repro.messages import MsgType, SDMessage, make_reply
from repro.serde import encoded_size
from repro.site.manager_base import Manager


class AttractionMemory(Manager):
    manager_id = ManagerId.ATTRACTION_MEMORY

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        self._next_local = 1
        #: incomplete microframes waiting for parameters
        self.frames: Dict[GlobalAddress, Microframe] = {}
        #: results that arrived before their frame was registered
        self._pending_results: Dict[GlobalAddress, List[Tuple[int, Any]]] = {}
        #: program id of buffered results (so termination can clean up)
        self._pending_programs: Dict[GlobalAddress, int] = {}
        #: memory objects currently owned by this site
        self.objects: Dict[GlobalAddress, Any] = {}
        #: homesite directory: for objects created here, the current owner
        self.home_dir: Dict[GlobalAddress, int] = {}

    # ------------------------------------------------------------------
    # address allocation

    def alloc_address(self) -> GlobalAddress:
        """Fresh global address homed at this site."""
        addr = GlobalAddress(self.local_id, self._next_local)
        self._next_local += 1
        return addr

    # ------------------------------------------------------------------
    # microframes

    def register_frame(self, frame: Microframe) -> None:
        """Adopt a newly created (or migrated-in) microframe."""
        self.kernel.cpu_charge(self.cost.frame_alloc_cost)
        self.stats.inc("frames_registered")
        pending = self._pending_results.pop(frame.frame_id, None)
        self._pending_programs.pop(frame.frame_id, None)
        if pending is not None:
            for slot, value in pending:
                frame.apply_parameter(slot, value)
        if frame.executable:
            self.site.scheduling_manager.enqueue_executable(frame)
        else:
            self.frames[frame.frame_id] = frame

    def apply_result(self, addr: GlobalAddress, slot: int, value: Any,
                     program: int) -> None:
        """Apply a microthread result to the frame at ``addr`` (local or
        remote — the paper's "writes results to incomplete microframes")."""
        frame = self.frames.get(addr)
        if frame is not None or addr.site == self.local_id:
            self._apply_local(addr, slot, value, program)
            return
        target = self.site.cluster_manager.effective_site(addr.site)
        if target == self.local_id:
            # we inherited the leaver's address space
            self._apply_local(addr, slot, value, program)
            return
        sent = self.site.message_manager.send(SDMessage(
            type=MsgType.APPLY_RESULT,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=target, dst_manager=ManagerId.ATTRACTION_MEMORY,
            program=program,
            payload={"addr": addr, "slot": slot, "value": value,
                     "epoch": self.site.epoch},
        ))
        if sent:
            self.stats.inc("results_sent")
        else:
            self.stats.inc("results_undeliverable")

    def _apply_local(self, addr: GlobalAddress, slot: int, value: Any,
                     program: int) -> None:
        self.kernel.cpu_charge(self.cost.result_apply_cost)
        frame = self.frames.get(addr)
        if frame is None:
            if not self.site.program_manager.is_active(program):
                self.stats.inc("results_dropped_terminated")
                return
            # frame not registered yet (live-mode race / relocation window):
            # buffer until it shows up
            self._pending_results.setdefault(addr, []).append((slot, value))
            self._pending_programs[addr] = program
            self.stats.inc("results_buffered")
            return
        try:
            became_executable = frame.apply_parameter(slot, value)
        except FrameStateError:
            # duplicate delivery: after a rollback recovery, restored
            # producers re-send results a restored consumer already holds
            # (at-least-once).  Slots are single-producer, so a duplicate
            # always carries the same value and is safe to drop.
            self.stats.inc("duplicate_results_dropped")
            return
        self.stats.inc("results_applied")
        if became_executable:
            del self.frames[addr]
            self.site.scheduling_manager.enqueue_executable(frame)

    def drop_program(self, pid: int) -> None:
        for addr in [a for a, f in self.frames.items() if f.program == pid]:
            del self.frames[addr]
        for addr in [a for a, p in self._pending_programs.items() if p == pid]:
            self._pending_results.pop(addr, None)
            del self._pending_programs[addr]

    # ------------------------------------------------------------------
    # memory objects — sim shortcut path

    def alloc_object(self, value: Any) -> GlobalAddress:
        addr = self.alloc_address()
        self.objects[addr] = value
        self.home_dir[addr] = self.local_id
        shared = getattr(self.kernel, "shared", None)
        if shared is not None:
            shared.objects[addr.pack()] = (self.local_id, value)
        self.stats.inc("objects_allocated")
        return addr

    def sim_read(self, addr: GlobalAddress) -> Tuple[Any, float]:
        """Resolve a read; returns (value, modelled wait seconds).

        A remote hit *attracts* the object: ownership migrates here, the
        homesite directory is updated, and the round-trip cost (request +
        object transfer at link bandwidth) is charged as wait time.
        """
        if addr in self.objects:
            self.stats.inc("reads_local")
            return self.objects[addr], 0.0
        shared = self.kernel.shared
        entry = shared.objects.get(addr.pack())
        if entry is None:
            raise MemoryFault(f"read of unknown global address {addr}")
        owner, value = entry
        self.stats.inc("reads_remote")
        latency = self._migration_latency(owner, value)
        self._migrate_in(addr, owner, value)
        return value, latency

    def sim_write(self, addr: GlobalAddress, value: Any) -> float:
        """Apply a write effect; returns modelled wait seconds (0 if local)."""
        if addr in self.objects:
            self.objects[addr] = value
            self.kernel.shared.objects[addr.pack()] = (self.local_id, value)
            self.stats.inc("writes_local")
            return 0.0
        shared = self.kernel.shared
        entry = shared.objects.get(addr.pack())
        if entry is None:
            raise MemoryFault(f"write to unknown global address {addr}")
        owner, _old = entry
        # write-migrate: attract the object, then write locally (COMA)
        latency = self._migration_latency(owner, _old)
        self._migrate_in(addr, owner, _old)
        self.objects[addr] = value
        shared.objects[addr.pack()] = (self.local_id, value)
        self.stats.inc("writes_migrated")
        return latency

    def _migration_latency(self, owner: int, value: Any) -> float:
        network = self.kernel.shared.network
        my_phys = int(self.kernel.local_physical())
        owner_rec = self.site.cluster_manager.sites.get(owner)
        if owner_rec is None:
            return 2.0 * network.config.latency
        owner_phys = int(owner_rec.physical)
        request = network.transit_delay(my_phys, owner_phys, 64)
        reply = network.transit_delay(owner_phys, my_phys,
                                      64 + encoded_size(value))
        return request + reply

    def _migrate_in(self, addr: GlobalAddress, owner: int,
                    value: Any) -> None:
        shared = self.kernel.shared
        owner_site = shared.sites.get(owner)
        if owner_site is not None:
            owner_site.attraction_memory.objects.pop(addr, None)
        self.objects[addr] = value
        shared.objects[addr.pack()] = (self.local_id, value)
        # homesite directory update
        home_site = shared.sites.get(
            self.site.cluster_manager.effective_site(addr.site))
        if home_site is not None:
            home_site.attraction_memory.home_dir[addr] = self.local_id
        self.stats.inc("migrations_in")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "mem_migrate_in",
                    addr.pack(), owner)

    # ------------------------------------------------------------------
    # memory objects — message protocol (live kernel path)

    def live_read(self, addr: GlobalAddress, cb) -> None:  # noqa: ANN001
        """Resolve a read via the COMA message protocol (blocking contexts).

        ``cb(value)`` on success; ``cb(None, error)`` on failure.  The read
        *attracts* the object: the owner ships it with ownership and
        updates the homesite directory.
        """
        if addr in self.objects:
            self.stats.inc("reads_local")
            cb(self.objects[addr])
            return
        target = self.site.cluster_manager.effective_site(addr.site)
        if target == self.local_id:
            owner = self.home_dir.get(addr)
            if owner is None or owner == self.local_id:
                cb(None, MemoryFault(f"read of unknown address {addr}"))
                return
            target = owner
        self._live_read_at(addr, target, cb, attempt=0)

    def _live_read_at(self, addr: GlobalAddress, target: int, cb,  # noqa: ANN001
                      attempt: int) -> None:
        if attempt > 4:
            cb(None, MemoryFault(f"read of {addr}: too many redirects"))
            return
        msg = SDMessage(
            type=MsgType.MEM_READ,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=target, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"addr": addr, "migrate": True},
        )
        self.stats.inc("reads_remote")

        def on_reply(reply: SDMessage) -> None:
            if reply.type == MsgType.MEM_READ_REPLY:
                value = reply.payload["value"]
                if reply.payload.get("owned"):
                    self.objects[addr] = value
                    self.stats.inc("migrations_in")
                    tr = self.tracer
                    if tr is not None:
                        tr.emit(self.kernel.now, self.local_id,
                                "mem_migrate_in", addr.pack(),
                                reply.src_site)
                cb(value)
            elif reply.type == MsgType.MEM_LOCATION:
                self._live_read_at(addr, reply.payload["owner"], cb,
                                   attempt + 1)
            else:
                cb(None, MemoryFault(f"object {addr} not found"))

        ok = self.site.message_manager.request(
            msg, on_reply, timeout=2.0,
            on_timeout=lambda: cb(None, MemoryFault(
                f"read of {addr}: site {target} unresponsive")))
        if not ok:
            cb(None, MemoryFault(f"read of {addr}: cannot reach {target}"))

    def apply_write(self, addr: GlobalAddress, value: Any) -> float:
        """Mode-dispatched write: sim shortcut or live message protocol."""
        if self.kernel.mode == "sim":
            return self.sim_write(addr, value)
        if addr in self.objects:
            self.objects[addr] = value
            self.stats.inc("writes_local")
            return 0.0
        target = self.site.cluster_manager.effective_site(addr.site)
        self.site.message_manager.send(SDMessage(
            type=MsgType.MEM_WRITE,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=target, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"addr": addr, "value": value},
        ))
        self.stats.inc("writes_sent")
        return 0.0

    def handle(self, msg: SDMessage) -> None:
        if msg.type == MsgType.APPLY_RESULT:
            payload = msg.payload
            if self._stale_epoch(payload):
                # in-flight result from a rolled-back epoch: the replay
                # re-produces it, and applying the stale copy would
                # contaminate a restored frame with pre-recovery state
                # (e.g. frame addresses that will never be allocated again)
                self.stats.inc("stale_results_dropped")
                return
            self._apply_local(payload["addr"], payload["slot"],
                              payload["value"], msg.program)
        elif msg.type == MsgType.FRAME_TRANSFER:
            self._on_frame_transfer(msg)
        elif msg.type == MsgType.MEM_READ:
            self._on_mem_read(msg)
        elif msg.type == MsgType.MEM_WRITE:
            self._on_mem_write(msg)
        elif msg.type == MsgType.MEM_HOME_UPDATE:
            self.home_dir[msg.payload["addr"]] = msg.payload["owner"]
        elif msg.type == MsgType.MEM_READ_REPLY:
            # late reply after a timed-out read: if it shipped ownership,
            # adopt the object — dropping it would lose data
            if msg.payload.get("owned"):
                self.objects[msg.payload["addr"]] = msg.payload["value"]
                self.stats.inc("migrations_in")
                tr = self.tracer
                if tr is not None:
                    tr.emit(self.kernel.now, self.local_id,
                            "mem_migrate_in", msg.payload["addr"].pack(),
                            msg.src_site)
        elif msg.type in (MsgType.MEM_LOCATION, MsgType.MEM_NOT_FOUND):
            self.stats.inc("late_replies_ignored")
        elif msg.type == MsgType.MEM_OBJECT:
            self._on_bulk_adopt(msg)
        else:
            super().handle(msg)

    def _stale_epoch(self, payload: dict) -> bool:
        """True when a dataflow payload was stamped before the last rollback
        recovery.  Stale deliveries are dropped — the checkpoint already
        restored their content, and the replay re-sends anything in flight.
        Unstamped payloads (relocation, pre-epoch senders) pass through.
        """
        return payload.get("epoch", self.site.epoch) < self.site.epoch

    def _on_frame_transfer(self, msg: SDMessage) -> None:
        if self._stale_epoch(msg.payload):
            self.stats.inc("stale_frames_dropped")
            return
        for info_wire in msg.payload.get("program_infos", ()):
            self.site.program_manager.learn_program_wire(info_wire)
        info_wire = msg.payload.get("program_info")
        if info_wire is not None:
            self.site.program_manager.learn_program_wire(info_wire)
        # proactive pushes batch several frames into one transfer;
        # relocation (sign-off) still sends one frame per message
        wires = msg.payload.get("frames")
        if wires is None:
            wires = [msg.payload["frame"]]
        tr = self.tracer
        for wire in wires:
            frame = Microframe.from_wire(wire)
            self.stats.inc("frames_adopted")
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "frame_adopted",
                        frame.frame_id.pack(), msg.src_site)
            self.register_frame(frame)

    def _on_mem_read(self, msg: SDMessage) -> None:
        addr = msg.payload["addr"]
        migrate = msg.payload.get("migrate", True)
        if addr in self.objects:
            value = self.objects[addr]
            if migrate:
                del self.objects[addr]
                self._notify_home(addr, msg.src_site)
            self.site.message_manager.send(make_reply(
                msg, MsgType.MEM_READ_REPLY,
                {"addr": addr, "value": value, "owned": migrate}))
            self.stats.inc("reads_served")
            return
        owner = self.home_dir.get(addr)
        if owner is not None and owner != self.local_id:
            self.site.message_manager.send(make_reply(
                msg, MsgType.MEM_LOCATION, {"addr": addr, "owner": owner}))
            self.stats.inc("redirects_served")
            return
        self.site.message_manager.send(make_reply(
            msg, MsgType.MEM_NOT_FOUND, {"addr": addr}))

    def _on_mem_write(self, msg: SDMessage) -> None:
        addr = msg.payload["addr"]
        if addr in self.objects:
            self.objects[addr] = msg.payload["value"]
            self.stats.inc("writes_served")
            return
        owner = self.home_dir.get(addr)
        if owner is not None and owner != self.local_id:
            forward = SDMessage(
                type=MsgType.MEM_WRITE,
                src_site=self.local_id,
                src_manager=ManagerId.ATTRACTION_MEMORY,
                dst_site=owner, dst_manager=ManagerId.ATTRACTION_MEMORY,
                program=msg.program,
                payload=dict(msg.payload),
            )
            self.site.message_manager.send(forward)

    def _notify_home(self, addr: GlobalAddress, new_owner: int) -> None:
        home = self.site.cluster_manager.effective_site(addr.site)
        if home == self.local_id:
            self.home_dir[addr] = new_owner
            return
        self.site.message_manager.send(SDMessage(
            type=MsgType.MEM_HOME_UPDATE,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=home, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"addr": addr, "owner": new_owner},
        ))

    # ------------------------------------------------------------------
    # relocation (orderly sign-off, §3.4) and adoption

    def export_state(self) -> dict:
        """Serialize everything this site holds, for relocation to an heir.

        "All microframes and the local part of the global memory have to be
        relocated to other sites before shutdown" (§3.4).
        """
        sched_frames = self.site.scheduling_manager.export_frames()
        return {
            "frames": [f.to_wire() for f in self.frames.values()]
                      + [f.to_wire() for f in sched_frames],
            "objects": [(addr, value) for addr, value in self.objects.items()],
            "home_dir": [(addr, owner) for addr, owner in self.home_dir.items()],
            "pending": [(addr, slot, value, self._pending_programs.get(addr, -1))
                        for addr, pairs in self._pending_results.items()
                        for slot, value in pairs],
            "programs": self.site.program_manager.known_programs_wire(),
        }

    def export_checkpoint(self) -> dict:
        """Non-draining snapshot for a checkpoint wave (queues stay put)."""
        sched_frames = self.site.scheduling_manager.snapshot_frames()
        return {
            "frames": [f.to_wire() for f in self.frames.values()]
                      + [f.to_wire() for f in sched_frames],
            "objects": [(addr, value) for addr, value in self.objects.items()],
            "home_dir": [(addr, owner) for addr, owner in self.home_dir.items()],
            "pending": [(addr, slot, value, self._pending_programs.get(addr, -1))
                        for addr, pairs in self._pending_results.items()
                        for slot, value in pairs],
            "programs": self.site.program_manager.known_programs_wire(),
        }

    def reset_program_state(self) -> None:
        """Drop all dataflow state prior to recovery adoption."""
        self.frames.clear()
        self._pending_results.clear()
        self._pending_programs.clear()

    def send_state_to_heir(self, heir: int) -> None:
        self.site.message_manager.send(SDMessage(
            type=MsgType.MEM_OBJECT,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=heir, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"state": self.export_state(), "from": self.local_id},
        ))

    def _on_bulk_adopt(self, msg: SDMessage) -> None:
        self.adopt_state(msg.payload["state"])
        self.stats.inc("relocations_adopted")

    def adopt_state(self, state: dict) -> None:
        """Adopt a departed/recovered site's frames, objects, directory."""
        self.site.program_manager.learn_programs_wire(state.get("programs", []))
        shared = getattr(self.kernel, "shared", None)
        for addr, value in state.get("objects", []):
            self.objects[addr] = value
            if shared is not None:
                shared.objects[addr.pack()] = (self.local_id, value)
        for addr, owner in state.get("home_dir", []):
            # objects we just adopted are now owned here, not by the old owner
            self.home_dir[addr] = (self.local_id if addr in self.objects
                                   else owner)
        for addr, slot, value, program in state.get("pending", []):
            self._pending_results.setdefault(addr, []).append((slot, value))
            if program >= 0:
                self._pending_programs[addr] = program
        for wire in state.get("frames", []):
            frame = Microframe.from_wire(wire)
            if self.site.program_manager.is_active(frame.program):
                self.register_frame(frame)

    # ------------------------------------------------------------------
    def status(self) -> dict:
        base = super().status()
        base["incomplete_frames"] = len(self.frames)
        base["objects_owned"] = len(self.objects)
        base["home_entries"] = len(self.home_dir)
        return base
