"""The attraction memory manager.

Object ownership is tracked by a **consistent-hash sharded directory**
(:mod:`repro.memory.directory`): every global address hashes to a
directory shard site, and the current owner publishes ownership changes
to that shard with a real ``DIR_UPDATE`` message — epoch-fenced against
post-recovery stragglers, version-fenced against reordered updates from
older hops of the ownership chain, acked and retried (re-resolving the
ring) so a crashed shard never swallows an update.  Remote reads do at
most one directory hop and then a direct owner fetch; nothing on the
lookup path broadcasts or scales with the cluster size.

Two access paths exist, matching DESIGN.md:

* **sim shortcut** (``sim_read``/``sim_write``): values resolve against the
  cluster-wide object oracle at execution start time; ownership migration,
  the DIR_UPDATE traffic, and the modelled directory-hop + transfer
  latencies are all real and feed the benchmarks.
* **message protocol** (MEM_READ / MEM_READ_REPLY / MEM_WRITE /
  MEM_LOCATION / DIR_UPDATE / DIR_ACK): the full COMA protocol used by the
  live runtime's blocking contexts, with directory-shard redirection.

Result application (APPLY_RESULT) is always message-based — it is what
drives dataflow timing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import FrameStateError, MemoryFault
from repro.common.ids import GlobalAddress, ManagerId
from repro.core.frames import Microframe
from repro.messages import MsgType, SDMessage, make_reply
from repro.serde import encoded_size
from repro.site.manager_base import Manager


class AttractionMemory(Manager):
    manager_id = ManagerId.ATTRACTION_MEMORY

    #: DIR_UPDATE ack deadline and per-update retry budget; each retry
    #: re-resolves the shard ring, so an update outlives its shard's crash
    _DIR_TIMEOUT = 0.2
    _DIR_RETRIES = 4

    #: total redirect/re-resolve hops a live read may take before failing
    _READ_ATTEMPTS = 4

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        self._next_local = 1
        #: incomplete microframes waiting for parameters
        self.frames: Dict[GlobalAddress, Microframe] = {}
        #: results that arrived before their frame was registered
        self._pending_results: Dict[GlobalAddress, List[Tuple[int, Any]]] = {}
        #: program id of buffered results (so termination can clean up)
        self._pending_programs: Dict[GlobalAddress, int] = {}
        #: memory objects currently owned by this site
        self.objects: Dict[GlobalAddress, Any] = {}
        #: per-owned-object migration version; travels with the object and
        #: orders DIR_UPDATEs along the ownership chain
        self._versions: Dict[GlobalAddress, int] = {}
        #: directory shard entries this site is responsible for:
        #: address -> (owner, version, epoch)
        self.dir_entries: Dict[GlobalAddress, Tuple[int, int, int]] = {}
        # membership churn moves shard assignments: republish owned
        # objects and hand off entries this site no longer covers
        cm = site.cluster_manager
        cm.on_site_joined.append(self._on_membership_change)
        cm.on_site_departed.append(self._on_membership_change)

    # ------------------------------------------------------------------
    # address allocation

    def alloc_address(self) -> GlobalAddress:
        """Fresh global address homed at this site."""
        addr = GlobalAddress(self.local_id, self._next_local)
        self._next_local += 1
        return addr

    # ------------------------------------------------------------------
    # microframes

    def register_frame(self, frame: Microframe) -> None:
        """Adopt a newly created (or migrated-in) microframe."""
        self.kernel.cpu_charge(self.cost.frame_alloc_cost)
        self.stats.inc("frames_registered")
        pending = self._pending_results.pop(frame.frame_id, None)
        self._pending_programs.pop(frame.frame_id, None)
        if pending is not None:
            for slot, value in pending:
                frame.apply_parameter(slot, value)
        if frame.executable:
            self.site.scheduling_manager.enqueue_executable(frame)
        else:
            self.frames[frame.frame_id] = frame

    def apply_result(self, addr: GlobalAddress, slot: int, value: Any,
                     program: int) -> None:
        """Apply a microthread result to the frame at ``addr`` (local or
        remote — the paper's "writes results to incomplete microframes")."""
        frame = self.frames.get(addr)
        if frame is not None or addr.site == self.local_id:
            self._apply_local(addr, slot, value, program)
            return
        target = self.site.cluster_manager.effective_site(addr.site)
        if target == self.local_id:
            # we inherited the leaver's address space
            self._apply_local(addr, slot, value, program)
            return
        sent = self.site.message_manager.send(SDMessage(
            type=MsgType.APPLY_RESULT,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=target, dst_manager=ManagerId.ATTRACTION_MEMORY,
            program=program,
            payload={"addr": addr, "slot": slot, "value": value,
                     "epoch": self.site.epoch},
        ))
        if sent:
            self.stats.inc("results_sent")
        else:
            self.stats.inc("results_undeliverable")

    def _apply_local(self, addr: GlobalAddress, slot: int, value: Any,
                     program: int) -> None:
        self.kernel.cpu_charge(self.cost.result_apply_cost)
        frame = self.frames.get(addr)
        if frame is None:
            if not self.site.program_manager.is_active(program):
                self.stats.inc("results_dropped_terminated")
                return
            # frame not registered yet (live-mode race / relocation window):
            # buffer until it shows up
            self._pending_results.setdefault(addr, []).append((slot, value))
            self._pending_programs[addr] = program
            self.stats.inc("results_buffered")
            return
        try:
            became_executable = frame.apply_parameter(slot, value)
        except FrameStateError:
            # duplicate delivery: after a rollback recovery, restored
            # producers re-send results a restored consumer already holds
            # (at-least-once).  Slots are single-producer, so a duplicate
            # always carries the same value and is safe to drop.
            self.stats.inc("duplicate_results_dropped")
            return
        self.stats.inc("results_applied")
        if became_executable:
            del self.frames[addr]
            self.site.scheduling_manager.enqueue_executable(frame)

    def drop_program(self, pid: int) -> None:
        for addr in [a for a, f in self.frames.items() if f.program == pid]:
            del self.frames[addr]
        for addr in [a for a, p in self._pending_programs.items() if p == pid]:
            self._pending_results.pop(addr, None)
            del self._pending_programs[addr]

    # ------------------------------------------------------------------
    # the sharded ownership directory

    def dir_owner(self, addr: GlobalAddress) -> Optional[int]:
        """This shard's view of who owns ``addr`` (None: no entry)."""
        entry = self.dir_entries.get(addr)
        return None if entry is None else entry[0]

    def _apply_dir_entry(self, addr: GlobalAddress, owner: int,
                         version: int, epoch: int) -> None:
        """Last-writer-wins ordered by (epoch, version): a recovery rebase
        (higher epoch) always wins; within an epoch the ownership chain's
        version decides, so a reordered update from an older hop can never
        overwrite the newest owner."""
        entry = self.dir_entries.get(addr)
        if entry is None or (epoch, version) >= (entry[2], entry[1]):
            self.dir_entries[addr] = (owner, version, epoch)

    def _publish_dir(self, addr: GlobalAddress, attempt: int = 0) -> None:
        """Publish this site's ownership of ``addr`` to its shard."""
        version = self._versions.get(addr, 0)
        target = self.site.cluster_manager.dir_site_for(addr)
        if target == self.local_id:
            self._apply_dir_entry(addr, self.local_id, version,
                                  self.site.epoch)
            return
        self._send_dir_update(
            addr, self.local_id, version, target,
            on_timeout=lambda: self._dir_retry(addr, attempt))

    def _dir_retry(self, addr: GlobalAddress, attempt: int) -> None:
        if addr not in self.objects:
            return  # ownership moved on; the new owner publishes
        if attempt + 1 >= self._DIR_RETRIES:
            self.stats.inc("dir_updates_abandoned")
            return
        self.stats.inc("dir_update_retries")
        # re-resolves the ring, so a crashed shard re-homes the update
        self._publish_dir(addr, attempt + 1)

    def _send_dir_update(self, addr: GlobalAddress, owner: int, version: int,
                         target: int, epoch: Optional[int] = None,
                         on_timeout=None) -> None:  # noqa: ANN001
        msg = SDMessage(
            type=MsgType.DIR_UPDATE,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=target, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"addr": addr, "owner": owner, "version": version,
                     "epoch": self.site.epoch if epoch is None else epoch},
        )
        ok = self.site.message_manager.request(
            msg, on_reply=lambda reply: None, timeout=self._DIR_TIMEOUT,
            on_timeout=on_timeout or (lambda: None))
        if ok:
            self.stats.inc("dir_updates_sent")
        elif on_timeout is not None:
            on_timeout()  # unresolvable target: same path as a timeout

    def _on_dir_update(self, msg: SDMessage) -> None:
        payload = msg.payload
        if self._stale_epoch(payload):
            self.stats.inc("stale_dir_updates_dropped")
        else:
            self._apply_dir_entry(payload["addr"], payload["owner"],
                                  payload.get("version", 0),
                                  payload.get("epoch", self.site.epoch))
            self.stats.inc("dir_updates_applied")
        # always ack — even a fenced update must stop the sender's retries
        self.site.message_manager.send(make_reply(
            msg, MsgType.DIR_ACK, {"addr": payload["addr"]}))

    def _on_membership_change(self, _logical: int) -> None:
        """The directory ring changed: republish ownership of everything
        owned here (its shard may have moved) and hand off shard entries
        this site no longer covers.  O(owned + entries) per membership
        change — never per access — and a no-op on empty sites, so the
        bootstrap join storm costs nothing."""
        cm = self.site.cluster_manager
        for addr in list(self.objects):
            self._publish_dir(addr)
        if not self.dir_entries:
            return
        moved = [(addr, entry) for addr, entry in self.dir_entries.items()
                 if cm.dir_site_for(addr) != self.local_id]
        for addr, (owner, version, epoch) in moved:
            del self.dir_entries[addr]
            self.stats.inc("dir_entries_handed_off")
            self._send_dir_update(addr, owner, version,
                                  cm.dir_site_for(addr),
                                  epoch=max(epoch, self.site.epoch))

    # ------------------------------------------------------------------
    # memory objects — sim shortcut path

    def alloc_object(self, value: Any) -> GlobalAddress:
        addr = self.alloc_address()
        self.objects[addr] = value
        self._versions[addr] = 0
        shared = getattr(self.kernel, "shared", None)
        if shared is not None:
            shared.objects[addr.pack()] = (self.local_id, value, 0)
        self.stats.inc("objects_allocated")
        self._publish_dir(addr)
        return addr

    def sim_read(self, addr: GlobalAddress) -> Tuple[Any, float]:
        """Resolve a read; returns (value, modelled wait seconds).

        A remote hit *attracts* the object: ownership migrates here, the
        new owner publishes a DIR_UPDATE to the address's shard, and the
        modelled cost (directory hop if the shard is a third site, then
        the object transfer at link bandwidth) is charged as wait time.
        """
        if addr in self.objects:
            self.stats.inc("reads_local")
            return self.objects[addr], 0.0
        shared = self.kernel.shared
        entry = shared.objects.get(addr.pack())
        if entry is None:
            raise MemoryFault(f"read of unknown global address {addr}")
        owner, value, version = entry
        self.stats.inc("reads_remote")
        latency = self._migration_latency(addr, owner, value)
        self._migrate_in(addr, owner, value, version)
        return value, latency

    def sim_write(self, addr: GlobalAddress, value: Any) -> float:
        """Apply a write effect; returns modelled wait seconds (0 if local)."""
        if addr in self.objects:
            self.objects[addr] = value
            self.kernel.shared.objects[addr.pack()] = (
                self.local_id, value, self._versions.get(addr, 0))
            self.stats.inc("writes_local")
            return 0.0
        shared = self.kernel.shared
        entry = shared.objects.get(addr.pack())
        if entry is None:
            raise MemoryFault(f"write to unknown global address {addr}")
        owner, _old, version = entry
        # write-migrate: attract the object, then write locally (COMA)
        latency = self._migration_latency(addr, owner, _old)
        self._migrate_in(addr, owner, _old, version)
        self.objects[addr] = value
        shared.objects[addr.pack()] = (self.local_id, value,
                                       self._versions.get(addr, 0))
        self.stats.inc("writes_migrated")
        return latency

    def _migration_latency(self, addr: GlobalAddress, owner: int,
                           value: Any) -> float:
        """Modelled read-migration cost: requester -> directory shard
        (skipped when the shard is the requester), shard -> owner forward
        (skipped when the shard *is* the owner), owner -> requester with
        the object payload."""
        network = self.kernel.shared.network
        my_phys = int(self.kernel.local_physical())
        cm = self.site.cluster_manager
        owner_rec = cm.sites.get(owner)
        if owner_rec is None:
            return 2.0 * network.config.latency
        owner_phys = int(owner_rec.physical)
        total = 0.0
        dir_site = cm.dir_site_for(addr)
        if dir_site == self.local_id:
            total += network.transit_delay(my_phys, owner_phys, 64)
        else:
            dir_rec = cm.sites.get(dir_site)
            dir_phys = (int(dir_rec.physical) if dir_rec is not None
                        else owner_phys)
            total += network.transit_delay(my_phys, dir_phys, 64)
            if dir_site != owner:
                total += network.transit_delay(dir_phys, owner_phys, 64)
        total += network.transit_delay(owner_phys, my_phys,
                                       64 + encoded_size(value))
        return total

    def _migrate_in(self, addr: GlobalAddress, owner: int,
                    value: Any, version: int) -> None:
        shared = self.kernel.shared
        owner_site = shared.sites.get(owner)
        if owner_site is not None:
            # sim shortcut: the owner-side pop is synchronous because
            # sim_read resolves value and ownership at its linearization
            # point; the *directory* update below is a real DIR_UPDATE
            # message to the shard — never a cross-site dict mutation
            owner_site.attraction_memory.objects.pop(addr, None)
            owner_site.attraction_memory._versions.pop(addr, None)
        self.objects[addr] = value
        self._versions[addr] = version + 1
        shared.objects[addr.pack()] = (self.local_id, value, version + 1)
        self.stats.inc("migrations_in")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "mem_migrate_in",
                    addr.pack(), owner)
        self._publish_dir(addr)

    # ------------------------------------------------------------------
    # memory objects — message protocol (live kernel path)

    def live_read(self, addr: GlobalAddress, cb,  # noqa: ANN001
                  _attempt: int = 0) -> None:
        """Resolve a read via the COMA message protocol (blocking contexts).

        ``cb(value)`` on success; ``cb(None, error)`` on failure.  The
        read resolves through the address's directory shard (at most one
        hop), then fetches from the owner; the owner ships the object with
        ownership and the new owner publishes the DIR_UPDATE.
        """
        if addr in self.objects:
            self.stats.inc("reads_local")
            cb(self.objects[addr])
            return
        cm = self.site.cluster_manager
        target = cm.dir_site_for(addr)
        if target == self.local_id:
            owner = self.dir_owner(addr)
            if owner is None or owner == self.local_id:
                # no entry yet: an ownership handoff or shard rebalance is
                # in flight — re-resolve after a short delay, bounded
                self._read_unresolved(addr, cb, _attempt)
                return
            target = owner
        self._live_read_at(addr, target, cb, attempt=_attempt)

    def _read_unresolved(self, addr: GlobalAddress, cb,  # noqa: ANN001
                         attempt: int) -> None:
        if attempt >= self._READ_ATTEMPTS:
            cb(None, MemoryFault(f"read of unknown address {addr}"))
            return
        self.stats.inc("dir_miss_retries")
        delay = 4.0 * self.config.network.latency * (attempt + 1)
        self.kernel.call_later(
            delay, lambda: self.live_read(addr, cb, _attempt=attempt + 1))

    def _live_read_at(self, addr: GlobalAddress, target: int, cb,  # noqa: ANN001
                      attempt: int) -> None:
        if attempt > self._READ_ATTEMPTS:
            cb(None, MemoryFault(f"read of {addr}: too many redirects"))
            return
        msg = SDMessage(
            type=MsgType.MEM_READ,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=target, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"addr": addr, "migrate": True},
        )
        self.stats.inc("reads_remote")

        def on_reply(reply: SDMessage) -> None:
            if reply.type == MsgType.MEM_READ_REPLY:
                value = reply.payload["value"]
                if reply.payload.get("owned"):
                    self._adopt_remote_object(
                        addr, value, reply.payload.get("version", 0),
                        reply.src_site)
                cb(value)
            elif reply.type == MsgType.MEM_LOCATION:
                self._live_read_at(addr, reply.payload["owner"], cb,
                                   attempt + 1)
            else:
                # MEM_NOT_FOUND: the owner-side handoff window — the old
                # owner already shipped the object, the new owner's
                # DIR_UPDATE is still in flight.  Re-resolve, bounded.
                self._read_unresolved(addr, cb, attempt)

        ok = self.site.message_manager.request(
            msg, on_reply, timeout=2.0,
            on_timeout=lambda: self._read_unresolved(addr, cb, attempt))
        if not ok:
            # target unreachable (crashed shard/owner): the ring re-hashes
            # once membership catches up — re-resolve instead of failing
            self._read_unresolved(addr, cb, attempt)

    def _adopt_remote_object(self, addr: GlobalAddress, value: Any,
                             version: int, src: int) -> None:
        """Ownership arrived with a MEM_READ_REPLY: own it, bump the
        migration version, and publish the new location."""
        self.objects[addr] = value
        self._versions[addr] = version + 1
        shared = getattr(self.kernel, "shared", None)
        if shared is not None:
            shared.objects[addr.pack()] = (self.local_id, value, version + 1)
        self.stats.inc("migrations_in")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "mem_migrate_in",
                    addr.pack(), src)
        self._publish_dir(addr)

    def apply_write(self, addr: GlobalAddress, value: Any) -> float:
        """Mode-dispatched write: sim shortcut or live message protocol."""
        if self.kernel.mode == "sim":
            return self.sim_write(addr, value)
        if addr in self.objects:
            self.objects[addr] = value
            self.stats.inc("writes_local")
            return 0.0
        target = self.site.cluster_manager.dir_site_for(addr)
        self.site.message_manager.send(SDMessage(
            type=MsgType.MEM_WRITE,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=target, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"addr": addr, "value": value},
        ))
        self.stats.inc("writes_sent")
        return 0.0

    def handle(self, msg: SDMessage) -> None:
        if msg.type == MsgType.APPLY_RESULT:
            payload = msg.payload
            if self._stale_epoch(payload):
                # in-flight result from a rolled-back epoch: the replay
                # re-produces it, and applying the stale copy would
                # contaminate a restored frame with pre-recovery state
                # (e.g. frame addresses that will never be allocated again)
                self.stats.inc("stale_results_dropped")
                return
            self._apply_local(payload["addr"], payload["slot"],
                              payload["value"], msg.program)
        elif msg.type == MsgType.FRAME_TRANSFER:
            self._on_frame_transfer(msg)
        elif msg.type == MsgType.MEM_READ:
            self._on_mem_read(msg)
        elif msg.type == MsgType.MEM_WRITE:
            self._on_mem_write(msg)
        elif msg.type == MsgType.DIR_UPDATE:
            self._on_dir_update(msg)
        elif msg.type == MsgType.DIR_ACK:
            # late ack after a timed-out update: the retry re-published
            self.stats.inc("late_dir_acks")
        elif msg.type == MsgType.MEM_READ_REPLY:
            # late reply after a timed-out read: if it shipped ownership,
            # adopt the object — dropping it would lose data
            if msg.payload.get("owned"):
                self._adopt_remote_object(
                    msg.payload["addr"], msg.payload["value"],
                    msg.payload.get("version", 0), msg.src_site)
        elif msg.type in (MsgType.MEM_LOCATION, MsgType.MEM_NOT_FOUND):
            self.stats.inc("late_replies_ignored")
        elif msg.type == MsgType.MEM_OBJECT:
            self._on_bulk_adopt(msg)
        else:
            super().handle(msg)

    def _stale_epoch(self, payload: dict) -> bool:
        """True when a dataflow payload was stamped before the last rollback
        recovery.  Stale deliveries are dropped — the checkpoint already
        restored their content, and the replay re-sends anything in flight.
        Unstamped payloads (relocation, pre-epoch senders) pass through.
        """
        return payload.get("epoch", self.site.epoch) < self.site.epoch

    def _on_frame_transfer(self, msg: SDMessage) -> None:
        if self._stale_epoch(msg.payload):
            self.stats.inc("stale_frames_dropped")
            return
        for info_wire in msg.payload.get("program_infos", ()):
            self.site.program_manager.learn_program_wire(info_wire)
        info_wire = msg.payload.get("program_info")
        if info_wire is not None:
            self.site.program_manager.learn_program_wire(info_wire)
        # proactive pushes batch several frames into one transfer;
        # relocation (sign-off) still sends one frame per message
        wires = msg.payload.get("frames")
        if wires is None:
            wires = [msg.payload["frame"]]
        tr = self.tracer
        for wire in wires:
            frame = Microframe.from_wire(wire)
            self.stats.inc("frames_adopted")
            if tr is not None:
                tr.emit(self.kernel.now, self.local_id, "frame_adopted",
                        frame.frame_id.pack(), msg.src_site)
            self.register_frame(frame)

    def _on_mem_read(self, msg: SDMessage) -> None:
        addr = msg.payload["addr"]
        migrate = msg.payload.get("migrate", True)
        if addr in self.objects:
            value = self.objects[addr]
            version = self._versions.get(addr, 0)
            if migrate:
                # ownership ships with the reply; the *requester* publishes
                # the DIR_UPDATE once it has adopted the object
                del self.objects[addr]
                self._versions.pop(addr, None)
            self.site.message_manager.send(make_reply(
                msg, MsgType.MEM_READ_REPLY,
                {"addr": addr, "value": value, "owned": migrate,
                 "version": version}))
            self.stats.inc("reads_served")
            return
        owner = self.dir_owner(addr)
        if owner is not None and owner != self.local_id:
            self.site.message_manager.send(make_reply(
                msg, MsgType.MEM_LOCATION, {"addr": addr, "owner": owner}))
            self.stats.inc("redirects_served")
            return
        self.site.message_manager.send(make_reply(
            msg, MsgType.MEM_NOT_FOUND, {"addr": addr}))

    def _on_mem_write(self, msg: SDMessage) -> None:
        addr = msg.payload["addr"]
        if addr in self.objects:
            self.objects[addr] = msg.payload["value"]
            shared = getattr(self.kernel, "shared", None)
            if shared is not None:
                shared.objects[addr.pack()] = (
                    self.local_id, msg.payload["value"],
                    self._versions.get(addr, 0))
            self.stats.inc("writes_served")
            return
        hops = int(msg.payload.get("hops", 0))
        if hops >= 3:
            # the owner is moving faster than the directory converges;
            # dropping beats forwarding forever
            self.stats.inc("writes_undeliverable")
            return
        owner = self.dir_owner(addr)
        if owner is None:
            dir_site = self.site.cluster_manager.dir_site_for(addr)
            owner = dir_site if dir_site != self.local_id else None
        if owner is None or owner == self.local_id:
            self.stats.inc("writes_undeliverable")
            return
        payload = dict(msg.payload)
        payload["hops"] = hops + 1
        self.site.message_manager.send(SDMessage(
            type=MsgType.MEM_WRITE,
            src_site=self.local_id,
            src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=owner, dst_manager=ManagerId.ATTRACTION_MEMORY,
            program=msg.program,
            payload=payload,
        ))

    # ------------------------------------------------------------------
    # relocation (orderly sign-off, §3.4) and adoption

    def export_state(self) -> dict:
        """Serialize everything this site holds, for relocation to an heir.

        "All microframes and the local part of the global memory have to be
        relocated to other sites before shutdown" (§3.4).
        """
        sched_frames = self.site.scheduling_manager.export_frames()
        return {
            "frames": [f.to_wire() for f in self.frames.values()]
                      + [f.to_wire() for f in sched_frames],
            "objects": [(addr, value, self._versions.get(addr, 0))
                        for addr, value in self.objects.items()],
            "dir": [(addr, owner, version, epoch)
                    for addr, (owner, version, epoch)
                    in self.dir_entries.items()],
            "pending": [(addr, slot, value, self._pending_programs.get(addr, -1))
                        for addr, pairs in self._pending_results.items()
                        for slot, value in pairs],
            "programs": self.site.program_manager.known_programs_wire(),
        }

    def export_checkpoint(self) -> dict:
        """Non-draining snapshot for a checkpoint wave (queues stay put)."""
        sched_frames = self.site.scheduling_manager.snapshot_frames()
        return {
            "frames": [f.to_wire() for f in self.frames.values()]
                      + [f.to_wire() for f in sched_frames],
            "objects": [(addr, value, self._versions.get(addr, 0))
                        for addr, value in self.objects.items()],
            "dir": [(addr, owner, version, epoch)
                    for addr, (owner, version, epoch)
                    in self.dir_entries.items()],
            "pending": [(addr, slot, value, self._pending_programs.get(addr, -1))
                        for addr, pairs in self._pending_results.items()
                        for slot, value in pairs],
            "programs": self.site.program_manager.known_programs_wire(),
        }

    def reset_program_state(self) -> None:
        """Drop all dataflow state prior to recovery adoption.

        Memory objects and directory entries are cleared too: the snapshot
        shards re-own every checkpointed object, and a survivor keeping a
        post-checkpoint copy would fork ownership with the restored one
        (two sites holding the same attraction line).  Post-checkpoint
        allocations roll back with the frames that made them.
        """
        self.frames.clear()
        self._pending_results.clear()
        self._pending_programs.clear()
        shared = getattr(self.kernel, "shared", None)
        if shared is not None:
            for addr in self.objects:
                entry = shared.objects.get(addr.pack())
                if entry is not None and entry[0] == self.local_id:
                    del shared.objects[addr.pack()]
        self.objects.clear()
        self._versions.clear()
        self.dir_entries.clear()

    def send_state_to_heir(self, heir: int) -> None:
        self.site.message_manager.send(SDMessage(
            type=MsgType.MEM_OBJECT,
            src_site=self.local_id, src_manager=ManagerId.ATTRACTION_MEMORY,
            dst_site=heir, dst_manager=ManagerId.ATTRACTION_MEMORY,
            payload={"state": self.export_state(), "from": self.local_id},
        ))

    def _on_bulk_adopt(self, msg: SDMessage) -> None:
        self.adopt_state(msg.payload["state"])
        self.stats.inc("relocations_adopted")

    def adopt_state(self, state: dict) -> None:
        """Adopt a departed/recovered site's frames, objects, directory.

        Every adopted object is re-owned here with a bumped version and
        republished to its *current* ring shard; adopted directory entries
        whose shard is no longer this site are forwarded — this is how the
        directory is rehomed by the existing recovery/relocation waves.
        """
        self.site.program_manager.learn_programs_wire(state.get("programs", []))
        shared = getattr(self.kernel, "shared", None)
        for addr, value, version in state.get("objects", []):
            self.objects[addr] = value
            self._versions[addr] = version + 1
            if shared is not None:
                shared.objects[addr.pack()] = (self.local_id, value,
                                               version + 1)
            self._publish_dir(addr)
        cm = self.site.cluster_manager
        for addr, owner, version, epoch in state.get("dir", []):
            if addr in self.objects:
                continue  # re-owned above; a fresh entry was published
            entry_epoch = max(epoch, self.site.epoch)
            target = cm.dir_site_for(addr)
            if target == self.local_id:
                self._apply_dir_entry(addr, owner, version, entry_epoch)
            else:
                self._send_dir_update(addr, owner, version, target,
                                      epoch=entry_epoch)
        for addr, slot, value, program in state.get("pending", []):
            self._pending_results.setdefault(addr, []).append((slot, value))
            if program >= 0:
                self._pending_programs[addr] = program
        for wire in state.get("frames", []):
            frame = Microframe.from_wire(wire)
            if self.site.program_manager.is_active(frame.program):
                self.register_frame(frame)

    # ------------------------------------------------------------------
    def status(self) -> dict:
        base = super().status()
        base["incomplete_frames"] = len(self.frames)
        base["objects_owned"] = len(self.objects)
        base["dir_entries"] = len(self.dir_entries)
        return base
