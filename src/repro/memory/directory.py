"""Consistent-hash shard map for the attraction-memory directory.

Every :class:`GlobalAddress` hashes onto a ring of virtual points; the
site owning the first point at or after the address hash is the address's
*directory shard* — the single place the cluster asks "who owns this
object right now?".  Consistent hashing keeps the mapping stable under
membership churn: adding or removing one site remaps only the keys whose
ring successor changed (~1/n of them), so directory rebalancing after a
join or crash is proportional to the churn, never to the cluster.

Hashing uses crc32 over packed integers — NOT Python's ``hash()``, whose
per-process salting would give every site a different ring.
"""

from __future__ import annotations

import struct
import zlib
from bisect import bisect_left, insort
from typing import Iterable, List, Optional, Set, Tuple

from repro.common.ids import GlobalAddress

#: virtual points per site on the ring — enough to keep shard shares
#: within a few percent of fair up to ~1024 sites while membership
#: updates stay cheap (VNODES inserts/removes per change)
VNODES = 16

_KEY = struct.Struct(">q")
_POINT = struct.Struct(">qi")


def _key_hash(packed: int) -> int:
    return zlib.crc32(_KEY.pack(packed))


def _site_point(site: int, vnode: int) -> int:
    return zlib.crc32(_POINT.pack(site, vnode))


#: ring points are pure functions of (site, vnode), and every site's
#: ShardMap computes the same ones — memoize per process so an n-site
#: join wave costs n·VNODES hashes, not n²·VNODES
_POINT_CACHE: dict = {}


def _site_points(site: int) -> Tuple[int, ...]:
    points = _POINT_CACHE.get(site)
    if points is None:
        points = tuple(_site_point(site, vnode) for vnode in range(VNODES))
        _POINT_CACHE[site] = points
    return points


class ShardMap:
    """A consistent-hash ring over the alive cluster membership.

    Ring maintenance is batched: :meth:`add_site` only queues the site,
    and the sorted ring is (re)built lazily at the next lookup.  A join
    wave of n sites with no interleaved lookups therefore costs one
    O(n·VNODES·log) sort instead of n·VNODES insorts into an
    ever-growing list (O(n²·VNODES) memmoves — the profiled top cost of
    1024-site cluster formation).  Steady-state churn (one join between
    lookups) keeps the old insort path, which is cheaper than a rebuild.
    """

    __slots__ = ("_ring", "_members", "_pending")

    def __init__(self, sites: Iterable[int] = ()) -> None:
        #: sorted ring of (point hash, site id); ties break on site id,
        #: which is deterministic across every site's view
        self._ring: List[Tuple[int, int]] = []
        self._members: Set[int] = set()
        #: members queued by add_site but not yet folded into the ring
        self._pending: Set[int] = set()
        for site in sites:
            self.add_site(site)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, site: int) -> bool:
        return site in self._members

    def members(self) -> Set[int]:
        return set(self._members)

    def add_site(self, site: int) -> None:
        if site in self._members:
            return
        self._members.add(site)
        self._pending.add(site)

    def remove_site(self, site: int) -> None:
        if site not in self._members:
            return
        self._members.discard(site)
        if site in self._pending:
            self._pending.discard(site)
        else:
            self._ring = [point for point in self._ring if point[1] != site]

    def _flush_pending(self) -> None:
        pending = self._pending
        self._pending = set()
        if len(pending) <= 2:
            # steady-state churn: a couple of insorts beat a full sort
            for site in pending:
                for point in _site_points(site):
                    insort(self._ring, (point, site))
            return
        self._ring.extend((point, site) for site in sorted(pending)
                          for point in _site_points(site))
        self._ring.sort()

    def shard_for(self, addr: GlobalAddress) -> Optional[int]:
        return self.shard_for_packed(addr.pack())

    def shard_for_packed(self, packed: int) -> Optional[int]:
        if self._pending:
            self._flush_pending()
        ring = self._ring
        if not ring:
            return None
        index = bisect_left(ring, (_key_hash(packed), -1))
        if index >= len(ring):
            index = 0  # wrap past the highest point
        return ring[index][1]
