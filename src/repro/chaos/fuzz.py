"""The chaos-fuzz harness: seeded plan → run → audit → shrink.

One entry point per layer:

* :func:`run_plan` — execute a single :class:`FaultPlan` against the
  standard chaos workload and return the audited result (violations,
  journal fingerprint).  Bit-deterministic: the same plan always yields
  the same fingerprint.
* :func:`verify_determinism` — run a plan twice, compare fingerprints.
* :func:`fuzz` — sweep seeds, shrink every failing plan to a minimal
  repro via :func:`shrink_plan` (sound because replay is deterministic).

Shrunk failures are meant to be committed to ``tests/chaos_corpus/`` so
the bug they flushed out stays fixed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.apps import (build_memstress_program, build_primes_program,
                        build_treesum_program, first_n_primes,
                        memstress_expected, treesum_expected)
from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.plan import FaultPlan, random_plan, shrink_plan
from repro.common.config import (CheckpointConfig, ClusterConfig, CostModel,
                                 SchedulingConfig, SDVMConfig,
                                 TelemetryConfig)
from repro.common.errors import SDVMError
from repro.site.simcluster import SimCluster

#: the standard chaos workload: primes(p, width) with compute scaled up so
#: the program is still running when mid-plan faults fire
WORKLOAD = (40, 6, 800.0, 8000.0)

#: plan.workload -> (program builder, entry args, expected-results thunk).
#: "memstress" allocates shared objects and read-migrates them between
#: sites, exercising the sharded directory under the plan's faults.
WORKLOADS = {
    "primes": (build_primes_program, WORKLOAD,
               lambda: [first_n_primes(WORKLOAD[0])]),
    "memstress": (build_memstress_program, (48, 60000.0),
                  lambda: [memstress_expected(48)]),
    # heavy leaves: even spread over hundreds of sites, the work phase
    # outlives crash *detection* (heartbeat timeout), so a mid-run crash
    # in a big-cluster plan actually exercises rollback recovery
    "treesum": (build_treesum_program, (2048, 20000.0),
                lambda: [treesum_expected(2048)]),
}

#: extra virtual time after the last fault/result for in-flight recovery
#: control (retries, DONEs) to settle before invariants are audited
DRAIN_SECONDS = 1.0


def chaos_config(plan: FaultPlan) -> SDVMConfig:
    """The cluster configuration every chaos run uses.

    Fast heartbeats keep crash detection well under a second; the
    partition windows the generator emits stay far below the heartbeat
    timeout, so a healed partition never escalates to mutual crash
    suspicion.  Tracing is always on — the journal is both the
    determinism witness and the monotonicity evidence.

    Plans bigger than the 16-peer sample window switch to ring-successor
    heartbeats (full mesh is O(sites^2) per beat — a 256-site plan would
    spend its whole event budget on liveness) and turn the load gossip
    on, since blind begging is the very O(sites) regime the hot-peer
    cache exists to avoid.  Small plans keep the historical config
    bit-for-bit.

    The flight recorder is always armed: ring appends are pure
    observation (the recorder tees into the same Tracer, so journal
    fingerprints are unchanged), and a crashed site's final moments are
    then available in every chaos postmortem for free.  The metrics
    sampler stays *off* — its timer events would change the replayed
    event interleaving.
    """
    big = plan.nsites > 16
    return SDVMConfig(
        seed=plan.seed,
        trace=True,
        telemetry=TelemetryConfig(flight_recorder=True),
        cost=CostModel(compile_fixed_cost=1e-4),
        scheduling=SchedulingConfig(ready_target=1, keep_local_min=0,
                                    gossip_interval=1e-2 if big else 0.0,
                                    gossip_staleness=5e-2 if big else 5e-3,
                                    replicate_frac=plan.replicate_frac),
        cluster=ClusterConfig(heartbeats_enabled=True,
                              heartbeat_interval=0.05,
                              heartbeat_timeout=0.25,
                              heartbeat_fanout=3 if big else 0),
        checkpoint=CheckpointConfig(enabled=True,
                                    interval=plan.ckpt_interval),
    )


@dataclass
class ChaosRunResult:
    plan: FaultPlan
    violations: List[Violation]
    fingerprint: str
    cluster: object = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return not self.violations


def journal_fingerprint(tracer) -> str:  # noqa: ANN001
    """Stable digest of the raw trace journal (the determinism witness)."""
    if tracer is None:
        return ""
    digest = hashlib.sha256()
    for entry in tracer._raw:
        digest.update(repr(entry).encode("utf-8"))
    return digest.hexdigest()


def _last_fault_time(plan: FaultPlan) -> float:
    """Latest instant any scheduled fault can still be acting.

    Point faults (crash, sign_off) carry ``at``; window faults
    (partition, link, slow, **corrupt**) carry ``start``/``end``.  All
    three are read so no fault kind — present or future — can be
    scheduled past the drain horizon: a late corruption window that
    outlived this bound would flip results *after* the audit and the
    invariant checker would certify a run it never saw the end of.
    """
    latest = 0.0
    for fault in plan.faults:
        latest = max(latest, getattr(fault, "at", 0.0),
                     getattr(fault, "start", 0.0),
                     getattr(fault, "end", 0.0))
    return latest


def run_plan(plan: FaultPlan,
             progress_timeout: float = 30.0,
             telemetry: Optional[TelemetryConfig] = None) -> ChaosRunResult:
    """Execute one fault plan against the standard workload and audit it.

    ``telemetry`` overrides the default chaos telemetry (flight recorder
    only) — e.g. to turn the metrics sampler on when a test wants the
    health detectors watching the run.  Note the sampler's timer events
    shift the interleaving, so fingerprints are only comparable between
    runs that use the *same* telemetry settings.
    """
    plan.validate()
    workload = WORKLOADS.get(plan.workload)
    if workload is None:
        raise SDVMError(f"unknown chaos workload {plan.workload!r} "
                        f"(known: {sorted(WORKLOADS)})")
    build, args, expected = workload
    config = chaos_config(plan)
    if telemetry is not None:
        config = config.with_(telemetry=telemetry)
    cluster = SimCluster(nsites=plan.nsites, config=config)
    cluster.apply_chaos(plan)
    cluster.submit(build(), args=args, site_index=plan.submit_site)
    violations: List[Violation] = []
    try:
        cluster.run(until=plan.horizon, raise_on_failure=False,
                    progress_timeout=progress_timeout)
    except SDVMError as exc:
        violations.append(Violation("progress", str(exc)))
    # drain: late faults and recovery retries settle before the audit
    drain_until = max(cluster.sim.now, _last_fault_time(plan)) + DRAIN_SECONDS
    cluster.sim.run(until=drain_until)
    checker = InvariantChecker(cluster,
                               expect_complete=plan.expect_complete,
                               expected_results=expected())
    violations.extend(checker.check())
    return ChaosRunResult(plan=plan, violations=violations,
                          fingerprint=journal_fingerprint(cluster.tracer),
                          cluster=cluster)


def verify_determinism(plan: FaultPlan) -> Tuple[str, str]:
    """Run ``plan`` twice; identical fingerprints prove reproducibility."""
    return run_plan(plan).fingerprint, run_plan(plan).fingerprint


@dataclass
class FuzzFailure:
    seed: int
    plan: FaultPlan
    shrunk: FaultPlan
    violations: List[Violation]


def fuzz(seeds: Iterable[int], nsites: int = 4, shrink: bool = True,
         report: Optional[Callable[[str], None]] = None,
         corrupt: bool = False) -> List[FuzzFailure]:
    """Run one seeded random plan per seed; shrink and collect failures.

    ``corrupt`` adds a silent-data-corruption window to every generated
    plan (with full replication armed), so the sweep also exercises the
    detect/quarantine/tie-break path; shrinking stays sound because
    replay is deterministic — dropping the corruption fault makes the
    failure vanish, so a corruption-induced repro keeps its corruption.
    """
    say = report or (lambda line: None)
    failures: List[FuzzFailure] = []
    for seed in seeds:
        plan = random_plan(seed, nsites=nsites, corrupt=corrupt)
        result = run_plan(plan)
        if result.ok:
            say(f"seed {seed}: ok ({len(plan.faults)} faults)")
            continue
        say(f"seed {seed}: {len(result.violations)} violation(s); "
            f"shrinking...")

        def still_fails(candidate: FaultPlan) -> bool:
            return not run_plan(candidate).ok

        shrunk = (shrink_plan(plan, still_fails) if shrink else plan)
        failures.append(FuzzFailure(seed=seed, plan=plan, shrunk=shrunk,
                                    violations=result.violations))
        for violation in result.violations:
            say(f"  {violation}")
    return failures
