"""Fault plans: typed, serializable schedules of injected failures.

A :class:`FaultPlan` is the unit of chaos testing — a cluster shape plus a
list of faults pinned to exact virtual times.  Plans round-trip through
JSON so failing schedules found by the fuzzer can be shrunk to minimal
repros and committed as a regression corpus (``tests/chaos_corpus/``).

Every source of randomness used while *generating* a plan lives in a
dedicated ``random.Random(seed)``; injecting the plan draws from the chaos
engine's own RNG stream (never the simulator's), so the same seed + plan
always replays the exact same run.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.common.errors import SDVMError


@dataclass(frozen=True)
class CrashFault:
    """Abrupt site death at ``at`` (no relocation, no goodbye)."""

    at: float
    site: int
    kind: str = "crash"


@dataclass(frozen=True)
class SignOffFault:
    """Orderly departure at ``at`` (state relocates to an heir)."""

    at: float
    site: int
    kind: str = "sign_off"


@dataclass(frozen=True)
class PartitionFault:
    """Bidirectional partition between ``group`` and everyone else.

    All traffic crossing the cut is dropped during [start, end); the
    partition heals itself at ``end``.  Keep the window shorter than the
    heartbeat timeout unless the plan *wants* mutual crash suspicion.
    """

    start: float
    end: float
    group: Tuple[int, ...]
    kind: str = "partition"


@dataclass(frozen=True)
class LinkFault:
    """A window of message mangling on matching links.

    ``src``/``dst`` select one direction (-1 matches any site), so a
    single fault can target one link, one site's ingress/egress, or the
    whole fabric.  ``drop``/``dup``/``reorder`` are per-message
    probabilities; ``delay`` is a fixed extra delivery delay in seconds.
    """

    start: float
    end: float
    src: int = -1
    dst: int = -1
    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    kind: str = "link"


@dataclass(frozen=True)
class SlowFault:
    """CPU slowdown: site runs ``factor``x slower during [start, end)."""

    start: float
    end: float
    site: int
    factor: float = 4.0
    kind: str = "slow"


@dataclass(frozen=True)
class CorruptFault:
    """Silent data corruption during [start, end).

    ``mode`` selects the injection point: ``"result"`` bit-flips a value
    a microthread produced, at the completion-time hook in
    ``proc/sim_manager.py`` (before the microframe's effects dispatch);
    ``"param"`` bit-flips a microframe parameter *in flight* by mangling
    an APPLY_RESULT payload inside ``SimNetwork.send``.  ``site`` is the
    executing site (result mode) or the message destination (param mode);
    -1 matches any site.  ``prob`` is the per-result / per-message
    corruption probability, ``flips`` the number of bits flipped.
    """

    start: float
    end: float
    site: int = -1
    mode: str = "result"
    prob: float = 1.0
    flips: int = 1
    kind: str = "corrupt"


Fault = object  # union of the six dataclasses above

_FAULT_TYPES: Dict[str, Type] = {
    "crash": CrashFault,
    "sign_off": SignOffFault,
    "partition": PartitionFault,
    "link": LinkFault,
    "slow": SlowFault,
    "corrupt": CorruptFault,
}


def _validate_fault(f: Fault) -> None:
    """Structural checks shared by JSON loading and plan validation."""
    start = getattr(f, "start", None)
    end = getattr(f, "end", None)
    if start is not None and end is not None and not start < end:
        raise SDVMError(
            f"{f.kind} fault window must have start < end, got "
            f"[{start}, {end})")
    if isinstance(f, CorruptFault):
        if f.mode not in ("result", "param"):
            raise SDVMError(
                f"corrupt fault mode must be 'result' or 'param', "
                f"got {f.mode!r}")
        if not 0.0 < f.prob <= 1.0:
            raise SDVMError(
                f"corrupt fault prob must be in (0, 1], got {f.prob}")
        if f.flips < 1:
            raise SDVMError(
                f"corrupt fault flips must be >= 1, got {f.flips}")


def fault_from_dict(data: dict) -> Fault:
    kind = data.get("kind")
    cls = _FAULT_TYPES.get(kind)
    if cls is None:
        raise SDVMError(f"unknown fault kind {kind!r}")
    known = {f.name for f in fields(cls)}
    unexpected = sorted(set(data) - known)
    if unexpected:
        raise SDVMError(
            f"unexpected field {unexpected[0]!r} in {kind} fault "
            f"(known fields: {', '.join(sorted(known - {'kind'}))})")
    kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
    if cls is PartitionFault:
        kwargs["group"] = tuple(kwargs.get("group", ()))
    fault = cls(**kwargs)
    _validate_fault(fault)
    return fault


@dataclass
class FaultPlan:
    """One reproducible chaos scenario: cluster shape + fault schedule."""

    seed: int = 0
    nsites: int = 4
    #: site index the workload is submitted at — the frontend must stay up
    submit_site: int = 0
    #: checkpoint wave interval for the run
    ckpt_interval: float = 0.2
    #: virtual-time budget for the run (progress timeout handles hangs)
    horizon: float = 60.0
    #: whether the plan expects the program to finish with a correct
    #: result (False: completion-or-declared-failure is enough)
    expect_complete: bool = True
    #: workload to run under the faults (see chaos.fuzz.WORKLOADS);
    #: "memstress" exercises the sharded attraction-memory directory
    workload: str = "primes"
    #: fraction of microthreads executed twice with result comparison
    #: (the SDC defense; 0.0 keeps the execution path byte-identical)
    replicate_frac: float = 0.0
    name: str = ""
    faults: List[Fault] = field(default_factory=list)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not 0.0 <= self.replicate_frac <= 1.0:
            raise SDVMError(
                f"replicate_frac must be in [0, 1], "
                f"got {self.replicate_frac}")
        for f in self.faults:
            _validate_fault(f)
            for attr in ("site", "src", "dst"):
                idx = getattr(f, attr, None)
                if idx is not None and idx >= self.nsites:
                    raise SDVMError(
                        f"fault {f} names site {idx} but the plan has "
                        f"only {self.nsites} sites")
            if isinstance(f, PartitionFault):
                if any(i >= self.nsites for i in f.group):
                    raise SDVMError(f"partition group {f.group} exceeds "
                                    f"nsites={self.nsites}")

    def crash_count(self) -> int:
        return sum(1 for f in self.faults
                   if isinstance(f, (CrashFault, SignOffFault)))

    # ------------------------------------------------------------------
    # JSON round-trip (the corpus format)

    def to_dict(self) -> dict:
        doc = {"schema": "sdvm-chaos/1",
               "seed": self.seed, "nsites": self.nsites,
               "submit_site": self.submit_site,
               "ckpt_interval": self.ckpt_interval,
               "horizon": self.horizon,
               "expect_complete": self.expect_complete,
               "workload": self.workload,
               "replicate_frac": self.replicate_frac,
               "name": self.name,
               "faults": [asdict(f) for f in self.faults]}
        for f in doc["faults"]:
            if "group" in f:
                f["group"] = list(f["group"])
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        schema = doc.get("schema", "sdvm-chaos/1")
        if schema != "sdvm-chaos/1":
            raise SDVMError(f"unsupported chaos plan schema {schema!r}")
        plan = cls(seed=doc.get("seed", 0), nsites=doc.get("nsites", 4),
                   submit_site=doc.get("submit_site", 0),
                   ckpt_interval=doc.get("ckpt_interval", 0.2),
                   horizon=doc.get("horizon", 60.0),
                   expect_complete=doc.get("expect_complete", True),
                   workload=doc.get("workload", "primes"),
                   replicate_frac=doc.get("replicate_frac", 0.0),
                   name=doc.get("name", ""),
                   faults=[fault_from_dict(f)
                           for f in doc.get("faults", [])])
        plan.validate()
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def replace_faults(self, faults: List[Fault]) -> "FaultPlan":
        return FaultPlan(seed=self.seed, nsites=self.nsites,
                         submit_site=self.submit_site,
                         ckpt_interval=self.ckpt_interval,
                         horizon=self.horizon,
                         expect_complete=self.expect_complete,
                         workload=self.workload,
                         replicate_frac=self.replicate_frac,
                         name=self.name, faults=list(faults))


# ---------------------------------------------------------------------------
# seeded plan generation (the fuzzer's front half)

#: crashes are scheduled no earlier than this many checkpoint intervals in,
#: so at least one wave has committed and recovery (not declared failure)
#: is the expected outcome
_MIN_CRASH_WAVES = 3.0


def random_plan(seed: int, nsites: int = 4,
                ckpt_interval: float = 0.2,
                corrupt: bool = False) -> FaultPlan:
    """Generate one seeded random fault plan.

    The generator keeps plans *survivable by construction*: the submit
    site never dies (the frontend holds the program handle), at least one
    site stays alive, partitions heal well inside the heartbeat timeout,
    and crashes land only after a checkpoint has plausibly committed —
    so ``expect_complete`` is True and any non-completion is a real bug.

    ``corrupt`` additionally draws one site-targeted result-corruption
    window and turns full replication on, so the defense must detect and
    outvote every flip (the corrupt draws happen *after* the base fault
    loop — ``corrupt=False`` plans stay bit-identical per seed).
    """
    rng = random.Random(seed)
    plan = FaultPlan(seed=seed, nsites=nsites, submit_site=0,
                     ckpt_interval=ckpt_interval, name=f"fuzz-{seed}")
    killable = [i for i in range(nsites) if i != plan.submit_site]
    rng.shuffle(killable)
    # keep one non-frontend site untouched as a guaranteed survivor
    killable = killable[:max(0, len(killable) - 1)]

    faults: List[Fault] = []
    t_min = _MIN_CRASH_WAVES * ckpt_interval
    for _ in range(rng.randint(1, 3)):
        roll = rng.random()
        if roll < 0.40 and killable:
            site = killable.pop()
            faults.append(CrashFault(at=round(
                t_min + rng.random() * 1.5, 4), site=site))
        elif roll < 0.55 and killable:
            site = killable.pop()
            faults.append(SignOffFault(at=round(
                t_min + rng.random() * 1.5, 4), site=site))
        elif roll < 0.75:
            start = round(0.3 + rng.random() * 1.2, 4)
            # heal inside any sane heartbeat timeout
            duration = round(0.01 + rng.random() * 0.04, 4)
            group = (rng.randrange(nsites),)
            faults.append(PartitionFault(start=start,
                                         end=round(start + duration, 4),
                                         group=group))
        elif roll < 0.90:
            start = round(0.3 + rng.random() * 1.2, 4)
            duration = round(0.05 + rng.random() * 0.3, 4)
            faults.append(LinkFault(start=start,
                                    end=round(start + duration, 4),
                                    dup=round(0.1 + rng.random() * 0.4, 3),
                                    delay=round(rng.random() * 2e-3, 6),
                                    reorder=round(rng.random() * 0.3, 3)))
        else:
            start = round(0.3 + rng.random() * 1.0, 4)
            faults.append(SlowFault(start=start,
                                    end=round(start + 0.2
                                              + rng.random() * 0.6, 4),
                                    site=rng.randrange(nsites),
                                    factor=round(2.0 + rng.random() * 6.0,
                                                 2)))
    if corrupt:
        # site-targeted: site=-1 would corrupt primary and replica
        # identically, which no amount of comparison can detect
        start = round(0.1 + rng.random() * 1.0, 4)
        faults.append(CorruptFault(
            start=start,
            end=round(start + 0.3 + rng.random() * 1.2, 4),
            site=rng.randrange(nsites),
            mode="result",
            prob=round(0.3 + rng.random() * 0.7, 3)))
        plan.replicate_frac = 1.0
    faults.sort(key=lambda f: (getattr(f, "at", getattr(f, "start", 0.0)),
                               f.kind))
    plan.faults = faults
    plan.validate()
    return plan


# ---------------------------------------------------------------------------
# plan shrinking (the fuzzer's back half)

def shrink_plan(plan: FaultPlan,
                still_fails: Callable[[FaultPlan], bool],
                max_rounds: int = 8) -> FaultPlan:
    """Greedy delta-debugging: drop faults while the failure reproduces.

    ``still_fails`` re-runs a candidate plan and reports whether the
    original failure is still observed.  Deterministic replay makes this
    sound: a candidate either reproduces or it does not, with no flake in
    between.  Returns the smallest failing plan found.
    """
    current = plan
    for _ in range(max_rounds):
        shrunk = False
        for index in range(len(current.faults)):
            candidate = current.replace_faults(
                current.faults[:index] + current.faults[index + 1:])
            if candidate.faults != current.faults and still_fails(candidate):
                current = candidate
                shrunk = True
                break
        if not shrunk:
            break
    return current
