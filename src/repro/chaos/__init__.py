"""Deterministic fault injection ("chaos") for the sim kernel.

Everything here is sim-only: fault plans are schedules of crashes,
sign-offs, partitions, link mangling windows, and slowdowns pinned to
exact virtual times, so a run is bit-reproducible from its plan + seed.
See DESIGN.md, "Fault injection & invariants".
"""

from repro.chaos.engine import ChaosController
from repro.chaos.fuzz import (ChaosRunResult, FuzzFailure, chaos_config,
                              fuzz, journal_fingerprint, run_plan,
                              verify_determinism)
from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.plan import (CorruptFault, CrashFault, FaultPlan, LinkFault,
                              PartitionFault, SignOffFault, SlowFault,
                              random_plan, shrink_plan)

__all__ = [
    "ChaosController", "ChaosRunResult", "CorruptFault", "CrashFault",
    "FaultPlan", "FuzzFailure", "InvariantChecker", "LinkFault",
    "PartitionFault", "SignOffFault", "SlowFault", "Violation",
    "chaos_config", "fuzz", "journal_fingerprint", "random_plan",
    "run_plan", "shrink_plan", "verify_determinism",
]
