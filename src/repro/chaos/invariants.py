"""Post-run invariant auditing for chaos runs.

After a fault-injected run finishes (or gives up), the
:class:`InvariantChecker` audits the final cluster state plus the trace
journal for properties that must hold no matter which faults fired:

* **completion-or-declared-failure** — every submitted program either
  delivered a result or was explicitly failed; plans that expect survival
  (``expect_complete``) additionally demand success and a correct result.
* **no-site-paused-at-horizon** — checkpoint pauses and recovery pauses
  must all have been released by the time the run settles.
* **no recovery in flight** — ``_recovering`` cleared, crash queue empty.
* **single-owner attraction lines** — COMA ownership migrates, it never
  forks: an address may live in at most one running site's memory.
* **directory coherence** — a settled directory shard entry may not name
  a live non-owner while some other running site holds the object
  (entries for dropped objects are fine; pointing at the wrong *live*
  copy is how reads go wrong).
* **frame conservation** — no running site still holds frames (memory or
  scheduler queues) of a program it knows to be terminated, and nothing
  is stuck in flight.
* **epoch/wave monotonicity** — per coordinator, checkpoint wave ids and
  recovery epochs only ever move forward in the journal.
* **no corrupted commit** — a result the chaos engine corrupted must
  never become durable: every ``sdc_tainted_commit`` journal event that
  is followed by a committed checkpoint wave (or by successful program
  completion) is a violation.  The replication defense prevents these by
  quarantining mismatches before their effects dispatch.

Violations come back as data, not exceptions, so the fuzzer can count,
shrink, and report them.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

from repro.common.errors import SDVMError


class Violation(NamedTuple):
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


class InvariantChecker:
    """Audits one finished cluster run against the chaos invariants."""

    def __init__(self, cluster, expect_complete: bool = True,  # noqa: ANN001
                 expected_results: Optional[List[Any]] = None) -> None:
        self.cluster = cluster
        self.expect_complete = expect_complete
        self.expected_results = expected_results

    # ------------------------------------------------------------------
    def check(self) -> List[Violation]:
        out: List[Violation] = []
        out.extend(self._check_completion())
        out.extend(self._check_pauses())
        out.extend(self._check_recovery_settled())
        out.extend(self._check_single_owner())
        out.extend(self._check_directory())
        out.extend(self._check_frame_conservation())
        out.extend(self._check_journal())
        out.extend(self._check_sdc())
        if out:
            self._freeze_flight_rings()
        return out

    def _freeze_flight_rings(self) -> None:
        """On any violation, snapshot every site's flight-recorder ring
        (telemetry) so the postmortem has the last events per site, not
        just the aggregate journal.  No-op when the recorder is off."""
        recorder = getattr(self.cluster, "flight_recorder", None)
        if recorder is None:
            return
        now = getattr(getattr(self.cluster, "sim", None), "now", 0.0)
        recorder.dump_all(now, "invariant_violation")

    # ------------------------------------------------------------------
    def _running_sites(self) -> list:
        return [s for s in self.cluster.sites if s.running]

    def _check_completion(self) -> List[Violation]:
        out = []
        for index, handle in enumerate(self.cluster.handles):
            name = handle.program.name
            if not handle.done:
                out.append(Violation(
                    "completion",
                    f"program {name!r} neither finished nor failed"))
                continue
            if not self.expect_complete:
                continue
            if handle.failed:
                out.append(Violation(
                    "completion",
                    f"program {name!r} declared failed: {handle.failure}"))
            elif (self.expected_results is not None
                    and index < len(self.expected_results)
                    and handle.result != self.expected_results[index]):
                out.append(Violation(
                    "completion",
                    f"program {name!r} returned a wrong result"))
        return out

    def _check_pauses(self) -> List[Violation]:
        return [Violation("paused_at_horizon",
                          f"site {site.site_id} still paused")
                for site in self._running_sites() if site.paused]

    def _check_recovery_settled(self) -> List[Violation]:
        out = []
        for site in self._running_sites():
            cm = site.crash_manager
            if cm._recovering:
                out.append(Violation(
                    "recovery_settled",
                    f"site {site.site_id} still mid-recovery"))
            queued = getattr(cm, "_crash_queue", ())
            if queued:
                out.append(Violation(
                    "recovery_settled",
                    f"site {site.site_id} still has queued crashes "
                    f"{list(queued)}"))
        return out

    def _check_single_owner(self) -> List[Violation]:
        owners: Dict[Any, List[int]] = {}
        for site in self._running_sites():
            for addr in site.attraction_memory.objects:
                owners.setdefault(addr, []).append(site.site_id)
        return [Violation("single_owner",
                          f"address {addr} owned by sites {sites}")
                for addr, sites in owners.items() if len(sites) > 1]

    def _check_directory(self) -> List[Violation]:
        """After the drain has settled every in-flight DIR_UPDATE, a shard
        entry naming a live site as owner must agree with who actually
        holds the object.  Entries for objects nobody holds any more are
        allowed (drops and rollbacks leave tombstone-free garbage);
        *mismatches* against a live copy are not — they would misroute
        every future read.  Vacuously true for workloads that never
        allocate objects (e.g. primes)."""
        holder: Dict[Any, int] = {}
        running = self._running_sites()
        running_ids = {s.site_id for s in running}
        for site in running:
            for addr in site.attraction_memory.objects:
                holder[addr] = site.site_id
        out = []
        for site in running:
            for addr, (owner, _v, _e) in (
                    site.attraction_memory.dir_entries.items()):
                held_at = holder.get(addr)
                if (held_at is not None and owner != held_at
                        and owner in running_ids):
                    out.append(Violation(
                        "directory",
                        f"shard {site.site_id} maps {addr} to site "
                        f"{owner}, but site {held_at} holds it"))
        return out

    def _check_frame_conservation(self) -> List[Violation]:
        out = []
        for site in self._running_sites():
            pm = site.program_manager
            leaked = [str(addr) for addr, frame
                      in site.attraction_memory.frames.items()
                      if pm.knows(frame.program)
                      and not pm.is_active(frame.program)]
            if leaked:
                out.append(Violation(
                    "frame_conservation",
                    f"site {site.site_id} holds {len(leaked)} frame(s) of "
                    f"terminated programs: {leaked[:3]}"))
            in_flight = site.processing_manager.in_flight
            if in_flight:
                out.append(Violation(
                    "frame_conservation",
                    f"site {site.site_id} still has {in_flight} "
                    f"execution(s) in flight at horizon"))
        return out

    def _check_journal(self) -> List[Violation]:
        tracer = self.cluster.tracer
        if tracer is None:
            return []
        out = []
        try:
            tracer.validate()
        except SDVMError as exc:
            out.append(Violation("journal_schema", str(exc)))
            return out
        waves_begun: Dict[int, int] = {}
        waves_committed: Dict[int, int] = {}
        epochs: Dict[int, int] = {}
        for event in tracer.events:
            if event.kind == "wave_begin":
                wave = event.fields[0]
                if wave <= waves_begun.get(event.site, 0):
                    out.append(Violation(
                        "wave_monotonic",
                        f"site {event.site} began wave {wave} after "
                        f"wave {waves_begun[event.site]}"))
                waves_begun[event.site] = max(
                    waves_begun.get(event.site, 0), wave)
            elif event.kind == "wave_commit":
                wave = event.fields[0]
                if wave <= waves_committed.get(event.site, 0):
                    out.append(Violation(
                        "wave_monotonic",
                        f"site {event.site} committed wave {wave} after "
                        f"wave {waves_committed[event.site]}"))
                waves_committed[event.site] = max(
                    waves_committed.get(event.site, 0), wave)
            elif event.kind == "recovery_begin":
                epoch = event.fields[0]
                if epoch <= epochs.get(event.site, 0):
                    out.append(Violation(
                        "epoch_monotonic",
                        f"site {event.site} began recovery epoch {epoch} "
                        f"after epoch {epochs[event.site]}"))
                epochs[event.site] = max(epochs.get(event.site, 0), epoch)
        return out

    def _check_sdc(self) -> List[Violation]:
        """No corrupted result reaches a committed checkpoint.

        ``sdc_tainted_commit`` is emitted by the processing manager when a
        corrupted effect list dispatches — ground truth straight from the
        injector.  A tainted commit is tolerable only if it was rolled
        back before ever becoming durable: no checkpoint wave committed at
        or after it *and* the program did not certify a result.
        """
        tracer = self.cluster.tracer
        if tracer is None:
            return []
        tainted = [e for e in tracer.events
                   if e.kind == "sdc_tainted_commit"]
        if not tainted:
            return []
        last_wave = max((e.ts for e in tracer.events
                         if e.kind == "wave_commit"), default=None)
        completed = any(h.done and not h.failed
                        for h in self.cluster.handles)
        out = []
        for event in tainted:
            durable = last_wave is not None and last_wave >= event.ts
            if durable or completed:
                out.append(Violation(
                    "sdc_commit",
                    f"corrupted result of frame {event.fields[0]} "
                    f"committed on site {event.site} at t={event.ts:.4f} "
                    f"reached durable state"))
        return out
