"""The chaos controller: injects a :class:`FaultPlan` into a sim cluster.

Two injection surfaces:

* **Scheduled actions** (crash, sign-off, slowdown) fire at exact virtual
  times through :class:`~repro.site.simcluster.SimCluster` hooks.
* **Link mangling** (partition, drop, duplicate, delay, reorder) hooks
  :meth:`SimNetwork.send` — the network consults ``network.chaos`` per
  message and the controller answers with a list of delivery offsets
  (empty = dropped, two entries = duplicated, shifted = delayed).

Partitions model an *outage on a reliable transport*: traffic crossing
the cut is held back and delivered just after the heal (TCP retransmits
across a brief outage; it does not silently lose acknowledged sends).
Partitions that outlive the heartbeat timeout therefore still escalate
to crash suspicion — no heartbeat gets through until the heal — while
sub-timeout partitions stay survivable, which is exactly the failure
model the runtime promises.  Silent loss is modelled separately by
``LinkFault.drop``, and surviving *that* is the recovery layer's
ack/retry job.

All probabilistic decisions draw from the controller's own seeded RNG,
never the simulator's, so (a) a chaos run is bit-reproducible from the
plan + seed and (b) attaching a controller does not perturb the RNG
stream of chaos-free runs (the bench baselines stay bit-identical).
"""

from __future__ import annotations

import random
import struct
from typing import Dict, List, Optional

from repro.chaos.plan import (CorruptFault, CrashFault, FaultPlan, LinkFault,
                              PartitionFault, SignOffFault, SlowFault)
from repro.common.errors import SDVMError

#: mixed into the plan seed so the injection stream is decorrelated from
#: any other consumer of the same seed
_CHAOS_SEED_SALT = 0xC4A05


class ChaosController:
    """Applies one fault plan to one cluster run."""

    def __init__(self, cluster, plan: FaultPlan) -> None:  # noqa: ANN001
        plan.validate()
        if plan.nsites != len(cluster.sites):
            raise SDVMError(
                f"plan wants {plan.nsites} sites, cluster has "
                f"{len(cluster.sites)}")
        self.cluster = cluster
        self.plan = plan
        self.rng = random.Random((plan.seed << 4) ^ _CHAOS_SEED_SALT)
        #: site index -> physical network address
        self._phys: Dict[int, int] = {
            index: int(site.kernel.local_physical())
            for index, site in enumerate(cluster.sites)}
        self._partitions: List[PartitionFault] = []
        self._links: List[LinkFault] = []
        self._corrupt_results: List[CorruptFault] = []
        self._corrupt_params: List[CorruptFault] = []
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Arm every fault; called once before the run starts."""
        if self._installed:
            raise SDVMError("chaos controller already installed")
        self._installed = True
        sim = self.cluster.sim
        for fault in self.plan.faults:
            if isinstance(fault, CrashFault):
                sim.schedule_at(fault.at, self._do_crash, fault.site)
            elif isinstance(fault, SignOffFault):
                sim.schedule_at(fault.at, self._do_sign_off, fault.site)
            elif isinstance(fault, SlowFault):
                sim.schedule_at(fault.start, self._set_slowdown,
                                fault.site, fault.factor)
                sim.schedule_at(fault.end, self._set_slowdown,
                                fault.site, 1.0)
            elif isinstance(fault, PartitionFault):
                self._partitions.append(fault)
            elif isinstance(fault, LinkFault):
                self._links.append(fault)
            elif isinstance(fault, CorruptFault):
                if fault.mode == "result":
                    self._corrupt_results.append(fault)
                else:
                    self._corrupt_params.append(fault)
            else:
                raise SDVMError(f"unhandled fault {fault!r}")
        if self._corrupt_results:
            for index, site in enumerate(self.cluster.sites):
                site.processing_manager.sdc_arm(self, index)
        if self._partitions or self._links or self._corrupt_params:
            # with neither partitions nor links armed, filter_send returns
            # None without an RNG draw, so param-only plans leave the
            # delivery schedule untouched
            self.cluster.network.chaos = self

    # ------------------------------------------------------------------
    # scheduled actions

    def _trace(self, kind: str, detail: object) -> None:
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.emit(self.cluster.sim.now, -1, "chaos_fault",
                        kind, detail)

    def _do_crash(self, index: int) -> None:
        site = self.cluster.site_by_index(index)
        if site.running:
            self._trace("crash", index)
            site.crash()

    def _do_sign_off(self, index: int) -> None:
        site = self.cluster.site_by_index(index)
        if site.running:
            self._trace("sign_off", index)
            site.sign_off()

    def _set_slowdown(self, index: int, factor: float) -> None:
        site = self.cluster.site_by_index(index)
        cpu = getattr(site.kernel, "cpu", None)
        if cpu is not None and site.running:
            self._trace("slow", f"{index}x{factor}")
            cpu.slowdown = factor

    # ------------------------------------------------------------------
    # link mangling (called by SimNetwork.send per message)

    def _crosses_partition(self, fault: PartitionFault,
                           src: int, dst: int) -> bool:
        group = {self._phys[i] for i in fault.group}
        return (src in group) != (dst in group)

    def filter_send(self, src: int, dst: int) -> Optional[List[float]]:
        """Decide the fate of one message on the (src, dst) physical link.

        Returns ``None`` for "untouched" (the network takes its normal
        single-delivery path with zero chaos overhead), else a list of
        extra delivery delays: empty = dropped, one entry per copy
        otherwise.
        """
        now = self.cluster.sim.now
        latency = self.cluster.network.config.latency
        for fault in self._partitions:
            if (fault.start <= now < fault.end
                    and self._crosses_partition(fault, src, dst)):
                # hold the message until just after the heal: reliable
                # transports retransmit across an outage, they don't drop
                return [fault.end - now + self.rng.random() * latency]
        offsets: Optional[List[float]] = None
        for fault in self._links:
            if not fault.start <= now < fault.end:
                continue
            if fault.src >= 0 and self._phys[fault.src] != src:
                continue
            if fault.dst >= 0 and self._phys[fault.dst] != dst:
                continue
            if fault.drop > 0.0 and self.rng.random() < fault.drop:
                return []
            if offsets is None:
                offsets = [0.0]
            if fault.delay > 0.0:
                offsets = [extra + fault.delay for extra in offsets]
            if fault.reorder > 0.0 and self.rng.random() < fault.reorder:
                shift = (3.0 + self.rng.random()) * latency
                offsets = [extra + shift for extra in offsets]
            if fault.dup > 0.0 and self.rng.random() < fault.dup:
                offsets.append(offsets[0]
                               + (1.0 + self.rng.random()) * latency)
        return offsets

    # ------------------------------------------------------------------
    # silent data corruption (CorruptFault)

    def _flip_value(self, value, flips):  # noqa: ANN001
        """Bit-flip the first numeric leaf, staying serde-encodable.

        Ints flip within bits 0..61 (the zigzag codec rejects values
        outside 64 signed bits); floats flip mantissa bits only, so the
        corrupted value stays finite (inf/NaN would be a *loud* failure,
        not a silent one).  Containers (dataflow payloads are routinely
        dicts/tuples of partial state) are searched depth-first in
        deterministic order and rebuilt around the one flipped leaf —
        the original object is never mutated.  Returns
        ``(new_value, did_flip)``.
        """
        if isinstance(value, bool):
            return value, False
        if isinstance(value, int):
            for _ in range(flips):
                value ^= 1 << self.rng.randrange(62)
            return value, True
        if isinstance(value, float):
            bits = struct.unpack("<Q", struct.pack("<d", value))[0]
            for _ in range(flips):
                bits ^= 1 << self.rng.randrange(52)
            return struct.unpack("<d", struct.pack("<Q", bits))[0], True
        if isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                flipped, did = self._flip_value(item, flips)
                if did:
                    out = list(value)
                    out[i] = flipped
                    return (tuple(out) if isinstance(value, tuple)
                            else out), True
            return value, False
        if isinstance(value, dict):
            for key in value:  # insertion order: deterministic
                flipped, did = self._flip_value(value[key], flips)
                if did:
                    out = dict(value)
                    out[key] = flipped
                    return out, True
            return value, False
        return value, False

    #: effect-data keys that hold a microthread's produced values, in
    #: corruption preference order (see core.context.EffectKind)
    _RESULT_KEYS = (("send_result", "value"), ("exit_program", "result"),
                    ("mem_write", "value"))

    def corrupt_effects(self, index: int, effects) -> bool:  # noqa: ANN001
        """Maybe bit-flip one produced value in a completing execution.

        Called by the site's processing manager (primary and shadow
        completions alike) when result-mode corruption is armed.  Returns
        True when a flip was applied, so the caller can taint-track the
        effect list through to commit.
        """
        now = self.cluster.sim.now
        for fault in self._corrupt_results:
            if not fault.start <= now < fault.end:
                continue
            if fault.site >= 0 and fault.site != index:
                continue
            if fault.prob < 1.0 and self.rng.random() >= fault.prob:
                continue
            for effect in effects:
                kind = effect.kind.value
                for ekind, key in self._RESULT_KEYS:
                    if kind != ekind or key not in effect.data:
                        continue
                    flipped, did = self._flip_value(effect.data[key],
                                                    fault.flips)
                    if did:
                        effect.data[key] = flipped
                        self._trace("corrupt_result", index)
                        return True
        return False

    @property
    def corrupts_wire(self) -> bool:
        return bool(self._corrupt_params)

    def corrupt_wire(self, src: int, dst: int,
                     data: bytes) -> Optional[bytes]:
        """Maybe bit-flip a microframe parameter in flight.

        Targets APPLY_RESULT payloads (the dataflow write that fills a
        waiting microframe's parameter slot) inside *plaintext* security
        envelopes; sealed envelopes pass untouched — a flipped bit there
        trips the MAC, which is a loud failure, not a silent one.
        Returns the re-wrapped envelope bytes, or None when the message
        is left alone.
        """
        from repro.messages.message import MsgType, SDMessage
        now = self.cluster.sim.now
        for fault in self._corrupt_params:
            if not fault.start <= now < fault.end:
                continue
            if fault.site >= 0 and self._phys[fault.site] != dst:
                continue
            if len(data) < 3:
                return None
            flag, addr_len = struct.unpack_from(">BH", data, 0)
            if flag != 0:  # sealed envelope: the MAC would catch the flip
                return None
            header, body = data[:3 + addr_len], data[3 + addr_len:]
            msg = SDMessage.decode(body)
            if msg.type != MsgType.APPLY_RESULT:
                return None
            if fault.prob < 1.0 and self.rng.random() >= fault.prob:
                return None
            flipped, did = self._flip_value(msg.payload.get("value"),
                                            fault.flips)
            if not did:
                return None
            msg.payload["value"] = flipped
            self._trace("corrupt_param", dst)
            return header + msg.encode()
        return None
