"""The chaos controller: injects a :class:`FaultPlan` into a sim cluster.

Two injection surfaces:

* **Scheduled actions** (crash, sign-off, slowdown) fire at exact virtual
  times through :class:`~repro.site.simcluster.SimCluster` hooks.
* **Link mangling** (partition, drop, duplicate, delay, reorder) hooks
  :meth:`SimNetwork.send` — the network consults ``network.chaos`` per
  message and the controller answers with a list of delivery offsets
  (empty = dropped, two entries = duplicated, shifted = delayed).

Partitions model an *outage on a reliable transport*: traffic crossing
the cut is held back and delivered just after the heal (TCP retransmits
across a brief outage; it does not silently lose acknowledged sends).
Partitions that outlive the heartbeat timeout therefore still escalate
to crash suspicion — no heartbeat gets through until the heal — while
sub-timeout partitions stay survivable, which is exactly the failure
model the runtime promises.  Silent loss is modelled separately by
``LinkFault.drop``, and surviving *that* is the recovery layer's
ack/retry job.

All probabilistic decisions draw from the controller's own seeded RNG,
never the simulator's, so (a) a chaos run is bit-reproducible from the
plan + seed and (b) attaching a controller does not perturb the RNG
stream of chaos-free runs (the bench baselines stay bit-identical).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.chaos.plan import (CrashFault, FaultPlan, LinkFault,
                              PartitionFault, SignOffFault, SlowFault)
from repro.common.errors import SDVMError

#: mixed into the plan seed so the injection stream is decorrelated from
#: any other consumer of the same seed
_CHAOS_SEED_SALT = 0xC4A05


class ChaosController:
    """Applies one fault plan to one cluster run."""

    def __init__(self, cluster, plan: FaultPlan) -> None:  # noqa: ANN001
        plan.validate()
        if plan.nsites != len(cluster.sites):
            raise SDVMError(
                f"plan wants {plan.nsites} sites, cluster has "
                f"{len(cluster.sites)}")
        self.cluster = cluster
        self.plan = plan
        self.rng = random.Random((plan.seed << 4) ^ _CHAOS_SEED_SALT)
        #: site index -> physical network address
        self._phys: Dict[int, int] = {
            index: int(site.kernel.local_physical())
            for index, site in enumerate(cluster.sites)}
        self._partitions: List[PartitionFault] = []
        self._links: List[LinkFault] = []
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Arm every fault; called once before the run starts."""
        if self._installed:
            raise SDVMError("chaos controller already installed")
        self._installed = True
        sim = self.cluster.sim
        for fault in self.plan.faults:
            if isinstance(fault, CrashFault):
                sim.schedule_at(fault.at, self._do_crash, fault.site)
            elif isinstance(fault, SignOffFault):
                sim.schedule_at(fault.at, self._do_sign_off, fault.site)
            elif isinstance(fault, SlowFault):
                sim.schedule_at(fault.start, self._set_slowdown,
                                fault.site, fault.factor)
                sim.schedule_at(fault.end, self._set_slowdown,
                                fault.site, 1.0)
            elif isinstance(fault, PartitionFault):
                self._partitions.append(fault)
            elif isinstance(fault, LinkFault):
                self._links.append(fault)
            else:
                raise SDVMError(f"unhandled fault {fault!r}")
        if self._partitions or self._links:
            self.cluster.network.chaos = self

    # ------------------------------------------------------------------
    # scheduled actions

    def _trace(self, kind: str, detail: object) -> None:
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.emit(self.cluster.sim.now, -1, "chaos_fault",
                        kind, detail)

    def _do_crash(self, index: int) -> None:
        site = self.cluster.site_by_index(index)
        if site.running:
            self._trace("crash", index)
            site.crash()

    def _do_sign_off(self, index: int) -> None:
        site = self.cluster.site_by_index(index)
        if site.running:
            self._trace("sign_off", index)
            site.sign_off()

    def _set_slowdown(self, index: int, factor: float) -> None:
        site = self.cluster.site_by_index(index)
        cpu = getattr(site.kernel, "cpu", None)
        if cpu is not None and site.running:
            self._trace("slow", f"{index}x{factor}")
            cpu.slowdown = factor

    # ------------------------------------------------------------------
    # link mangling (called by SimNetwork.send per message)

    def _crosses_partition(self, fault: PartitionFault,
                           src: int, dst: int) -> bool:
        group = {self._phys[i] for i in fault.group}
        return (src in group) != (dst in group)

    def filter_send(self, src: int, dst: int) -> Optional[List[float]]:
        """Decide the fate of one message on the (src, dst) physical link.

        Returns ``None`` for "untouched" (the network takes its normal
        single-delivery path with zero chaos overhead), else a list of
        extra delivery delays: empty = dropped, one entry per copy
        otherwise.
        """
        now = self.cluster.sim.now
        latency = self.cluster.network.config.latency
        for fault in self._partitions:
            if (fault.start <= now < fault.end
                    and self._crosses_partition(fault, src, dst)):
                # hold the message until just after the heal: reliable
                # transports retransmit across an outage, they don't drop
                return [fault.end - now + self.rng.random() * latency]
        offsets: Optional[List[float]] = None
        for fault in self._links:
            if not fault.start <= now < fault.end:
                continue
            if fault.src >= 0 and self._phys[fault.src] != src:
                continue
            if fault.dst >= 0 and self._phys[fault.dst] != dst:
                continue
            if fault.drop > 0.0 and self.rng.random() < fault.drop:
                return []
            if offsets is None:
                offsets = [0.0]
            if fault.delay > 0.0:
                offsets = [extra + fault.delay for extra in offsets]
            if fault.reorder > 0.0 and self.rng.random() < fault.reorder:
                shift = (3.0 + self.rng.random()) * latency
                offsets = [extra + shift for extra in offsets]
            if fault.dup > 0.0 and self.rng.random() < fault.dup:
                offsets.append(offsets[0]
                               + (1.0 + self.rng.random()) * latency)
        return offsets
