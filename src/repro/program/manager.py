"""The program manager: multi-program bookkeeping, termination, accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ProgramError
from repro.common.ids import ManagerId
from repro.core.program import SDVMProgram
from repro.messages import MsgType, SDMessage
from repro.site.manager_base import Manager


@dataclass(slots=True)
class ProgramInfo:
    """What one site knows about one program.

    ``code_home`` is "a code home site to request microthread code from if
    it is not found locally" (§4); ``frontend`` is the site user I/O is
    routed to (§2.1 goal 15).
    """

    pid: int
    name: str
    entry: str
    code_home: int
    frontend: int
    #: thread name -> (thread_id, nparams, work_hint, creates)
    threads: Dict[str, Tuple[int, int, float, tuple]]
    terminated: bool = False
    result: Any = None
    failed: bool = False
    failure: str = ""
    started_at: float = 0.0
    finished_at: float = 0.0
    #: local accounting (goal 14): executions run / work charged here
    executions: int = 0
    work_charged: float = 0.0
    #: memoized thread_table() result — ``threads`` is immutable after
    #: registration, and the table is needed once per execution
    _thread_table: Optional[Dict[str, Tuple[int, int]]] = field(
        default=None, init=False, repr=False, compare=False)

    def thread_table(self) -> Dict[str, Tuple[int, int]]:
        table = self._thread_table
        if table is None:
            table = self._thread_table = {
                name: (tid, nparams)
                for name, (tid, nparams, _w, _c) in self.threads.items()}
        return table

    def to_wire(self) -> dict:
        return {
            "pid": self.pid,
            "name": self.name,
            "entry": self.entry,
            "code_home": self.code_home,
            "frontend": self.frontend,
            "threads": [(name, tid, nparams, work, tuple(creates))
                        for name, (tid, nparams, work, creates)
                        in self.threads.items()],
            "terminated": self.terminated,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "ProgramInfo":
        return cls(
            pid=data["pid"],
            name=data["name"],
            entry=data["entry"],
            code_home=data["code_home"],
            frontend=data["frontend"],
            threads={name: (tid, nparams, work, tuple(creates))
                     for name, tid, nparams, work, creates in data["threads"]},
            terminated=data.get("terminated", False),
        )


class ProgramManager(Manager):
    manager_id = ManagerId.PROGRAM

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        self.programs: Dict[int, ProgramInfo] = {}
        #: facade hooks fired at the frontend site: fn(pid, info)
        self.on_program_done: List[Callable[[int, ProgramInfo], None]] = []

    # ------------------------------------------------------------------
    # registration

    def register_local(self, program: SDVMProgram, pid: int) -> ProgramInfo:
        """Register a program started on this site (code home + frontend)."""
        if pid in self.programs:
            raise ProgramError(f"program id {pid} already registered")
        bound = program.with_program_id(pid)
        info = ProgramInfo(
            pid=pid,
            name=bound.name,
            entry=bound.entry,
            code_home=self.local_id,
            frontend=self.local_id,
            threads={name: (src.thread_id, src.nparams, src.work_hint,
                            tuple(src.creates))
                     for name, src in bound.threads.items()},
            started_at=self.kernel.now,
        )
        self.programs[pid] = info
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "program_register", pid)
        # the starting site is implicitly a code distribution site (§4)
        for src in bound.threads.values():
            self.site.code_manager.store_source(src)
        self._broadcast_registration(info)
        if self.site.running and self.config.scheduling.prefetch_code:
            # start the entry compile now and note which binaries the
            # compile owners announced by the broadcast will push back
            self.site.code_manager.prefetch_program(info)
        return info

    #: relay-tree arity for the PROGRAM_REGISTER fan-out
    _RELAY_ARITY = 8

    def _broadcast_registration(self, info: ProgramInfo) -> None:
        targets = list(self.site.cluster_manager.sorted_alive_ids())
        self._relay_registration(info.to_wire(), targets, info.pid)

    def _relay_registration(self, wire: dict, targets: list,
                            pid: int) -> None:
        """Fan a PROGRAM_REGISTER out as a relay tree of arity 8.

        Each chunk head receives the program info plus its chunk's tail
        and relays onward after learning it — O(1) messages per site and
        O(log n) registration latency, instead of the old O(n) direct
        fan-out that made the starting site the bottleneck on large
        clusters.  A dead head orphans only its subtree, and any frame
        or steal that later reaches an orphan carries the program info
        anyway (§4's list-update-on-access rule is the backstop).

        PROGRAM_TERMINATED deliberately stays a direct fan-out: a missed
        termination wedges run-to-quiescence, so it does not ride a tree
        whose inner nodes may crash.
        """
        if not targets:
            return
        if len(targets) <= self._RELAY_ARITY:
            chunks = [[t] for t in targets]
        else:
            chunks = [targets[i::self._RELAY_ARITY]
                      for i in range(self._RELAY_ARITY)]
        for chunk in chunks:
            payload = {"info": wire}
            if len(chunk) > 1:
                payload["relay"] = chunk[1:]
            self.site.message_manager.send(SDMessage(
                type=MsgType.PROGRAM_REGISTER,
                src_site=self.local_id, src_manager=ManagerId.PROGRAM,
                dst_site=chunk[0], dst_manager=ManagerId.PROGRAM,
                program=pid,
                payload=payload,
            ))

    def learn_program_wire(self, wire: dict) -> ProgramInfo:
        """Adopt program knowledge from any message carrying it ("the list
        is updated with every access to another site resulting in a
        microframe belonging to a new program", §4)."""
        info = ProgramInfo.from_wire(wire)
        existing = self.programs.get(info.pid)
        if existing is None:
            self.programs[info.pid] = info
            if (not info.terminated and self.site.running
                    and self.config.scheduling.prefetch_code):
                # warm the code cache now (CDAG spine first) so stolen or
                # pushed frames of this program start without a fetch stall
                self.site.code_manager.prefetch_program(info)
            return info
        if info.terminated:
            existing.terminated = True
        return existing

    def known_programs_wire(self) -> list:
        return [info.to_wire() for info in self.programs.values()]

    def learn_programs_wire(self, wires: list) -> None:
        for wire in wires:
            self.learn_program_wire(wire)

    # ------------------------------------------------------------------
    # queries

    def get(self, pid: int) -> ProgramInfo:
        info = self.programs.get(pid)
        if info is None:
            raise ProgramError(f"unknown program id {pid} on site "
                               f"{self.local_id}")
        return info

    def knows(self, pid: int) -> bool:
        return pid in self.programs

    def is_active(self, pid: int) -> bool:
        info = self.programs.get(pid)
        return info is not None and not info.terminated

    def has_active_programs(self) -> bool:
        return any(not info.terminated for info in self.programs.values())

    def record_execution(self, pid: int, work: float) -> None:
        info = self.programs.get(pid)
        if info is not None:
            info.executions += 1
            info.work_charged += work

    # ------------------------------------------------------------------
    # termination

    def local_exit(self, pid: int, result: Any, failed: bool = False,
                   failure: str = "") -> None:
        """A microthread on this site called exit_program (or raised)."""
        info = self.programs.get(pid)
        if info is None or info.terminated:
            return
        self._terminate(info)
        info.result = result
        info.failed = failed
        info.failure = failure
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "program_exit",
                    pid, failed)
        for peer in self.site.cluster_manager.alive_peers():
            self.site.message_manager.send(SDMessage(
                type=MsgType.PROGRAM_TERMINATED,
                src_site=self.local_id, src_manager=ManagerId.PROGRAM,
                dst_site=peer.logical, dst_manager=ManagerId.PROGRAM,
                program=pid,
                payload={"pid": pid},
            ))
        if info.frontend == self.local_id:
            self._finish(info)
        else:
            self.site.message_manager.send(SDMessage(
                type=MsgType.PROGRAM_RESULT,
                src_site=self.local_id, src_manager=ManagerId.PROGRAM,
                dst_site=info.frontend, dst_manager=ManagerId.PROGRAM,
                program=pid,
                payload={"pid": pid, "result": result,
                         "failed": failed, "failure": failure},
            ))

    def _terminate(self, info: ProgramInfo) -> None:
        info.terminated = True
        info.finished_at = self.kernel.now
        # "its microthreads can safely be deleted from memory" (§4)
        self.site.scheduling_manager.drop_program(info.pid)
        self.site.attraction_memory.drop_program(info.pid)
        self.site.code_manager.drop_program(info.pid)

    def _finish(self, info: ProgramInfo) -> None:
        for callback in self.on_program_done:
            callback(info.pid, info)

    # ------------------------------------------------------------------
    def handle(self, msg: SDMessage) -> None:
        if msg.type == MsgType.PROGRAM_REGISTER:
            info = self.learn_program_wire(msg.payload["info"])
            relay = msg.payload.get("relay")
            if relay:
                cm = self.site.cluster_manager
                live = [t for t in relay
                        if cm.physical_of(cm.effective_site(t)) is not None]
                self._relay_registration(msg.payload["info"], live, info.pid)
            if not info.terminated:
                # a new program means new work somewhere: wake the
                # (possibly dormant) scheduler to go steal some
                self.site.scheduling_manager.kick()
        elif msg.type == MsgType.PROGRAM_TERMINATED:
            info = self.programs.get(msg.payload["pid"])
            if info is not None and not info.terminated:
                self._terminate(info)
        elif msg.type == MsgType.PROGRAM_RESULT:
            info = self.programs.get(msg.payload["pid"])
            if info is None:
                return
            if not info.terminated:
                self._terminate(info)
            info.result = msg.payload.get("result")
            info.failed = msg.payload.get("failed", False)
            info.failure = msg.payload.get("failure", "")
            self._finish(info)
        else:
            super().handle(msg)

    def on_start(self) -> None:
        """PROGRAM_REGISTER can land while our own sign-on is still in
        flight (``running`` False), where :meth:`learn_program_wire` must
        not start code fetches yet — warm the cache for everything learned
        in that window now."""
        if not self.config.scheduling.prefetch_code:
            return
        for info in self.programs.values():
            if not info.terminated:
                self.site.code_manager.prefetch_program(info)

    def status(self) -> dict:
        base = super().status()
        base["programs"] = {
            info.name: {"terminated": info.terminated,
                        "executions": info.executions,
                        "work": info.work_charged}
            for info in self.programs.values()
        }
        return base
