"""Program management (paper §4, program manager).

"If the SDVM runs more than one program at the same time, the programs must
be distinguished.  The program manager maintains a list of all programs the
local site currently works on."
"""

from repro.program.manager import ProgramManager, ProgramInfo

__all__ = ["ProgramManager", "ProgramInfo"]
