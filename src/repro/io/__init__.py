"""Input/output manager (paper §4).

"Disk files are given a unique file handle when they are accessed for the
first time (which contains the site id of the machine the file resides on).
Therefore all other sites can access any opened file using this file handle
— the access is automatically rerouted to the appropriate site.  As the
SDVM is run as a daemon and operated using a front end, the I/O manager
sends all output and input requests to the front end."
"""

from repro.io.manager import IOManager

__all__ = ["IOManager"]
