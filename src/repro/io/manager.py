"""The I/O manager: console routing, frontend input, cluster-global files."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ProgramError
from repro.common.ids import FileHandle, GlobalAddress, ManagerId
from repro.messages import MsgType, SDMessage, make_reply
from repro.site.manager_base import Manager

#: facade-registered provider answering frontend input requests
InputProvider = Callable[[int, str], Any]


class IOManager(Manager):
    manager_id = ManagerId.IO

    def __init__(self, site) -> None:  # noqa: ANN001
        super().__init__(site)
        #: console output captured at the frontend: pid -> [(time, text)]
        self.outputs: Dict[int, List[Tuple[float, str]]] = {}
        #: answers frontend input requests; set by the facade/frontend
        self.input_provider: Optional[InputProvider] = None
        self._next_handle = 1
        #: file handles minted by this site: handle -> (path, mode)
        self._local_handles: Dict[FileHandle, Tuple[str, str]] = {}
        #: read/write cursors, kept by the owning site
        self._positions: Dict[FileHandle, int] = {}
        #: live-kernel per-site file store ("the machine the file resides
        #: on", §4 — path namespaces are per-site, handles are global)
        self._live_store: Dict[str, bytearray] = {}

    # ------------------------------------------------------------------
    # console output

    def emit_output(self, program: int, text: str) -> None:
        """Route microthread output to the program's frontend site."""
        info = self.site.program_manager.get(program)
        frontend = self.site.cluster_manager.effective_site(info.frontend)
        if frontend == self.local_id:
            self._record_output(program, text)
            return
        self.site.message_manager.send(SDMessage(
            type=MsgType.IO_OUTPUT,
            src_site=self.local_id, src_manager=ManagerId.IO,
            dst_site=frontend, dst_manager=ManagerId.IO,
            program=program,
            payload={"text": text},
        ))
        self.stats.inc("outputs_forwarded")

    def _record_output(self, program: int, text: str) -> None:
        self.outputs.setdefault(program, []).append((self.kernel.now, text))
        self.stats.inc("outputs_recorded")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "io_output", program)

    def output_lines(self, program: int) -> List[str]:
        return [text for _t, text in self.outputs.get(program, [])]

    # ------------------------------------------------------------------
    # frontend input (dataflow style: the answer becomes a parameter)

    def request_input(self, program: int, prompt: str,
                      target: GlobalAddress, slot: int) -> None:
        info = self.site.program_manager.get(program)
        frontend = self.site.cluster_manager.effective_site(info.frontend)
        if frontend == self.local_id:
            self._answer_input(program, prompt, target, slot)
            return
        self.site.message_manager.send(SDMessage(
            type=MsgType.IO_FILE_OPEN,  # reuse of channel below; see handle()
            src_site=self.local_id, src_manager=ManagerId.IO,
            dst_site=frontend, dst_manager=ManagerId.IO,
            program=program,
            payload={"kind": "input", "prompt": prompt,
                     "addr": target, "slot": slot},
        ))

    def _answer_input(self, program: int, prompt: str,
                      target: GlobalAddress, slot: int) -> None:
        if self.input_provider is None:
            raise ProgramError(
                f"program {program} requested input ({prompt!r}) but no "
                f"frontend input provider is registered")
        value = self.input_provider(program, prompt)
        self.stats.inc("inputs_answered")
        self.site.attraction_memory.apply_result(target, slot, value, program)

    # ------------------------------------------------------------------
    # cluster-global files (sim path: shared VFS with modelled latency)

    def _vfs(self) -> Dict[str, bytearray]:
        return self.kernel.shared.vfs

    def _remote_latency(self, owner: int, size: int) -> float:
        network = self.kernel.shared.network
        record = self.site.cluster_manager.sites.get(owner)
        if record is None:
            return 2.0 * network.config.latency
        me = int(self.kernel.local_physical())
        there = int(record.physical)
        return (network.transit_delay(me, there, 64)
                + network.transit_delay(there, me, 64 + size))

    def sim_open(self, path: str, mode: str) -> Tuple[FileHandle, float]:
        if mode not in ("r", "w", "a", "rw"):
            raise ProgramError(f"unsupported file mode {mode!r}")
        vfs = self._vfs()
        if mode == "r" and path not in vfs:
            raise ProgramError(f"file not found: {path!r}")
        if mode == "w" or path not in vfs:
            vfs[path] = bytearray()
        handle = FileHandle(self.local_id, self._next_handle)
        self._next_handle += 1
        self._local_handles[handle] = (path, mode)
        self._positions[handle] = (len(vfs[path]) if mode == "a" else 0)
        self.stats.inc("files_opened")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "file_open", path, mode)
        return handle, 0.0

    def _resolve_handle(self, handle: FileHandle) -> Tuple[str, str, "IOManager", float]:
        """Find the owning site's table entry ("automatically rerouted")."""
        if handle in self._local_handles:
            path, mode = self._local_handles[handle]
            return path, mode, self, 0.0
        owner_id = self.site.cluster_manager.effective_site(handle.site)
        owner_site = self.kernel.shared.sites.get(owner_id)
        if owner_site is None:
            raise ProgramError(f"file handle {handle} owner unreachable")
        owner_io = owner_site.io_manager
        entry = owner_io._local_handles.get(handle)
        if entry is None:
            raise ProgramError(f"stale file handle {handle}")
        path, mode = entry
        return path, mode, owner_io, self._remote_latency(owner_id, 256)

    def sim_read(self, handle: FileHandle, size: int) -> Tuple[bytes, float]:
        path, mode, owner_io, latency = self._resolve_handle(handle)
        if "r" not in mode:
            raise ProgramError(f"file {path!r} not open for reading")
        data = self._vfs().get(path, bytearray())
        pos = owner_io._positions.get(handle, 0)
        chunk = bytes(data[pos:] if size < 0 else data[pos:pos + size])
        owner_io._positions[handle] = pos + len(chunk)
        self.stats.inc("file_reads")
        return chunk, latency + len(chunk) / self.kernel.shared.network.config.bandwidth

    def sim_write(self, handle: FileHandle, data: bytes) -> Tuple[int, float]:
        path, mode, owner_io, latency = self._resolve_handle(handle)
        if mode == "r":
            raise ProgramError(f"file {path!r} opened read-only")
        buffer = self._vfs().setdefault(path, bytearray())
        pos = owner_io._positions.get(handle, len(buffer))
        buffer[pos:pos + len(data)] = data
        owner_io._positions[handle] = pos + len(data)
        self.stats.inc("file_writes")
        return len(data), latency + len(data) / self.kernel.shared.network.config.bandwidth

    def sim_seek(self, handle: FileHandle, offset: int) -> float:
        _path, _mode, owner_io, latency = self._resolve_handle(handle)
        owner_io._positions[handle] = max(0, offset)
        return latency

    def sim_close(self, handle: FileHandle) -> None:
        _path, _mode, owner_io, _latency = self._resolve_handle(handle)
        owner_io._local_handles.pop(handle, None)
        owner_io._positions.pop(handle, None)
        self.stats.inc("files_closed")

    # ------------------------------------------------------------------
    # cluster-global files — live message protocol.  Files reside on the
    # site that opened them; remote sites access them by handle, with the
    # access "automatically rerouted to the appropriate site" (§4).

    def live_open(self, path: str, mode: str, cb) -> None:  # noqa: ANN001
        if mode not in ("r", "w", "a", "rw"):
            cb(None, ProgramError(f"unsupported file mode {mode!r}"))
            return
        if mode == "r" and path not in self._live_store:
            cb(None, ProgramError(f"file not found: {path!r}"))
            return
        if mode == "w" or path not in self._live_store:
            self._live_store[path] = bytearray()
        handle = FileHandle(self.local_id, self._next_handle)
        self._next_handle += 1
        self._local_handles[handle] = (path, mode)
        self._positions[handle] = (len(self._live_store[path])
                                   if mode == "a" else 0)
        self.stats.inc("files_opened")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.kernel.now, self.local_id, "file_open", path, mode)
        cb(handle)

    def _live_read_local(self, handle: FileHandle, size: int) -> bytes:
        path, mode = self._local_handles[handle]
        if "r" not in mode:
            raise ProgramError(f"file {path!r} not open for reading")
        data = self._live_store.get(path, bytearray())
        pos = self._positions.get(handle, 0)
        chunk = bytes(data[pos:] if size < 0 else data[pos:pos + size])
        self._positions[handle] = pos + len(chunk)
        return chunk

    def _live_write_local(self, handle: FileHandle, data: bytes) -> int:
        path, mode = self._local_handles[handle]
        if mode == "r":
            raise ProgramError(f"file {path!r} opened read-only")
        buffer = self._live_store.setdefault(path, bytearray())
        pos = self._positions.get(handle, len(buffer))
        buffer[pos:pos + len(data)] = data
        self._positions[handle] = pos + len(data)
        return len(data)

    def _file_request(self, handle: FileHandle, msg_type: MsgType,
                      payload: dict, cb, extract) -> None:  # noqa: ANN001
        target = self.site.cluster_manager.effective_site(handle.site)
        msg = SDMessage(
            type=msg_type,
            src_site=self.local_id, src_manager=ManagerId.IO,
            dst_site=target, dst_manager=ManagerId.IO,
            payload=payload,
        )

        def on_reply(reply: SDMessage) -> None:
            error = reply.payload.get("error")
            if error:
                cb(None, ProgramError(error))
            else:
                cb(extract(reply))

        ok = self.site.message_manager.request(
            msg, on_reply, timeout=5.0,
            on_timeout=lambda: cb(None, ProgramError(
                f"file site {target} unresponsive")))
        if not ok:
            cb(None, ProgramError(f"cannot reach file site {target}"))

    def live_read(self, handle: FileHandle, size: int, cb) -> None:  # noqa: ANN001
        if handle in self._local_handles:
            try:
                cb(self._live_read_local(handle, size))
            except ProgramError as exc:
                cb(None, exc)
            return
        self._file_request(handle, MsgType.IO_FILE_READ,
                           {"handle": handle, "size": size}, cb,
                           lambda reply: reply.payload["data"])

    def live_write(self, handle: FileHandle, data: bytes, cb) -> None:  # noqa: ANN001
        if handle in self._local_handles:
            try:
                cb(self._live_write_local(handle, data))
            except ProgramError as exc:
                cb(None, exc)
            return
        self._file_request(handle, MsgType.IO_FILE_WRITE,
                           {"handle": handle, "data": data}, cb,
                           lambda reply: reply.payload["written"])

    def live_seek(self, handle: FileHandle, offset: int, cb) -> None:  # noqa: ANN001
        if handle in self._local_handles:
            self._positions[handle] = max(0, offset)
            cb(None)
            return
        self._file_request(handle, MsgType.IO_FILE_WRITE,
                           {"handle": handle, "seek": offset}, cb,
                           lambda reply: None)

    def live_close(self, handle: FileHandle, cb) -> None:  # noqa: ANN001
        if handle in self._local_handles:
            self._local_handles.pop(handle, None)
            self._positions.pop(handle, None)
            self.stats.inc("files_closed")
            cb(None)
            return
        target = self.site.cluster_manager.effective_site(handle.site)
        self.site.message_manager.send(SDMessage(
            type=MsgType.IO_FILE_CLOSE,
            src_site=self.local_id, src_manager=ManagerId.IO,
            dst_site=target, dst_manager=ManagerId.IO,
            payload={"handle": handle},
        ))
        cb(None)

    # ------------------------------------------------------------------
    def handle(self, msg: SDMessage) -> None:
        if msg.type == MsgType.IO_OUTPUT:
            self._record_output(msg.program, msg.payload["text"])
        elif (msg.type == MsgType.IO_FILE_OPEN
              and msg.payload.get("kind") == "input"):
            self._answer_input(msg.program, msg.payload["prompt"],
                               msg.payload["addr"], msg.payload["slot"])
        elif msg.type == MsgType.IO_FILE_READ:
            handle = msg.payload["handle"]
            try:
                data = self._live_read_local(handle, msg.payload["size"])
                payload = {"data": data}
            except (ProgramError, KeyError) as exc:
                payload = {"error": str(exc)}
            self.site.message_manager.send(make_reply(
                msg, MsgType.IO_FILE_READ_REPLY, payload))
        elif msg.type == MsgType.IO_FILE_WRITE:
            handle = msg.payload["handle"]
            try:
                if "seek" in msg.payload:
                    if handle not in self._local_handles:
                        raise ProgramError(f"stale file handle {handle}")
                    self._positions[handle] = max(0, msg.payload["seek"])
                    payload = {"written": 0}
                else:
                    written = self._live_write_local(handle,
                                                     msg.payload["data"])
                    payload = {"written": written}
            except (ProgramError, KeyError) as exc:
                payload = {"error": str(exc)}
            self.site.message_manager.send(make_reply(
                msg, MsgType.IO_FILE_WRITE_ACK, payload))
        elif msg.type == MsgType.IO_FILE_CLOSE:
            handle = msg.payload["handle"]
            self._local_handles.pop(handle, None)
            self._positions.pop(handle, None)
        else:
            super().handle(msg)

    def status(self) -> dict:
        base = super().status()
        base["open_handles"] = len(self._local_handles)
        base["programs_with_output"] = len(self.outputs)
        return base
