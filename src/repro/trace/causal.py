"""Causal DAG over the structured trace journal.

Every inter-site interaction carries a causal stamp: an :class:`SDMessage`
is stamped ``(origin_site, cause_id)`` at send time with the context of
whatever the sending site was handling, and each handler runs under the
context of the message (or execution) that invoked it.  The journal's
``msg_send``/``msg_local``/``exec_begin`` events therefore encode a
cross-site DAG: *this send happened because that message arrived*, *this
execution ran because that result applied its last parameter*.

This module turns the journal back into that graph.  Node ids pack into
single ints so the stamps are cheap to carry and byte-identical across
repeated deterministic sim runs:

* message node — ``MSG_TAG | sender_site << 44 | seq`` (a site's sequence
  numbers are unique, so sender+seq names one physical message);
* execution node — ``EXEC_TAG | frame_id.pack()`` (a microframe is
  consumed by its execution, so the frame address names it).

``cause = -1`` marks a chain root: the frontend submit, a timer-driven
retry, or any event whose trigger crossed an async boundary the stamps
deliberately do not bridge.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.trace.tracer import Tracer, TracerEvent

#: help-protocol message types: their transit on a critical path means
#: the work itself travelled by stealing, not ordinary dataflow
_STEAL_LABELS = frozenset({"HELP_REQUEST", "HELP_REPLY", "CANT_HELP"})
#: load-view maintenance traffic — rarely on the path, but when a
#: LOAD_REPORT triggers the steal that moved the work it should say so
_GOSSIP_LABELS = frozenset({"LOAD_REPORT", "HEARTBEAT", "CLUSTER_INFO"})

#: tag bits keeping message and execution node ids disjoint
MSG_TAG = 1 << 62
EXEC_TAG = 2 << 62
_TAG_MASK = 3 << 62
_SITE_SHIFT = 44


def msg_node(site: int, seq: int) -> int:
    """Packed node id for message ``seq`` sent by ``site``."""
    return MSG_TAG | (site << _SITE_SHIFT) | seq


def exec_node(packed_frame: int) -> int:
    """Packed node id for the execution of frame ``packed_frame``."""
    return EXEC_TAG | packed_frame


def node_kind(node_id: int) -> Optional[str]:
    tag = node_id & _TAG_MASK
    if tag == MSG_TAG:
        return "msg"
    if tag == EXEC_TAG:
        return "exec"
    return None


class CausalNode:
    """One DAG node: a message in flight or a microframe execution."""

    __slots__ = ("node_id", "kind", "site", "start", "end", "cause",
                 "origin", "label", "dst", "work", "nbytes", "local")

    def __init__(self, node_id: int, kind: str, site: int, start: float,
                 cause: int, origin: int, label: str) -> None:
        self.node_id = node_id
        self.kind = kind            # "msg" | "exec"
        self.site = site            # sender / executing site
        self.start = start          # send time / exec_begin time
        self.end = start            # recv time / exec_end time
        self.cause = cause          # causal parent node id, -1 = root
        self.origin = origin        # site rooting the chain, -1 = unknown
        self.label = label          # message type name / thread name
        self.dst = site             # receiving site (msg nodes)
        self.work = 0.0             # charged work (exec nodes)
        self.nbytes = 0             # wire bytes (remote msg nodes)
        self.local = False          # loopback message

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (f"CausalNode({self.kind} {self.label} s{self.site} "
                f"[{self.start:.6f},{self.end:.6f}])")


class CausalGraph:
    """The journal's cross-site causal DAG, indexed by packed node id."""

    def __init__(self) -> None:
        self.nodes: Dict[int, CausalNode] = {}
        self._children: Optional[Dict[int, List[int]]] = None

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "CausalGraph":
        return cls.from_events(tracer.events)

    @classmethod
    def from_events(cls, events: List[TracerEvent]) -> "CausalGraph":
        graph = cls()
        nodes = graph.nodes
        #: recv timestamps seen before their send (ts ties sort by site)
        early_recv: Dict[Tuple[int, int], float] = {}
        for event in events:
            kind = event.kind
            if kind == "msg_send":
                mtype, dst, nbytes, seq, cause, origin = event.fields
                if event.site < 0 or seq < 0:
                    continue  # pre-sign-on traffic has no site identity
                node = CausalNode(msg_node(event.site, seq), "msg",
                                  event.site, event.ts, cause, origin,
                                  str(mtype))
                node.dst = dst
                node.nbytes = nbytes
                nodes[node.node_id] = node
                held = early_recv.pop((event.site, seq), None)
                if held is not None:
                    node.end = held
            elif kind == "msg_recv":
                _mtype, src, _nbytes, seq = event.fields
                if src < 0 or seq < 0:
                    continue
                node = nodes.get(msg_node(src, seq))
                if node is not None:
                    node.end = event.ts
                else:
                    early_recv[(src, seq)] = event.ts
            elif kind == "msg_local":
                mtype, seq, cause, origin = event.fields
                if event.site < 0 or seq < 0:
                    continue
                node = CausalNode(msg_node(event.site, seq), "msg",
                                  event.site, event.ts, cause, origin,
                                  str(mtype))
                node.local = True
                nodes[node.node_id] = node
            elif kind == "exec_begin":
                frame, thread, cause, origin = event.fields
                node = CausalNode(exec_node(frame), "exec", event.site,
                                  event.ts, cause, origin, str(thread))
                nodes[node.node_id] = node
            elif kind == "exec_end":
                frame, work = event.fields
                node = nodes.get(exec_node(frame))
                if node is not None and node.site == event.site:
                    node.end = event.ts
                    node.work = work
        return graph

    # ------------------------------------------------------------------
    # queries

    def __len__(self) -> int:
        return len(self.nodes)

    def children(self, node_id: int) -> List[int]:
        if self._children is None:
            index: Dict[int, List[int]] = defaultdict(list)
            for node in self.nodes.values():
                if node.cause >= 0:
                    index[node.cause].append(node.node_id)
            self._children = dict(index)
        return self._children.get(node_id, [])

    def roots(self) -> List[CausalNode]:
        return [n for n in self.nodes.values()
                if n.cause < 0 or n.cause not in self.nodes]

    def chain(self, node_id: int) -> List[CausalNode]:
        """Causal ancestry of ``node_id``, root first."""
        out: List[CausalNode] = []
        seen = set()
        current = self.nodes.get(node_id)
        while current is not None and current.node_id not in seen:
            seen.add(current.node_id)
            out.append(current)
            current = self.nodes.get(current.cause)
        out.reverse()
        return out

    def terminal(self) -> Optional[CausalNode]:
        """The node that completed last — the run's finishing event."""
        best = None
        for node in self.nodes.values():
            if best is None or (node.end, node.node_id) > (best.end,
                                                           best.node_id):
                best = node
        return best

    # ------------------------------------------------------------------
    # span assembly

    def critical_path(self,
                      node_id: Optional[int] = None) -> List[dict]:
        """Categorized end-to-end segments of the chain ending at
        ``node_id`` (default: the last-completing node).

        Categories: ``compute`` (an execution's span), ``message-latency``
        (a remote dataflow message's transit), ``steal-transfer`` (a
        help-protocol message — HELP_REQUEST/HELP_REPLY/CANT_HELP — on
        the path: work arrived here by being stolen), ``gossip`` (a
        load-report/heartbeat message on the path), ``sched-wait`` (gap
        between a cause completing and the dependent execution starting —
        queueing, code fetch, steal transport), ``handler`` (gap between
        a cause completing and the dependent message leaving).
        """
        if node_id is None:
            term = self.terminal()
            if term is None:
                return []
            node_id = term.node_id
        segments: List[dict] = []
        prev_end: Optional[float] = None
        for node in self.chain(node_id):
            if prev_end is not None and node.start > prev_end:
                segments.append({
                    "category": ("sched-wait" if node.kind == "exec"
                                 else "handler"),
                    "start": prev_end, "end": node.start,
                    "site": node.site, "label": node.label,
                })
            if node.kind == "exec":
                segments.append({
                    "category": "compute",
                    "start": node.start, "end": node.end,
                    "site": node.site, "label": node.label,
                })
            elif not node.local and node.end > node.start:
                if node.label in _STEAL_LABELS:
                    category = "steal-transfer"
                elif node.label in _GOSSIP_LABELS:
                    category = "gossip"
                else:
                    category = "message-latency"
                segments.append({
                    "category": category,
                    "start": node.start, "end": node.end,
                    "site": node.site, "label": node.label,
                    "dst": node.dst,
                })
            prev_end = max(node.end, prev_end or node.end)
        return segments

    def frame_span(self, packed_frame: int) -> dict:
        """End-to-end span of one frame's execution: from the root of its
        causal chain to its exec_end, with the categorized segments."""
        nid = exec_node(packed_frame)
        segments = self.critical_path(nid)
        node = self.nodes.get(nid)
        if node is None or not segments:
            return {"frame": packed_frame, "segments": [],
                    "start": 0.0, "end": 0.0, "depth": 0}
        return {
            "frame": packed_frame,
            "segments": segments,
            "start": segments[0]["start"],
            "end": node.end,
            "depth": len(self.chain(nid)),
        }

    def __repr__(self) -> str:
        return f"CausalGraph({len(self.nodes)} nodes)"
