"""Cluster-wide metrics: merge per-site/per-manager StatSets into one report.

Each manager keeps its own :class:`~repro.common.stats.StatSet`; until now
those counters were only ever read one site at a time.  This module merges
them across every manager of every site and derives the ratios the paper's
claims hinge on — steal success rate, code-cache hit rate, checkpoint-wave
cost — plus (when a tracer journal is available) a per-message-type
count/byte breakdown.

Works identically for :class:`~repro.site.simcluster.SimCluster` and
:class:`~repro.runtime.live_cluster.LiveCluster`: both expose ``.sites``
(daemons with ``.managers``) and an optional ``.tracer``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.stats import StatSet
from repro.trace.tracer import Tracer


def site_stats(site) -> StatSet:  # noqa: ANN001
    """Merge every manager's counters of one site daemon."""
    merged = StatSet()
    for manager in site.managers.values():
        merged.merge(manager.stats)
    return merged


def _rate(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


class ClusterReport:
    """Merged counters + derived metrics for one cluster run."""

    def __init__(self, per_site: Dict[int, StatSet], merged: StatSet,
                 derived: Dict[str, float],
                 message_breakdown: Dict[str, Dict[str, float]],
                 horizon: float, nsites: int) -> None:
        self.per_site = per_site
        self.merged = merged
        self.derived = derived
        self.message_breakdown = message_breakdown
        self.horizon = horizon
        self.nsites = nsites

    def as_dict(self) -> dict:
        return {
            "nsites": self.nsites,
            "horizon": self.horizon,
            "derived": dict(self.derived),
            "counters": self.merged.as_dict(),
            "messages": {k: dict(v)
                         for k, v in self.message_breakdown.items()},
            "latency_tails": {name: hist.as_dict()
                              for name, hist in self.merged.hist_items()},
        }

    # ------------------------------------------------------------------
    def render(self, top: int = 24) -> str:
        """Human-readable cluster report (``repro stats``)."""
        lines = [f"cluster report — {self.nsites} site(s), "
                 f"horizon {self.horizon:.4f}s"]
        if self.nsites == 0:
            lines.append("(empty cluster — nothing to report)")
            return "\n".join(lines)
        lines.append("derived metrics:")
        for name in sorted(self.derived):
            value = self.derived[name]
            if isinstance(value, float) and "rate" in name:
                lines.append(f"  {name:<28s} {100.0 * value:7.1f}%")
            else:
                lines.append(f"  {name:<28s} {value:10.4g}")
        tails = list(self.merged.hist_items())
        if tails:
            lines.append("latency tails:")
            lines.append(f"  {'histogram':<22s} {'count':>7s} {'p50':>10s} "
                         f"{'p95':>10s} {'max':>10s}")
            for name, hist in tails:
                lines.append(f"  {name:<22s} {hist.count:7d} "
                             f"{hist.p50:10.4g} {hist.p95:10.4g} "
                             f"{hist.max:10.4g}")
        if self.message_breakdown:
            lines.append("messages by type:")
            lines.append(f"  {'type':<22s} {'count':>8s} {'bytes':>12s}")
            ordered = sorted(self.message_breakdown.items(),
                             key=lambda kv: -kv[1]["count"])
            for mtype, row in ordered:
                lines.append(f"  {mtype:<22s} {int(row['count']):8d} "
                             f"{int(row['bytes']):12d}")
        counters = sorted(((name, counter.count, counter.total)
                           for name, counter in self.merged.items()),
                          key=lambda row: -row[1])
        lines.append(f"top counters (of {len(counters)}):")
        lines.append(f"  {'counter':<28s} {'count':>10s} {'total':>14s}")
        for name, count, total in counters[:top]:
            lines.append(f"  {name:<28s} {count:10d} {total:14.4g}")
        return "\n".join(lines)


def aggregate_sites(sites: List, tracer: Optional[Tracer] = None,  # noqa: ANN001
                    horizon: float = 0.0) -> ClusterReport:
    """Merge stats across ``sites`` and derive cluster-level metrics."""
    per_site: Dict[int, StatSet] = {}
    merged = StatSet()
    busy = busy_sites = 0.0
    for index, site in enumerate(sites):
        stats = site_stats(site)
        per_site[getattr(site, "site_id", index)] = stats
        merged.merge(stats)
        cpu = getattr(site.kernel, "cpu", None)
        if cpu is not None:
            busy += cpu.busy_total
            busy_sites += 1

    derived: Dict[str, float] = {
        "executions": merged.get("executions").count,
        "work_units": merged.get("work_units").total,
        "messages_sent": merged.get("sent").count,
        "bytes_sent": merged.get("bytes_sent").total,
        # grants over *attempts*: help_sent counts at send time, so
        # requests that time out with no reply at all still land in the
        # denominator (a timed-out request is a failed attempt, not a
        # non-event); the numerator counts correlated HELP_REPLY grants,
        # not frames, so steal-half batching cannot push the rate past 1
        "steal_success_rate": _rate(merged.get("steal_grants").count,
                                    merged.get("help_sent").count),
        "steals_in": merged.get("steals_in").count,
        "steal_grants": merged.get("steal_grants").count,
        "help_timeouts": merged.get("help_timeouts").count,
        "frames_pushed": merged.get("frames_pushed").count,
        "gossip_sent": merged.get("gossip_sent").count,
        "code_hit_rate": _rate(
            merged.get("hits").count,
            merged.get("hits").count + merged.get("misses").count),
        "checkpoint_waves": merged.get("checkpoints_committed").count,
        "wave_mean_seconds": merged.get("wave_seconds").mean,
        "recoveries": merged.get("recoveries").count,
    }
    if busy_sites and horizon > 0:
        derived["busy_fraction_mean"] = busy / (busy_sites * horizon)

    message_breakdown: Dict[str, Dict[str, float]] = {}
    if tracer is not None:
        for event in tracer.select(kind="msg_send"):
            mtype, nbytes = event.fields[0], event.fields[2]
            row = message_breakdown.setdefault(
                str(mtype), {"count": 0, "bytes": 0})
            row["count"] += 1
            row["bytes"] += nbytes

    return ClusterReport(per_site, merged, derived, message_breakdown,
                         horizon, len(sites))


def aggregate_cluster(cluster) -> ClusterReport:  # noqa: ANN001
    """Build a report straight from a SimCluster or LiveCluster."""
    sim = getattr(cluster, "sim", None)
    horizon = sim.now if sim is not None else 0.0
    if horizon == 0.0:
        kernels_now = [site.kernel.now for site in cluster.sites
                       if site.site_id >= 0]
        horizon = max(kernels_now) if kernels_now else 0.0
    return aggregate_sites(cluster.sites,
                           tracer=getattr(cluster, "tracer", None),
                           horizon=horizon)
