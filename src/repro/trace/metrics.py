"""The in-run snapshot sampler and the ``sdvm-metrics/1`` time-series.

The post-hoc observability stack (Tracer journal, blame, invariants) only
answers questions after a run ends.  This module samples every site's
health *while the run is going*: queue depths, ready/parked frames, CPU
busy fraction, steal and message counters, the age of the open checkpoint
wave, and directory-shard ownership — one row per (tick, site), written as
JSONL so the gateway/sweep tooling and the ``repro health`` / ``repro
top`` CLIs can consume it without the repo on the other end.

Discipline (same as :class:`repro.trace.Tracer`):

* **Zero cost when disabled.**  Nothing here is constructed unless
  ``SDVMConfig(telemetry=TelemetryConfig(metrics_enabled=True))``.
* **Pure observation.**  Sampling reads manager state and counters; it
  never mutates a site, charges CPU, or touches an RNG.  The sampler's
  *timer* is the one necessary intrusion: under the sim kernel it
  schedules events, so the event interleaving of a metrics-on run differs
  from a metrics-off run — which is why bench baselines are only
  guaranteed bit-identical with metrics off.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import SDVMError

#: schema tag every metrics document carries; bump on incompatible change
METRICS_SCHEMA = "sdvm-metrics/1"

#: the exact key set of one sample row (order is the canonical JSONL order)
SAMPLE_FIELDS: Tuple[str, ...] = (
    "t",              # sample time (virtual s sim / wall s live)
    "site",           # logical site id (-1 before sign-on)
    "alive",          # 1 while the daemon is running
    "paused",         # 1 while checkpoint-paused
    "recovering",     # 1 while the crash manager runs a recovery
    "sleeping",       # 1 while power-save sleeping
    "queue",          # scheduling queue depth (executable+ready+pending)
    "executable",     # frames ready to run now
    "ready",          # frames waiting on code prefetch
    "parked",         # parked (deferred) help requests held by this site
    "in_flight",      # microthreads currently executing
    "busy_frac",      # CPU busy fraction over the last interval
    "help_sent",      # help requests sent this interval
    "steals_in",      # frames stolen in this interval
    "steal_grants",   # frames granted to thieves this interval
    "cant_help",      # CANT_HELP replies received this interval
    "msgs_sent",      # messages sent this interval (incl. loopback)
    "msgs_recv",      # messages received this interval
    "wave_age",       # age of the coordinator's open checkpoint wave (s)
    "committed_wave", # last committed checkpoint wave id
    "dir_entries",    # directory shard entries owned by this site
    "frames",         # microframes resident in the attraction memory
    "objects",        # shared objects resident in the attraction memory
    "sdc_mismatches", # replica-divergence detections this interval
)

#: row fields that are flags/counts and must be non-negative integers
_INT_FIELDS = frozenset(SAMPLE_FIELDS) - {"t", "busy_frac", "wave_age",
                                          "committed_wave", "site"}


class MetricsLog:
    """An in-memory ``sdvm-metrics/1`` document: one header + sample rows."""

    def __init__(self, interval: float, mode: str = "sim",
                 nsites: int = 0) -> None:
        if interval <= 0:
            raise SDVMError(f"metrics interval must be positive, "
                            f"got {interval}")
        self.interval = interval
        self.mode = mode
        self.nsites = nsites
        self.rows: List[dict] = []

    # ------------------------------------------------------------------
    def header(self) -> dict:
        return {"schema": METRICS_SCHEMA, "mode": self.mode,
                "interval": self.interval, "nsites": self.nsites,
                "fields": list(SAMPLE_FIELDS)}

    def append(self, row: dict) -> None:
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def sites(self) -> List[int]:
        return sorted({row["site"] for row in self.rows})

    def ticks(self) -> Iterator[Tuple[float, List[dict]]]:
        """Yield (t, rows-at-t) groups in time order."""
        group: List[dict] = []
        for row in self.rows:
            if group and row["t"] != group[0]["t"]:
                yield group[0]["t"], group
                group = []
            group.append(row)
        if group:
            yield group[0]["t"], group

    def series(self, site: int, key: str) -> List[Tuple[float, float]]:
        if key not in SAMPLE_FIELDS:
            raise SDVMError(f"unknown metrics field {key!r}")
        return [(row["t"], row[key]) for row in self.rows
                if row["site"] == site]

    # ------------------------------------------------------------------
    # JSONL round-trip

    def write_jsonl(self, path: str) -> int:
        """Write header + rows, one JSON object per line; returns row count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for row in self.rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return len(self.rows)

    @classmethod
    def from_lines(cls, lines: List[str]) -> "MetricsLog":
        """Parse + validate a JSONL document (raises SDVMError)."""
        stripped = [line for line in (l.strip() for l in lines) if line]
        if not stripped:
            raise SDVMError("empty metrics document (no header line)")
        try:
            header = json.loads(stripped[0])
            rows = [json.loads(line) for line in stripped[1:]]
        except json.JSONDecodeError as exc:
            raise SDVMError(f"metrics document is not JSONL: {exc}") from exc
        validate_metrics(header, rows)
        log = cls(interval=header["interval"], mode=header["mode"],
                  nsites=header["nsites"])
        log.rows = rows
        return log

    @classmethod
    def load(cls, path: str) -> "MetricsLog":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_lines(fh.readlines())


def validate_metrics(header: dict, rows: List[dict]) -> None:
    """Check one parsed metrics document against ``sdvm-metrics/1``.

    Raises :class:`SDVMError` on a schema mismatch — the contract the
    ``repro health`` / ``repro top`` CLIs and the smoke target rely on.
    """
    if not isinstance(header, dict):
        raise SDVMError("metrics header line is not a JSON object")
    schema = header.get("schema")
    if schema != METRICS_SCHEMA:
        raise SDVMError(f"unsupported metrics schema {schema!r} "
                        f"(want {METRICS_SCHEMA})")
    interval = header.get("interval")
    if not isinstance(interval, (int, float)) or interval <= 0:
        raise SDVMError(f"metrics header interval must be a positive "
                        f"number, got {interval!r}")
    if header.get("fields") != list(SAMPLE_FIELDS):
        raise SDVMError("metrics header field list does not match "
                        "sdvm-metrics/1")
    want = set(SAMPLE_FIELDS)
    last_t = float("-inf")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise SDVMError(f"metrics row {index} is not a JSON object")
        keys = set(row)
        if keys != want:
            missing = sorted(want - keys)
            extra = sorted(keys - want)
            raise SDVMError(f"metrics row {index} keys mismatch "
                            f"(missing {missing}, extra {extra})")
        for key, value in row.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SDVMError(f"metrics row {index} field {key!r} is "
                                f"non-numeric: {value!r}")
            if key in _INT_FIELDS and (value != int(value) or value < 0):
                raise SDVMError(f"metrics row {index} field {key!r} must "
                                f"be a non-negative integer, got {value!r}")
        if row["t"] < last_t:
            raise SDVMError(f"metrics row {index} time goes backwards "
                            f"({row['t']} < {last_t})")
        last_t = row["t"]


# ---------------------------------------------------------------------------
# the sampler


class MetricsSampler:
    """Collects one row per (tick, site) from a running cluster.

    Drive it either via :meth:`start_sim` (schedules a repeating
    virtual-time timer on a :class:`SimCluster`'s simulator) or by calling
    :meth:`sample_once` from an external wall-clock loop (the live
    cluster's sampler thread).
    """

    def __init__(self, cluster, telemetry, monitor=None,  # noqa: ANN001
                 mode: str = "sim") -> None:
        self.cluster = cluster
        self.interval = telemetry.metrics_interval
        self.monitor = monitor
        self.log = MetricsLog(interval=self.interval, mode=mode,
                              nsites=len(cluster.sites))
        #: site index -> previous cumulative counters (for interval deltas)
        self._prev: Dict[int, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    def start_sim(self) -> None:
        """Arm the repeating virtual-time tick on the cluster's simulator."""
        self.cluster.sim.schedule(self.interval, self._sim_tick)

    def _sim_tick(self) -> None:
        self.sample_once(self.cluster.sim.now)
        self.cluster.sim.schedule(self.interval, self._sim_tick)

    # ------------------------------------------------------------------
    def sample_once(self, now: float) -> List[dict]:
        """Snapshot every site at ``now``; feeds the health monitor."""
        rows = []
        for index, site in enumerate(self.cluster.sites):
            rows.append(self._collect(index, site, now))
        for row in rows:
            self.log.append(row)
        if self.monitor is not None:
            self.monitor.observe(now, rows)
        return rows

    def _collect(self, index: int, site, now: float) -> dict:  # noqa: ANN001
        sched = site.scheduling_manager
        proc = site.processing_manager
        crash = site.crash_manager
        mem = site.attraction_memory
        msg_stats = site.message_manager.stats

        cpu = getattr(site.kernel, "cpu", None)
        busy_total = cpu.busy_total if cpu is not None else 0.0
        help_sent = sched.stats.get("help_sent").count
        steals_in = sched.stats.get("steals_in").count
        steal_grants = sched.stats.get("steal_grants").count
        cant_help = sched.stats.get("cant_help_received").count
        sent = (msg_stats.get("sent").count
                + msg_stats.get("local_messages").count)
        recv = (msg_stats.get("received").count
                + msg_stats.get("local_messages").count)
        sdc_mismatches = proc.stats.get("sdc_mismatches").count

        prev = self._prev.get(index, (busy_total, 0, 0, 0, 0, 0, 0, 0))
        self._prev[index] = (busy_total, help_sent, steals_in, steal_grants,
                             cant_help, sent, recv, sdc_mismatches)
        busy_frac = max(0.0, min((busy_total - prev[0]) / self.interval, 1.0))

        return {
            "t": now,
            "site": site.site_id,
            "alive": 1 if site.running else 0,
            "paused": 1 if site.paused else 0,
            "recovering": 1 if getattr(crash, "_recovering", False) else 0,
            "sleeping": 1 if site.sleeping else 0,
            "queue": sched.queue_depth(),
            "executable": len(sched.executable),
            "ready": len(sched.ready),
            "parked": sched.parked_depth(),
            "in_flight": proc.in_flight,
            "busy_frac": busy_frac,
            "help_sent": help_sent - prev[1],
            "steals_in": steals_in - prev[2],
            "steal_grants": steal_grants - prev[3],
            "cant_help": cant_help - prev[4],
            "msgs_sent": sent - prev[5],
            "msgs_recv": recv - prev[6],
            "wave_age": crash.open_wave_age(now),
            "committed_wave": crash.committed_wave,
            "dir_entries": len(mem.dir_entries),
            "frames": len(mem.frames),
            "objects": len(mem.objects),
            "sdc_mismatches": int(sdc_mismatches - prev[7]),
        }


# ---------------------------------------------------------------------------
# rendering (``repro top``)


def render_top(log: MetricsLog, key: str = "queue",
               last: int = 20) -> str:
    """Per-site summary table plus the tail of one field's time-series."""
    if key not in SAMPLE_FIELDS:
        raise SDVMError(f"unknown metrics field {key!r} "
                        f"(one of: {', '.join(SAMPLE_FIELDS)})")
    if not log.rows:
        return "(no metric samples)"
    lines = [f"metrics: {len(log.rows)} samples, "
             f"interval {log.interval:g}s, mode {log.mode}",
             "",
             "site  samples  q.mean  q.max  busy%  steals  help  "
             "msgs.in  msgs.out"]
    for site in log.sites():
        rows = [r for r in log.rows if r["site"] == site]
        n = len(rows)
        q_mean = sum(r["queue"] for r in rows) / n
        q_max = max(r["queue"] for r in rows)
        busy = 100.0 * sum(r["busy_frac"] for r in rows) / n
        steals = sum(r["steals_in"] for r in rows)
        help_sent = sum(r["help_sent"] for r in rows)
        msgs_in = sum(r["msgs_recv"] for r in rows)
        msgs_out = sum(r["msgs_sent"] for r in rows)
        lines.append(f"{site:4d} {n:8d} {q_mean:7.1f} {q_max:6d} "
                     f"{busy:5.0f}% {steals:7d} {help_sent:5d} "
                     f"{msgs_in:8d} {msgs_out:9d}")

    ticks = list(log.ticks())
    shown = ticks[-last:] if last > 0 else ticks
    sites = log.sites()
    lines.append("")
    lines.append(f"{key} per site, last {len(shown)} tick(s):")
    header = "       t  " + " ".join(f"s{site:<6d}" for site in sites)
    lines.append(header)
    for t, rows in shown:
        by_site = {r["site"]: r for r in rows}
        cells = []
        for site in sites:
            row = by_site.get(site)
            value = row[key] if row is not None else 0
            cells.append(f"{value:<7g}")
        lines.append(f"{t:8.3f}  " + " ".join(cells))
    return "\n".join(lines)
