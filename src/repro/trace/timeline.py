"""Build and render per-site execution timelines from site journals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class TraceEvent:
    time: float
    site_index: int
    kind: str
    data: dict


class Timeline:
    """Per-site busy intervals + discrete events, reconstructed from the
    ``exec_start``/``exec_end`` journal pairs."""

    def __init__(self, events: List[TraceEvent], horizon: float) -> None:
        self.events = sorted(events, key=lambda e: (e.time, e.site_index))
        self.horizon = max(horizon, 0.0)
        #: events pre-bucketed per site, so render()/summary() stay
        #: O(events) instead of rescanning the full list per site
        self._by_site: Dict[int, List[TraceEvent]] = {}
        for event in self.events:
            self._by_site.setdefault(event.site_index, []).append(event)
        self._busy = self._pair_intervals()

    @classmethod
    def from_cluster(cls, cluster) -> "Timeline":  # noqa: ANN001
        """Collect the journals of a SimCluster's sites."""
        events: List[TraceEvent] = []
        horizon = cluster.sim.now
        for index, site in enumerate(cluster.sites):
            for time, kind, data in site.journal:
                events.append(TraceEvent(time, index, kind, data))
        return cls(events, horizon)

    # ------------------------------------------------------------------
    def _pair_intervals(self) -> Dict[int, List[Tuple[float, float]]]:
        """Match exec_start/exec_end by frame id, per site."""
        open_frames: Dict[Tuple[int, int], float] = {}
        busy: Dict[int, List[Tuple[float, float]]] = {}
        for event in self.events:
            if event.kind == "exec_start":
                open_frames[(event.site_index,
                             event.data.get("frame", -1))] = event.time
            elif event.kind == "exec_end":
                key = (event.site_index, event.data.get("frame", -1))
                start = open_frames.pop(key, None)
                if start is not None:
                    busy.setdefault(event.site_index, []).append(
                        (start, event.time))
        # still-open executions run to the horizon
        for (site_index, _frame), start in open_frames.items():
            busy.setdefault(site_index, []).append((start, self.horizon))
        for intervals in busy.values():
            intervals.sort()
        return busy

    def sites(self) -> List[int]:
        indices = set(self._by_site)
        indices.update(self._busy)
        return sorted(indices)

    def busy_fraction(self, site_index: int) -> float:
        """Fraction of the horizon the site had executions in flight."""
        if self.horizon <= 0.0:
            return 0.0
        merged = self._merge(self._busy.get(site_index, []))
        return min(sum(hi - lo for lo, hi in merged) / self.horizon, 1.0)

    @staticmethod
    def _merge(intervals: List[Tuple[float, float]]
               ) -> List[Tuple[float, float]]:
        merged: List[Tuple[float, float]] = []
        for lo, hi in intervals:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    def steals(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "steal_in"]

    # ------------------------------------------------------------------
    def render(self, width: int = 72) -> str:
        """ASCII Gantt: one lane per site; '#' busy, 's' steal arrival."""
        if not self.events:
            return "(no journal events — enable SDVMConfig(journal=True))"
        if self.horizon <= 0.0:
            return (f"(all {len(self.events)} journal events at t=0 — "
                    f"zero horizon, nothing to draw)")
        scale = width / self.horizon
        lines = [f"timeline 0 .. {self.horizon:.3f}s "
                 f"({self.horizon / width:.4f}s per column)"]
        for site_index in self.sites():
            row = [" "] * width
            for lo, hi in self._busy.get(site_index, []):
                a = min(int(lo * scale), width - 1)
                b = min(int(hi * scale), width - 1)
                for column in range(a, b + 1):
                    row[column] = "#"
            for event in self._by_site.get(site_index, ()):
                if event.kind == "steal_in":
                    column = min(int(event.time * scale), width - 1)
                    if row[column] == " ":
                        row[column] = "s"
            busy_pct = 100.0 * self.busy_fraction(site_index)
            lines.append(f"site{site_index:<3d}|{''.join(row)}| "
                         f"{busy_pct:4.0f}%")
        return "\n".join(lines)

    def summary(self) -> str:
        lines = ["site  busy%  executions  steals_in"]
        for site_index in self.sites():
            events = self._by_site.get(site_index, ())
            executions = sum(1 for e in events if e.kind == "exec_end")
            steals = sum(1 for e in events if e.kind == "steal_in")
            lines.append(f"{site_index:4d} {100 * self.busy_fraction(site_index):5.0f}% "
                         f"{executions:11d} {steals:10d}")
        return "\n".join(lines)
