"""Timeline tooling: inspect where a cluster spent its time.

Enable journaling (``SDVMConfig(journal=True)``), run a workload, then::

    from repro.trace import Timeline
    timeline = Timeline.from_cluster(cluster)
    print(timeline.render(width=72))     # ASCII Gantt, one lane per site
    print(timeline.summary())

Used by ``examples/`` and handy when tuning scheduling policies: the Gantt
makes ramp-up gaps, steal storms, and barrier tails visible at a glance.
"""

from repro.trace.timeline import Timeline, TraceEvent

__all__ = ["Timeline", "TraceEvent"]
