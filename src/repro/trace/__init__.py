"""Observability tooling: structured tracing, Chrome export, cluster stats.

Three layers, all fed by the same runs:

* **Structured tracing** — enable ``SDVMConfig(trace=True)`` and every
  manager reports typed events (frame lifecycle, steals, code fetches,
  checkpoint waves, messages, membership, power) into one cluster-wide
  :class:`Tracer`.  Export it for ``chrome://tracing`` / Perfetto::

      from repro.trace import write_chrome_trace
      write_chrome_trace(cluster.tracer, "run.trace.json")

* **Cluster metrics** — merge every site's per-manager counters into one
  report with derived metrics (steal success rate, code-cache hit rate,
  checkpoint-wave cost)::

      from repro.trace import aggregate_cluster
      print(aggregate_cluster(cluster).render())

* **ASCII timelines** — the lightweight ``SDVMConfig(journal=True)`` path::

      from repro.trace import Timeline
      print(Timeline.from_cluster(cluster).render(width=72))

CLI surface: ``repro trace <app> -o run.trace.json`` and
``repro stats <app>``.  Benchmarks dump both artifacts per run when
``SDVM_TRACE_DIR`` is set (see :mod:`repro.bench.harness`).
"""

from repro.trace.aggregate import (
    ClusterReport,
    aggregate_cluster,
    aggregate_sites,
    site_stats,
)
from repro.trace.blame import (
    BlameReport,
    blame_cluster,
    blame_sites,
    render_critical_path,
)
from repro.trace.causal import CausalGraph, CausalNode, exec_node, msg_node
from repro.trace.chrome import (
    to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.flight import FlightRecorder
from repro.trace.health import DETECTORS, Detection, HealthMonitor, analyze_log
from repro.trace.metrics import (
    METRICS_SCHEMA,
    SAMPLE_FIELDS,
    MetricsLog,
    MetricsSampler,
    render_top,
    validate_metrics,
)
from repro.trace.timeline import Timeline, TraceEvent
from repro.trace.tracer import EVENT_FIELDS, Tracer, TracerEvent

__all__ = [
    "BlameReport",
    "CausalGraph",
    "CausalNode",
    "ClusterReport",
    "DETECTORS",
    "Detection",
    "EVENT_FIELDS",
    "FlightRecorder",
    "HealthMonitor",
    "METRICS_SCHEMA",
    "MetricsLog",
    "MetricsSampler",
    "SAMPLE_FIELDS",
    "Timeline",
    "TraceEvent",
    "Tracer",
    "TracerEvent",
    "aggregate_cluster",
    "aggregate_sites",
    "analyze_log",
    "blame_cluster",
    "blame_sites",
    "exec_node",
    "msg_node",
    "render_critical_path",
    "render_top",
    "site_stats",
    "to_chrome",
    "validate_chrome_trace",
    "write_chrome_trace",
]
