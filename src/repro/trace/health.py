"""Online health detectors over the ``sdvm-metrics/1`` snapshot stream.

Six detector families, each targeting a failure class this repo has
actually shipped a fix for (or that the chaos fuzzer forces):

* **idle_stall** — a site sits idle for several intervals while the rest
  of the cluster holds a queue backlog: work distribution is not reaching
  it (begging storms, gossip staleness, partition residue).
* **steal_storm** — a site sends many help requests with almost no frames
  coming back: protocol time burning with no work transfer (the
  `s8_steal_success_rate ~= 0.07` regime the ROADMAP calls out).
* **wave_stall** — the coordinator's open checkpoint wave is older than k
  sampling intervals.  PR 7's wave-supersede bug (waves silently never
  committing past ~100 sites) sat latent because nothing watched exactly
  this signal in-run.
* **recovery_wedged** — a site stays in crash recovery for many
  consecutive intervals: a lost RECOVER_* control or a wedged coordinator.
* **partition_suspect** — a live site keeps sending but receives nothing
  while the rest of the cluster exchanges traffic: one-sided reachability.
* **sdc_mismatch** — a replicated microthread's shadow re-execution
  diverged from its primary: silent data corruption (or a
  nondeterministic microthread) caught before commit.  Any non-zero
  count is anomalous, so this detector has no threshold knob.

Detections fire **once per episode** (the condition must clear before the
same detector re-fires for the same site), are recorded in order, and are
emitted as structured ``health`` events into whatever trace sink the run
has (full tracer, flight recorder, or nothing).

The monitor is pure observation: it never touches the simulator, timers,
or RNG, so attaching it cannot perturb a run beyond the sampler's timer.
"""

from __future__ import annotations

from collections import Counter as _Counter
from collections import deque
from typing import Callable, Deque, Dict, List, NamedTuple, Optional

from repro.common.config import TelemetryConfig
from repro.common.stats import Histogram

#: every detector the monitor can fire, in report order
DETECTORS = ("idle_stall", "steal_storm", "wave_stall",
             "recovery_wedged", "partition_suspect", "sdc_mismatch")


class Detection(NamedTuple):
    """One detector firing: when, where, what, and the evidence."""

    t: float
    site: int
    detector: str
    detail: str

    def __str__(self) -> str:
        return (f"t={self.t:.3f} site {self.site}: "
                f"{self.detector} ({self.detail})")


class HealthMonitor:
    """Consumes per-tick snapshot rows; accumulates detections.

    ``emit(ts, site, "health", detector, detail)`` is called for every
    firing when a trace sink is attached (``emit=tracer.emit``).
    """

    def __init__(self, telemetry: Optional[TelemetryConfig] = None,
                 emit: Optional[Callable] = None) -> None:
        self.config = telemetry or TelemetryConfig()
        self.emit = emit
        self.detections: List[Detection] = []
        self.ticks_seen = 0
        #: queue-depth and wave-age distributions across all (tick, site)
        #: samples — the verdict reports conservative tail percentiles
        self.queue_hist = Histogram()
        self.wave_age_hist = Histogram()
        # per-site consecutive-interval streaks
        self._idle_streak: Dict[int, int] = {}
        self._deaf_streak: Dict[int, int] = {}
        self._wedged_streak: Dict[int, int] = {}
        # per-site sliding windows of (help_sent, steals_in)
        self._steal_window: Dict[int, Deque] = {}
        # detectors currently in a fired episode, keyed by (detector, site)
        self._episodes: set = set()

    # ------------------------------------------------------------------
    def _fire(self, t: float, site: int, detector: str,
              detail: str) -> None:
        key = (detector, site)
        if key in self._episodes:
            return
        self._episodes.add(key)
        self.detections.append(Detection(t, site, detector, detail))
        if self.emit is not None:
            self.emit(t, site, "health", detector, detail)

    def _clear(self, site: int, detector: str) -> None:
        self._episodes.discard((detector, site))

    # ------------------------------------------------------------------
    def observe(self, t: float, rows: List[dict]) -> None:
        """Feed one sampling tick (all sites' rows share one ``t``)."""
        self.ticks_seen += 1
        cfg = self.config
        alive = [row for row in rows if row["alive"]]
        backlog = sum(row["queue"] for row in alive)
        cluster_recv = sum(row["msgs_recv"] for row in alive)

        for row in alive:
            site = row["site"]
            self.queue_hist.observe(float(row["queue"]))

            # idle_stall: no work here, plenty elsewhere
            idle = (row["queue"] == 0 and row["in_flight"] == 0
                    and row["busy_frac"] < 0.05 and not row["sleeping"]
                    and not row["paused"])
            others_backlog = backlog - row["queue"]
            if idle and others_backlog >= cfg.idle_backlog_min:
                streak = self._idle_streak.get(site, 0) + 1
                self._idle_streak[site] = streak
                if streak >= cfg.stall_intervals:
                    self._fire(t, site, "idle_stall",
                               f"idle {streak} intervals, cluster backlog "
                               f"{others_backlog}")
            else:
                self._idle_streak[site] = 0
                self._clear(site, "idle_stall")

            # steal_storm: windowed help volume with no frames landing
            # AND the beggar starving AND work existing elsewhere.
            # Healthy SDVM runs beg constantly by design (ready_target
            # keeps queues drained), and a serial tail phase has every
            # site begging into a workless cluster — neither is a fault.
            # The storm is begging that stays fruitless while a real
            # backlog sits on other sites: distribution is broken.
            window = self._steal_window.setdefault(
                site, deque(maxlen=cfg.stall_intervals))
            window.append((row["help_sent"], row["steals_in"],
                           row["busy_frac"]))
            help_sum = sum(w[0] for w in window)
            steal_sum = sum(w[1] for w in window)
            busy_mean = sum(w[2] for w in window) / len(window)
            storming = (len(window) == cfg.stall_intervals
                        and help_sum >= cfg.steal_storm_min_help
                        and steal_sum <= (cfg.steal_storm_max_success
                                          * help_sum)
                        and busy_mean < 0.25
                        and others_backlog >= cfg.idle_backlog_min)
            if storming:
                self._fire(t, site, "steal_storm",
                           f"{help_sum} help requests, {steal_sum} "
                           f"steals in {len(window)} intervals, "
                           f"busy {busy_mean:.0%}")
            else:
                self._clear(site, "steal_storm")

            # wave_stall: the coordinator's open wave outlived its budget
            age = row["wave_age"]
            if age > 0:
                self.wave_age_hist.observe(age)
            threshold = cfg.wave_stall_intervals * cfg.metrics_interval
            if age > threshold:
                self._fire(t, site, "wave_stall",
                           f"open wave age {age:.3f}s > {threshold:.3f}s")
            elif age == 0:
                self._clear(site, "wave_stall")

            # recovery_wedged: recovery should settle within a few beats
            if row["recovering"]:
                streak = self._wedged_streak.get(site, 0) + 1
                self._wedged_streak[site] = streak
                if streak >= cfg.recovery_wedged_intervals:
                    self._fire(t, site, "recovery_wedged",
                               f"recovering for {streak} intervals")
            else:
                self._wedged_streak[site] = 0
                self._clear(site, "recovery_wedged")

            # partition_suspect: talking into the void
            deaf = (row["msgs_sent"] > 0 and row["msgs_recv"] == 0
                    and cluster_recv > 0)
            if deaf:
                streak = self._deaf_streak.get(site, 0) + 1
                self._deaf_streak[site] = streak
                if streak >= cfg.stall_intervals:
                    self._fire(t, site, "partition_suspect",
                               f"sent {row['msgs_sent']} msgs, received "
                               f"none for {streak} intervals")
            else:
                self._deaf_streak[site] = 0
                self._clear(site, "partition_suspect")

            # sdc_mismatch: replica divergence — one is already too many
            mismatches = row.get("sdc_mismatches", 0)
            if mismatches > 0:
                self._fire(t, site, "sdc_mismatch",
                           f"{mismatches} replica mismatch(es) this "
                           f"interval")
            else:
                self._clear(site, "sdc_mismatch")

    # ------------------------------------------------------------------
    # run-end verdict

    @property
    def ok(self) -> bool:
        return not self.detections

    def verdict(self) -> dict:
        """Machine-readable summary for the run end / ``repro health``."""
        counts = _Counter(d.detector for d in self.detections)
        return {
            "ok": self.ok,
            "ticks": self.ticks_seen,
            "detections": len(self.detections),
            "by_detector": {name: counts.get(name, 0)
                            for name in DETECTORS},
            # conservative-bound tails (Histogram.percentile never
            # under-reports) — the detectors' raw material, surfaced
            "queue_p50": self.queue_hist.percentile(0.50),
            "queue_p90": self.queue_hist.percentile(0.90),
            "wave_age_p99": self.wave_age_hist.percentile(0.99),
        }

    def render(self, limit: int = 20) -> str:
        """Human-readable report: firings first, then the verdict line."""
        lines = []
        for detection in self.detections[:limit]:
            lines.append(f"  HEALTH {detection}")
        hidden = len(self.detections) - limit
        if hidden > 0:
            lines.append(f"  ... and {hidden} more detection(s)")
        v = self.verdict()
        fired = [f"{name}={count}"
                 for name, count in v["by_detector"].items() if count]
        status = "OK" if v["ok"] else "ANOMALOUS (" + ", ".join(fired) + ")"
        lines.append(f"health: {status} over {v['ticks']} tick(s); "
                     f"queue p50/p90 {v['queue_p50']:g}/{v['queue_p90']:g}, "
                     f"wave age p99 {v['wave_age_p99']:.3f}s")
        return "\n".join(lines)


def analyze_log(log, telemetry: Optional[TelemetryConfig] = None,  # noqa: ANN001
                ) -> HealthMonitor:
    """Replay a loaded :class:`MetricsLog` through the detectors offline.

    Used by ``repro health``: thresholds come from ``telemetry`` (defaults
    apply when None), the sampling interval always from the log header.
    """
    base = telemetry or TelemetryConfig()
    from dataclasses import replace
    monitor = HealthMonitor(replace(base, metrics_interval=log.interval))
    for t, rows in log.ticks():
        monitor.observe(t, rows)
    return monitor
